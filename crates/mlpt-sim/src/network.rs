//! The simulated network: probe bytes in, reply bytes out.
//!
//! [`SimNetwork`] is the in-process equivalent of Fakeroute's
//! libnetfilter-queue capture loop: a tool hands it a complete probe
//! datagram; the simulator parses the header fields (flow identifier and
//! TTL, exactly as Fakeroute does with libtins), walks the packet through
//! the topology's load balancers, and crafts a complete ICMP reply — Time
//! Exceeded from an intermediate interface, Port Unreachable from the
//! destination, or Echo Reply for direct probes.
//!
//! All randomness is seeded; two simulators constructed with the same
//! arguments behave identically.
//!
//! # Hot-path engineering
//!
//! The per-packet path is allocation-free and hash-free: at construction
//! every interface address is *interned* into a dense `u32` id
//! ([`AddrTable`]), and the routing state the walk consults — successor
//! lists, balancing weights, router ownership, hop distance — lives in
//! flat `Vec`s indexed by `(hop, id)`. Replies are written straight into
//! the caller's reusable buffer via
//! [`PacketTransport::send_packet_into`], so a batched probe round costs
//! zero allocations after warm-up. [`PacketTransport::send_packet`]
//! remains as the boxed-reply convenience wrapper.

use crate::balance::{BalanceMode, FlowHasher};
use crate::faults::{FaultPlan, FaultSchedule, FaultSpec, FaultState};
use crate::router::{IpIdEngine, ReplyClass, RouterProfile};
use crate::schedule::TopologySchedule;
use mlpt_topo::{MultipathTopology, RouterId, RouterMap};
use mlpt_wire::icmp::{
    emit_echo_into, emit_error_into, IcmpMessage, IcmpType, MplsLabelStackEntry,
    CODE_PORT_UNREACHABLE, CODE_TTL_EXCEEDED,
};
use mlpt_wire::ipv4::{Ipv4Header, PROTO_ICMP, PROTO_UDP};
use mlpt_wire::probe::parse_udp_probe;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

pub use mlpt_wire::transport::{
    BatchTransport, PacketBatch, PacketTransport, ReplyBatch, SplitTransport,
};

/// Traffic counters maintained by the simulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficCounters {
    /// Probes received from the tool.
    pub probes_received: u64,
    /// Probes dropped by injected loss.
    pub probes_lost: u64,
    /// Replies generated.
    pub replies_sent: u64,
    /// Replies suppressed by rate limiting.
    pub replies_rate_limited: u64,
    /// Replies dropped by injected loss.
    pub replies_lost: u64,
    /// Probes swallowed by a scheduled blackhole.
    pub probes_blackholed: u64,
    /// Scheduled topology mutations applied so far.
    pub mutations_applied: u64,
    /// Scheduled mutations the current topology shape could not honour.
    pub mutations_rejected: u64,
}

/// Interning table: every interface address of the topology mapped to a
/// dense `u32` id, with `Vec`-indexed side tables replacing per-packet
/// map lookups.
///
/// Lookup is a binary search over a sorted `u32` array — cache-friendly
/// and branch-predictable, with no hashing or pointer-chasing on the
/// packet path.
#[derive(Debug, Clone)]
struct AddrTable {
    /// Sorted address values; the index of an address is its id.
    sorted: Vec<u32>,
    /// id → address (same order as `sorted`, kept for mixed callers).
    addrs: Vec<Ipv4Addr>,
    /// id → owning router.
    router_of: Vec<RouterId>,
    /// id → hop distance from the source (first hop of appearance + 1).
    distance: Vec<u8>,
}

impl AddrTable {
    fn build(topology: &MultipathTopology, assignment: &BTreeMap<Ipv4Addr, RouterId>) -> Self {
        let mut sorted: Vec<u32> = topology.all_addresses().iter().map(|&a| a.into()).collect();
        sorted.sort_unstable();
        sorted.dedup();
        let addrs: Vec<Ipv4Addr> = sorted.iter().map(|&v| Ipv4Addr::from(v)).collect();

        let lookup = |addr: Ipv4Addr| -> usize {
            sorted
                .binary_search(&u32::from(addr))
                .expect("address from topology")
        };

        let mut router_of = vec![RouterId(0); sorted.len()];
        for (&addr, &router) in assignment {
            // The assignment may cover interfaces a topology mutation has
            // since removed; only map the ones still present.
            if let Ok(i) = sorted.binary_search(&u32::from(addr)) {
                router_of[i] = router;
            }
        }

        let mut distance = vec![0u8; sorted.len()];
        for i in (0..topology.num_hops()).rev() {
            for &a in topology.hop(i) {
                distance[lookup(a)] = (i + 1) as u8;
            }
        }

        Self {
            sorted,
            addrs,
            router_of,
            distance,
        }
    }

    /// Dense id of `addr`, if it belongs to the topology.
    #[inline]
    fn id(&self, addr: Ipv4Addr) -> Option<u32> {
        self.sorted
            .binary_search(&u32::from(addr))
            .ok()
            .map(|i| i as u32)
    }

    /// Address of a dense id.
    #[inline]
    fn addr(&self, id: u32) -> Ipv4Addr {
        self.addrs[id as usize]
    }

    #[inline]
    fn len(&self) -> usize {
        self.sorted.len()
    }
}

/// Flat successor/weight tables indexed by `(hop, interface id)`.
#[derive(Debug, Clone)]
struct RouteTable {
    num_addrs: usize,
    /// `(hop * num_addrs + id)` → range into `succ_ids`.
    succ_ranges: Vec<(u32, u32)>,
    /// Successor ids, ascending by address within each range (matching
    /// the `BTreeSet` iteration order the hasher indexes against).
    succ_ids: Vec<u32>,
    /// `(hop * num_addrs + id)` → range into `weights`; empty = uniform.
    weight_ranges: Vec<(u32, u32)>,
    weights: Vec<u32>,
    /// Interned hop-0 entry vertices, in topology hop order.
    entry_ids: Vec<u32>,
}

impl RouteTable {
    fn build(
        topology: &MultipathTopology,
        addrs: &AddrTable,
        weight_map: &BTreeMap<(usize, Ipv4Addr), Vec<u32>>,
    ) -> Self {
        let num_addrs = addrs.len();
        let slots = topology.num_hops() * num_addrs;
        let mut succ_ranges = vec![(0u32, 0u32); slots];
        let mut succ_ids = Vec::new();
        let mut weight_ranges = vec![(0u32, 0u32); slots];
        let mut weights = Vec::new();

        for hop in 0..topology.num_hops().saturating_sub(1) {
            for &from in topology.hop(hop) {
                let id = addrs.id(from).expect("topology address") as usize;
                let slot = hop * num_addrs + id;
                let start = succ_ids.len() as u32;
                // BTreeSet iterates ascending: preserved, so the flow
                // hasher's index selects the same successor as before.
                for &to in topology.successors(hop, from) {
                    succ_ids.push(addrs.id(to).expect("topology address"));
                }
                succ_ranges[slot] = (start, succ_ids.len() as u32);

                if let Some(w) = weight_map.get(&(hop, from)) {
                    let wstart = weights.len() as u32;
                    weights.extend_from_slice(w);
                    weight_ranges[slot] = (wstart, weights.len() as u32);
                }
            }
        }

        let entry_ids = topology
            .hop(0)
            .iter()
            .map(|&a| addrs.id(a).expect("topology address"))
            .collect();

        Self {
            num_addrs,
            succ_ranges,
            succ_ids,
            weight_ranges,
            weights,
            entry_ids,
        }
    }

    #[inline]
    fn successors(&self, hop: usize, id: u32) -> &[u32] {
        let (start, end) = self.succ_ranges[hop * self.num_addrs + id as usize];
        &self.succ_ids[start as usize..end as usize]
    }

    #[inline]
    fn weights(&self, hop: usize, id: u32) -> Option<&[u32]> {
        let (start, end) = self.weight_ranges[hop * self.num_addrs + id as usize];
        if start == end {
            None
        } else {
            Some(&self.weights[start as usize..end as usize])
        }
    }
}

/// Builder for [`SimNetwork`].
pub struct SimNetworkBuilder {
    topology: MultipathTopology,
    routers: RouterMap,
    profiles: BTreeMap<RouterId, RouterProfile>,
    default_profile: RouterProfile,
    mode: BalanceMode,
    schedule: FaultSchedule,
    topo_schedule: TopologySchedule,
    weights: BTreeMap<(usize, Ipv4Addr), Vec<u32>>,
    seed: u64,
}

impl SimNetworkBuilder {
    /// Starts a builder over a topology. By default every interface is its
    /// own router, balancing is per-flow and uniform, no faults.
    pub fn new(topology: MultipathTopology) -> Self {
        Self {
            topology,
            routers: RouterMap::new(),
            profiles: BTreeMap::new(),
            default_profile: RouterProfile::well_behaved(),
            mode: BalanceMode::PerFlow,
            schedule: FaultSchedule::none(),
            topo_schedule: TopologySchedule::none(),
            weights: BTreeMap::new(),
            seed: 0,
        }
    }

    /// Sets the ground-truth alias map (interfaces grouped into routers).
    pub fn routers(mut self, routers: RouterMap) -> Self {
        self.routers = routers;
        self
    }

    /// Overrides the behavioural profile of one router.
    pub fn profile(mut self, router: RouterId, profile: RouterProfile) -> Self {
        self.profiles.insert(router, profile);
        self
    }

    /// Sets the profile used by routers without an explicit override.
    pub fn default_profile(mut self, profile: RouterProfile) -> Self {
        self.default_profile = profile;
        self
    }

    /// Sets the balancing mode.
    pub fn mode(mut self, mode: BalanceMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets a static fault plan (the same impairments for the whole run).
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.schedule = faults.into();
        self
    }

    /// Sets a time-scheduled fault scenario: the impairments in force
    /// follow the schedule's steps as the virtual clock advances.
    pub fn fault_schedule(mut self, schedule: FaultSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Sets a time-scheduled route-change scenario: each mutation is
    /// applied to the live topology the moment the virtual clock first
    /// reaches its tick, and the routing tables are rebuilt in place.
    pub fn topology_schedule(mut self, schedule: TopologySchedule) -> Self {
        self.topo_schedule = schedule;
        self
    }

    /// Sets non-uniform balancing weights for a vertex. Weights align with
    /// the vertex's successors in ascending address order.
    pub fn weights(mut self, hop: usize, vertex: Ipv4Addr, weights: Vec<u32>) -> Self {
        assert_eq!(
            self.topology.successors(hop, vertex).len(),
            weights.len(),
            "weights must match successor count"
        );
        self.weights.insert((hop, vertex), weights);
        self
    }

    /// Sets the seed controlling every stochastic choice.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the simulator.
    pub fn build(self) -> SimNetwork {
        // Assign router ids: explicit map first, then fresh singleton ids.
        let mut next_id = self
            .routers
            .alias_sets()
            .keys()
            .map(|r| r.0 + 1)
            .max()
            .unwrap_or(0);
        let mut assignment: BTreeMap<Ipv4Addr, RouterId> = BTreeMap::new();
        let mut full_map = self.routers.clone();
        for addr in self.topology.all_addresses() {
            let id = match self.routers.router_of(addr) {
                Some(id) => id,
                None => {
                    let id = RouterId(next_id);
                    next_id += 1;
                    full_map.assign(addr, id);
                    id
                }
            };
            assignment.insert(addr, id);
        }

        // Dense per-router profile table for the fast path. Router ids
        // are usually contiguous from 0 (RouterMap::from_alias_sets plus
        // the fresh assignments above), but RouterId is public and a
        // caller may hand in arbitrarily large ids — those fall back to
        // the sparse overflow map rather than sizing the Vec by the id.
        let dense_len = assignment.len() + self.profiles.len() + 1;
        let mut profile_table = vec![self.default_profile; dense_len];
        let mut profile_overflow: BTreeMap<u32, RouterProfile> = BTreeMap::new();
        for (router, profile) in &self.profiles {
            match profile_table.get_mut(router.0 as usize) {
                Some(slot) => *slot = *profile,
                None => {
                    profile_overflow.insert(router.0, *profile);
                }
            }
        }

        let addrs = AddrTable::build(&self.topology, &assignment);
        let routes = RouteTable::build(&self.topology, &addrs, &self.weights);

        SimNetwork {
            hasher: FlowHasher::new(self.seed),
            rng: ChaCha8Rng::seed_from_u64(self.seed ^ 0xF1E2_D3C4_B5A6_9788),
            jitter_rng: ChaCha8Rng::seed_from_u64(self.seed ^ 0x4A17_7E12_B0B5_1DE5),
            topology: self.topology,
            addrs,
            routes,
            ground_truth: full_map,
            assignment,
            next_router_id: next_id,
            weight_map: self.weights,
            profile_table,
            profile_overflow,
            default_profile: self.default_profile,
            mode: self.mode,
            schedule: self.schedule,
            topo_schedule: self.topo_schedule,
            next_mutation: 0,
            fault_state: FaultState::new(),
            ipid: IpIdEngine::new(),
            clock: 0,
            packet_counter: 0,
            counters: TrafficCounters::default(),
            pending: PendingBatch::default(),
        }
    }
}

/// The in-flight batch of a [`SplitTransport`] exchange: replies produced
/// by the send half, plus the per-probe deadline bookkeeping the recv
/// half resolves against.
#[derive(Debug, Default)]
pub(crate) struct PendingBatch {
    pub(crate) replies: ReplyBatch,
    /// Per-probe timeout (ticks from the probe's own send instant).
    pub(crate) timeouts: Vec<u64>,
    /// Per-probe reply latency sampled from the schedule at send time.
    pub(crate) latencies: Vec<u64>,
}

impl PendingBatch {
    pub(crate) fn clear(&mut self) {
        self.replies.clear();
        self.timeouts.clear();
        self.latencies.clear();
    }

    /// Drains the pending batch into `out`, applying deadline semantics:
    /// a reply counts only if its latency fits inside the probe's
    /// timeout; answered slots are stamped `send + latency`, unanswered
    /// slots resolve at their deadline `send + timeout`.
    pub(crate) fn resolve_into(&mut self, out: &mut ReplyBatch) -> u64 {
        out.clear();
        let mut late = 0u64;
        for i in 0..self.replies.len() {
            let sent = self.replies.timestamp(i);
            let timeout = self.timeouts[i];
            let latency = self.latencies[i];
            match self.replies.get(i) {
                Some(bytes) if latency <= timeout => {
                    out.push_with(sent + latency, |buf| {
                        buf.extend_from_slice(bytes);
                        true
                    });
                }
                Some(_) => {
                    // The reply exists but arrived after the deadline:
                    // the caller sees a timeout.
                    late += 1;
                    out.push_with(sent + timeout, |_| false);
                }
                None => {
                    out.push_with(sent + timeout, |_| false);
                }
            }
        }
        self.clear();
        late
    }
}

/// The simulated network (see module docs).
pub struct SimNetwork {
    topology: MultipathTopology,
    addrs: AddrTable,
    routes: RouteTable,
    ground_truth: RouterMap,
    /// Interface → router assignment, kept so mutated topologies can
    /// rebuild the routing tables (fresh interfaces are assigned here).
    assignment: BTreeMap<Ipv4Addr, RouterId>,
    /// Next unassigned router id for freshly minted interfaces.
    next_router_id: u32,
    /// Non-uniform balancing weights, revalidated after each mutation.
    weight_map: BTreeMap<(usize, Ipv4Addr), Vec<u32>>,
    profile_table: Vec<RouterProfile>,
    /// Profiles for router ids beyond the dense table (rare: only when a
    /// caller constructs sparse large RouterIds by hand).
    profile_overflow: BTreeMap<u32, RouterProfile>,
    default_profile: RouterProfile,
    hasher: FlowHasher,
    mode: BalanceMode,
    schedule: FaultSchedule,
    topo_schedule: TopologySchedule,
    /// Index of the next unapplied topology-schedule step.
    next_mutation: usize,
    fault_state: FaultState,
    ipid: IpIdEngine,
    rng: ChaCha8Rng,
    /// Dedicated stream for per-probe latency jitter — separate from the
    /// main RNG so jitter-free schedules leave every other stochastic
    /// stream untouched.
    jitter_rng: ChaCha8Rng,
    clock: u64,
    packet_counter: u64,
    counters: TrafficCounters,
    pending: PendingBatch,
}

impl SimNetwork {
    /// Convenience: a default-configured simulator over a topology.
    pub fn new(topology: MultipathTopology, seed: u64) -> Self {
        SimNetworkBuilder::new(topology).seed(seed).build()
    }

    /// Starts a full builder.
    pub fn builder(topology: MultipathTopology) -> SimNetworkBuilder {
        SimNetworkBuilder::new(topology)
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &MultipathTopology {
        &self.topology
    }

    /// Ground-truth alias map (every interface assigned to its router).
    pub fn ground_truth_routers(&self) -> &RouterMap {
        &self.ground_truth
    }

    /// Traffic counters so far.
    pub fn counters(&self) -> TrafficCounters {
        self.counters
    }

    /// Resets traffic counters (not clocks or counter state).
    pub fn reset_counters(&mut self) {
        self.counters = TrafficCounters::default();
    }

    /// Current virtual clock (ticks; one tick per injected packet).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Advances the virtual clock without sending a packet — lets IP-ID
    /// counters drift, as in the gaps between MBT rounds.
    pub fn advance_clock(&mut self, ticks: u64) {
        self.clock += ticks;
        self.apply_due_mutations();
    }

    /// The fault schedule in force.
    pub fn fault_schedule(&self) -> &FaultSchedule {
        &self.schedule
    }

    /// The topology-mutation schedule in force.
    pub fn topology_schedule(&self) -> &TopologySchedule {
        &self.topo_schedule
    }

    /// Reply latency (ticks) the schedule imposes at clock tick `tick`,
    /// before any jitter spread.
    pub fn latency_at(&self, tick: u64) -> u64 {
        self.schedule.spec_at(tick).latency_ticks
    }

    /// Samples one reply's delivery latency at clock tick `tick`: the
    /// scheduled base latency plus a draw from the dedicated jitter
    /// stream. Jitter-free specs draw nothing, so schedules without
    /// jitter keep their historical reply timing bit-for-bit.
    pub fn sample_latency_at(&mut self, tick: u64) -> u64 {
        let spec = *self.schedule.spec_at(tick);
        self.fault_state.sample_latency(&spec, &mut self.jitter_rng)
    }

    /// Applies every topology-schedule step whose tick the clock has
    /// reached, rebuilding the routing tables after each. Steps the
    /// current shape cannot honour are counted and skipped rather than
    /// wedging the simulation.
    fn apply_due_mutations(&mut self) {
        while let Some(&(tick, mutation)) = self.topo_schedule.steps().get(self.next_mutation) {
            if tick > self.clock {
                break;
            }
            self.next_mutation += 1;
            match mutation.apply(&self.topology) {
                Ok(mutated) => {
                    self.install_topology(mutated);
                    self.counters.mutations_applied += 1;
                }
                Err(_) => self.counters.mutations_rejected += 1,
            }
        }
    }

    /// Swaps in a mutated topology: freshly minted interfaces get their
    /// own router ids (in address order, deterministically), balancing
    /// weights the new shape invalidates are dropped, and the interned
    /// address/route tables are rebuilt.
    fn install_topology(&mut self, topology: MultipathTopology) {
        let mut fresh: Vec<Ipv4Addr> = topology
            .all_addresses()
            .into_iter()
            .filter(|a| !self.assignment.contains_key(a))
            .collect();
        fresh.sort_unstable();
        for addr in fresh {
            let id = RouterId(self.next_router_id);
            self.next_router_id += 1;
            self.assignment.insert(addr, id);
            self.ground_truth.assign(addr, id);
        }
        self.weight_map.retain(|&(hop, vertex), w| {
            topology.contains(hop, vertex) && topology.successors(hop, vertex).len() == w.len()
        });
        self.addrs = AddrTable::build(&topology, &self.assignment);
        self.routes = RouteTable::build(&topology, &self.addrs, &self.weight_map);
        self.topology = topology;
    }

    /// Profile of a router: dense table on the fast path, sparse
    /// overflow for hand-made large ids.
    #[inline]
    fn profile_of(&self, router: RouterId) -> &RouterProfile {
        self.profile_table
            .get(router.0 as usize)
            .or_else(|| self.profile_overflow.get(&router.0))
            .unwrap_or(&self.default_profile)
    }

    /// The balancing selector for a probe per the configured mode.
    fn selector(&self, flow: u64, destination: Ipv4Addr) -> (u64, u64) {
        match self.mode {
            BalanceMode::PerFlow => (flow, 0),
            BalanceMode::PerPacket => (flow, self.packet_counter.max(1)),
            BalanceMode::PerDestination => (u64::from(u32::from(destination)), 0),
        }
    }

    /// Walks a flow to the vertex at hop index `target_hop`, entirely over
    /// interned ids. Returns the vertex reached (which answers TTL
    /// `target_hop + 1`).
    fn walk(&mut self, flow: u64, nonce: u64, target_hop: usize) -> u32 {
        // Entry: the source balances over hop-0 vertices.
        let entry = &self.routes.entry_ids;
        let mut current = if entry.len() == 1 {
            entry[0]
        } else {
            entry[self
                .hasher
                .choose(usize::MAX, Ipv4Addr::UNSPECIFIED, flow, nonce, entry.len())]
        };
        for i in 0..target_hop {
            let succs = self.routes.successors(i, current);
            debug_assert!(!succs.is_empty(), "validated topology");
            if succs.len() == 1 {
                // No balancing decision to make (and `choose` over one
                // successor always picks it): skip the hash entirely.
                // Most hops of an Internet path are single-successor, so
                // this is the walk's common case.
                current = succs[0];
                continue;
            }
            let vertex = self.addrs.addr(current);
            let idx = match self.routes.weights(i, current) {
                Some(w) => self.hasher.choose_weighted(i, vertex, flow, nonce, w),
                None => self.hasher.choose(i, vertex, flow, nonce, succs.len()),
            };
            current = succs[idx];
        }
        current
    }

    /// Handles a UDP probe, appending the reply datagram to `out`.
    fn handle_udp_into(&mut self, spec: &FaultSpec, packet: &[u8], out: &mut Vec<u8>) -> bool {
        let Ok(probe) = parse_udp_probe(packet) else {
            return false;
        };
        if probe.destination != self.topology.destination() {
            return false; // not routed by this simulation
        }
        if probe.ttl == 0 {
            return false;
        }
        // A scheduled blackhole swallows the probe in the forward
        // direction: nothing downstream of the cut ever sees it.
        if self.fault_state.blackholed(spec, probe.ttl) {
            self.counters.probes_blackholed += 1;
            return false;
        }
        let (flow_sel, nonce) = self.selector(u64::from(probe.flow.value()), probe.destination);

        let last_hop = self.topology.num_hops() - 1;
        let target_hop = usize::from(probe.ttl - 1).min(last_hop);
        let responder_id = self.walk(flow_sel, nonce, target_hop);
        let responder = self.addrs.addr(responder_id);

        let reached_destination = target_hop == last_hop;
        let router = self.addrs.router_of[responder_id as usize];
        let profile = *self.profile_of(router);

        // Rate limiting applies to all ICMP generation.
        if !self.fault_state.allow_icmp(spec, router.0, self.clock) {
            self.counters.replies_rate_limited += 1;
            return false;
        }

        // IP-ID stamping; an unresponsive indirect class means an
        // anonymous router (never replies to expired probes).
        let Some(ip_id) = self.ipid.sample(
            &mut self.rng,
            router.0,
            responder,
            &profile.ipid,
            ReplyClass::Indirect,
            probe.sequence,
            self.clock,
        ) else {
            return false;
        };

        // Quote the probe: IP header + 8 payload bytes, with the TTL field
        // rewritten to 1 as a real router quotes the expired datagram
        // (checksum left stale; tools parse quotes leniently). A stack
        // buffer keeps the reply path allocation-free.
        let mut quote_buf = [0u8; 28];
        let quote_len = 28.min(packet.len());
        quote_buf[..quote_len].copy_from_slice(&packet[..quote_len]);
        if quote_len > 8 {
            quote_buf[8] = 1;
        }

        let mpls = self.mpls_entry(&profile);
        let mpls_slice: &[MplsLabelStackEntry] = match &mpls {
            Some(entry) => std::slice::from_ref(entry),
            None => &[],
        };
        let (icmp_type, code) = if reached_destination {
            (IcmpType::DestinationUnreachable, CODE_PORT_UNREACHABLE)
        } else {
            (IcmpType::TimeExceeded, CODE_TTL_EXCEEDED)
        };

        let hop_distance = (target_hop + 1) as u8;
        let reply_ttl = profile.initial_ttl_indirect.saturating_sub(hop_distance);
        self.emit_reply_into(responder, probe.source, reply_ttl, ip_id, out, |buf| {
            emit_error_into(icmp_type, code, &quote_buf[..quote_len], mpls_slice, buf);
        });
        true
    }

    /// Handles a direct (echo) probe addressed to an interface, appending
    /// the reply to `out`.
    fn handle_echo_into(
        &mut self,
        spec: &FaultSpec,
        packet: &[u8],
        header: &Ipv4Header,
        ihl: usize,
        out: &mut Vec<u8>,
    ) -> bool {
        let Ok((identifier, sequence, payload)) = IcmpMessage::parse_echo_request(&packet[ihl..])
        else {
            return false;
        };
        let target = header.destination;
        let Some(target_id) = self.addrs.id(target) else {
            return false;
        };
        // Direct probes travel the same forward path: the blackhole cuts
        // them off by the target's hop distance from the source.
        if self
            .fault_state
            .blackholed(spec, self.addrs.distance[target_id as usize].max(1))
        {
            self.counters.probes_blackholed += 1;
            return false;
        }
        let router = self.addrs.router_of[target_id as usize];
        let profile = *self.profile_of(router);
        if !profile.responds_to_direct {
            return false;
        }
        if !self.fault_state.allow_icmp(spec, router.0, self.clock) {
            self.counters.replies_rate_limited += 1;
            return false;
        }
        let Some(ip_id) = self.ipid.sample(
            &mut self.rng,
            router.0,
            target,
            &profile.ipid,
            ReplyClass::Direct,
            header.identification,
            self.clock,
        ) else {
            return false;
        };
        let hop_distance = self.addrs.distance[target_id as usize].max(1);
        let reply_ttl = profile.initial_ttl_direct.saturating_sub(hop_distance);

        // The payload slice borrows from `packet`, which emit must copy
        // before `self` methods could touch it — the closure only writes.
        self.emit_reply_into(target, header.source, reply_ttl, ip_id, out, |buf| {
            emit_echo_into(IcmpType::EchoReply, identifier, sequence, payload, buf);
        });
        true
    }

    /// Builds the MPLS label entry for a router, if it sits in a tunnel.
    fn mpls_entry(&mut self, profile: &RouterProfile) -> Option<MplsLabelStackEntry> {
        profile.mpls.map(|mpls| {
            let label = if mpls.stable {
                mpls.label
            } else {
                self.rng.gen_range(16..(1 << 20))
            };
            MplsLabelStackEntry::new(label, 0, true, 255)
        })
    }

    /// Assembles a reply datagram directly into `out`: IPv4 header, then
    /// whatever the ICMP writer appends, then the header length fixed up.
    fn emit_reply_into<F: FnOnce(&mut Vec<u8>)>(
        &mut self,
        from: Ipv4Addr,
        to: Ipv4Addr,
        ttl: u8,
        ip_id: u16,
        out: &mut Vec<u8>,
        write_icmp: F,
    ) {
        let header_at = out.len();
        // Reserve the header slot, write the ICMP body, then emit the
        // header with the now-known payload length.
        out.resize(header_at + 20, 0);
        write_icmp(out);
        let icmp_len = out.len() - header_at - 20;
        let ip = Ipv4Header::new(from, to, PROTO_ICMP, ttl, ip_id, icmp_len);
        out[header_at..header_at + 20].copy_from_slice(&ip.emit());
    }
}

impl PacketTransport for SimNetwork {
    fn now(&self) -> u64 {
        self.clock
    }

    fn send_packet(&mut self, packet: &[u8]) -> Option<Vec<u8>> {
        let mut reply = Vec::new();
        if self.send_packet_into(packet, &mut reply) {
            Some(reply)
        } else {
            None
        }
    }

    /// The allocation-free reply path: everything is written into `reply`.
    fn send_packet_into(&mut self, packet: &[u8], reply: &mut Vec<u8>) -> bool {
        self.clock += 1;
        self.packet_counter += 1;
        self.counters.probes_received += 1;
        // Route changes scheduled at or before this packet's processing
        // tick land before the packet is routed.
        if !self.topo_schedule.is_empty() {
            self.apply_due_mutations();
        }

        // The impairments in force at this packet's processing tick.
        let spec = *self.schedule.spec_at(self.clock);

        if self.fault_state.drop_probe(&spec, &mut self.rng) {
            self.counters.probes_lost += 1;
            return false;
        }

        let Ok((header, ihl)) = Ipv4Header::parse(packet) else {
            return false;
        };
        let mark = reply.len();
        let answered = match header.protocol {
            PROTO_UDP => self.handle_udp_into(&spec, packet, reply),
            PROTO_ICMP => self.handle_echo_into(&spec, packet, &header, ihl, reply),
            _ => false,
        };
        if !answered {
            reply.truncate(mark);
            return false;
        }

        if self.fault_state.drop_reply(&spec, &mut self.rng) {
            self.counters.replies_lost += 1;
            reply.truncate(mark);
            return false;
        }
        self.counters.replies_sent += 1;
        true
    }
}

/// The simulator inherits the sequential-equivalent `send_batch` shim:
/// its `send_packet_into` is already allocation-free, so the default loop
/// is the vectorized fast path.
impl BatchTransport for SimNetwork {}

/// Native deadline semantics: the send half routes every probe and
/// records the reply latency the schedule imposes at its processing
/// tick; the recv half suppresses replies that missed their deadline.
/// Receiving costs no virtual time — deadlines live on the same
/// packet-driven clock the replies are stamped with, so with a
/// latency-free schedule the split exchange is byte-identical to
/// [`BatchTransport::send_batch`].
impl SplitTransport for SimNetwork {
    fn send_probes(&mut self, probes: &PacketBatch, timeouts: &[u64]) {
        debug_assert_eq!(probes.len(), timeouts.len(), "one timeout per probe");
        let mut pending = std::mem::take(&mut self.pending);
        pending.clear();
        pending.timeouts.extend_from_slice(timeouts);
        for packet in probes.iter() {
            pending
                .replies
                .push_with(0, |buf| self.send_packet_into(packet, buf));
            pending.replies.set_last_timestamp(self.clock);
            let latency = self.sample_latency_at(self.clock);
            pending.latencies.push(latency);
        }
        self.pending = pending;
    }

    fn recv_replies(&mut self, replies: &mut ReplyBatch) {
        let mut pending = std::mem::take(&mut self.pending);
        pending.resolve_into(replies);
        self.pending = pending;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpt_topo::canonical;
    use mlpt_topo::graph::addr;
    use mlpt_wire::probe::{
        build_echo_probe, build_udp_probe, parse_reply, ProbePacket, ReplyKind,
    };
    use mlpt_wire::FlowId;
    use std::collections::BTreeSet;

    const SRC: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

    fn probe(flow: u16, ttl: u8, dst: Ipv4Addr) -> Vec<u8> {
        build_udp_probe(&ProbePacket {
            source: SRC,
            destination: dst,
            flow: FlowId(flow),
            ttl,
            sequence: flow.wrapping_mul(7),
        })
    }

    #[test]
    fn ttl1_reveals_first_hop() {
        let topo = canonical::simplest_diamond();
        let dst = topo.destination();
        let mut net = SimNetwork::new(topo, 1);
        let reply = net.send_packet(&probe(0, 1, dst)).unwrap();
        let parsed = parse_reply(&reply).unwrap();
        assert_eq!(parsed.kind, ReplyKind::TimeExceeded);
        assert_eq!(parsed.responder, addr(0, 0));
        assert_eq!(parsed.probe_flow, Some(FlowId(0)));
    }

    #[test]
    fn destination_answers_port_unreachable() {
        let topo = canonical::simplest_diamond();
        let dst = topo.destination();
        let mut net = SimNetwork::new(topo, 1);
        for ttl in [3u8, 4, 30] {
            let reply = net.send_packet(&probe(5, ttl, dst)).unwrap();
            let parsed = parse_reply(&reply).unwrap();
            assert_eq!(parsed.kind, ReplyKind::PortUnreachable);
            assert_eq!(parsed.responder, dst);
        }
    }

    #[test]
    fn middle_hop_splits_flows() {
        let topo = canonical::simplest_diamond();
        let dst = topo.destination();
        let mut net = SimNetwork::new(topo, 3);
        let mut seen = BTreeSet::new();
        for flow in 0..64u16 {
            let reply = net.send_packet(&probe(flow, 2, dst)).unwrap();
            let parsed = parse_reply(&reply).unwrap();
            seen.insert(parsed.responder);
        }
        assert_eq!(
            seen,
            BTreeSet::from([addr(1, 0), addr(1, 1)]),
            "both load-balanced interfaces must be observable"
        );
    }

    #[test]
    fn per_flow_routing_is_stable() {
        let topo = canonical::fig1_unmeshed();
        let dst = topo.destination();
        let mut net = SimNetwork::new(topo, 9);
        for flow in 0..32u16 {
            let a = parse_reply(&net.send_packet(&probe(flow, 2, dst)).unwrap())
                .unwrap()
                .responder;
            let b = parse_reply(&net.send_packet(&probe(flow, 2, dst)).unwrap())
                .unwrap()
                .responder;
            assert_eq!(a, b, "flow {flow} must be stable");
        }
    }

    #[test]
    fn flow_paths_respect_edges() {
        // Walk each flow hop by hop; consecutive responders must be joined
        // by a topology edge.
        let topo = canonical::fig1_meshed();
        let dst = topo.destination();
        let mut net = SimNetwork::new(topo.clone(), 5);
        for flow in 0..48u16 {
            let mut path = Vec::new();
            for ttl in 1..=topo.num_hops() as u8 {
                let reply = net.send_packet(&probe(flow, ttl, dst)).unwrap();
                path.push(parse_reply(&reply).unwrap().responder);
            }
            for (i, pair) in path.windows(2).enumerate() {
                assert!(
                    topo.successors(i, pair[0]).contains(&pair[1]),
                    "flow {flow}: hop {i} edge {:?}->{:?} not in topology",
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    #[test]
    fn per_packet_mode_varies_path() {
        let topo = canonical::max_length_2();
        let dst = topo.destination();
        let mut net = SimNetwork::builder(topo)
            .mode(BalanceMode::PerPacket)
            .seed(2)
            .build();
        let mut seen = BTreeSet::new();
        for _ in 0..40 {
            let reply = net.send_packet(&probe(1, 2, dst)).unwrap();
            seen.insert(parse_reply(&reply).unwrap().responder);
        }
        assert!(seen.len() > 3, "per-packet balancing must vary: {seen:?}");
    }

    #[test]
    fn per_destination_mode_single_path() {
        let topo = canonical::max_length_2();
        let dst = topo.destination();
        let mut net = SimNetwork::builder(topo)
            .mode(BalanceMode::PerDestination)
            .seed(2)
            .build();
        let mut seen = BTreeSet::new();
        for flow in 0..40u16 {
            let reply = net.send_packet(&probe(flow, 2, dst)).unwrap();
            seen.insert(parse_reply(&reply).unwrap().responder);
        }
        assert_eq!(seen.len(), 1, "per-destination ignores the flow ID");
    }

    #[test]
    fn reply_ttl_encodes_distance() {
        let topo = canonical::simplest_diamond();
        let dst = topo.destination();
        let mut net = SimNetwork::new(topo, 1);
        let r1 = parse_reply(&net.send_packet(&probe(0, 1, dst)).unwrap()).unwrap();
        let r2 = parse_reply(&net.send_packet(&probe(0, 2, dst)).unwrap()).unwrap();
        // Default initial TTL 255: hop 1 replies with 254, hop 2 with 253.
        assert_eq!(r1.reply_ttl, 254);
        assert_eq!(r2.reply_ttl, 253);
    }

    #[test]
    fn echo_probe_gets_reply_with_counter() {
        let topo = canonical::simplest_diamond();
        let target = addr(1, 0);
        let mut net = SimNetwork::new(topo, 1);
        let req = build_echo_probe(SRC, target, 0xBEEF, 1, 64);
        let reply = net.send_packet(&req).unwrap();
        let parsed = parse_reply(&reply).unwrap();
        assert_eq!(parsed.kind, ReplyKind::EchoReply);
        assert_eq!(parsed.responder, target);
        assert_eq!(parsed.echo, Some((0xBEEF, 1)));
    }

    #[test]
    fn echo_to_unknown_address_unanswered() {
        let topo = canonical::simplest_diamond();
        let mut net = SimNetwork::new(topo, 1);
        let req = build_echo_probe(SRC, Ipv4Addr::new(8, 8, 8, 8), 1, 1, 64);
        assert!(net.send_packet(&req).is_none());
    }

    #[test]
    fn unresponsive_to_direct_profile() {
        let topo = canonical::simplest_diamond();
        let target = addr(1, 0);
        let routers = RouterMap::from_alias_sets([vec![target]]);
        let profile = RouterProfile {
            responds_to_direct: false,
            ..RouterProfile::well_behaved()
        };
        let mut net = SimNetwork::builder(topo)
            .routers(routers)
            .profile(RouterId(0), profile)
            .seed(1)
            .build();
        let req = build_echo_probe(SRC, target, 1, 1, 64);
        assert!(net.send_packet(&req).is_none());
        // Indirect probing still works.
        let dst = net.topology().destination();
        assert!(net.send_packet(&probe(0, 1, dst)).is_some());
    }

    #[test]
    fn mpls_label_attached() {
        let topo = canonical::simplest_diamond();
        let target = addr(1, 0);
        let routers = RouterMap::from_alias_sets([vec![target, addr(1, 1)]]);
        let profile = RouterProfile {
            mpls: Some(crate::router::MplsProfile {
                label: 16001,
                stable: true,
            }),
            ..RouterProfile::well_behaved()
        };
        let dst = topo.destination();
        let mut net = SimNetwork::builder(topo)
            .routers(routers)
            .profile(RouterId(0), profile)
            .seed(1)
            .build();
        // Find a flow reaching the labelled interface at TTL 2.
        let mut found = false;
        for flow in 0..32u16 {
            let reply = net.send_packet(&probe(flow, 2, dst)).unwrap();
            let parsed = parse_reply(&reply).unwrap();
            if parsed.responder == target {
                assert_eq!(parsed.mpls_stack.len(), 1);
                assert_eq!(parsed.mpls_stack[0].label, 16001);
                found = true;
                break;
            }
        }
        assert!(found);
    }

    #[test]
    fn probe_loss_produces_none() {
        let topo = canonical::simplest_diamond();
        let dst = topo.destination();
        let mut net = SimNetwork::builder(topo)
            .faults(FaultPlan::with_loss(1.0, 0.0))
            .seed(1)
            .build();
        assert!(net.send_packet(&probe(0, 1, dst)).is_none());
        assert_eq!(net.counters().probes_lost, 1);
    }

    #[test]
    fn rate_limit_suppresses_bursts() {
        let topo = canonical::simplest_diamond();
        let dst = topo.destination();
        // Capacity 2, no refill: the first hop router answers twice.
        let mut net = SimNetwork::builder(topo)
            .faults(FaultPlan::with_rate_limit(2, 0.0))
            .seed(1)
            .build();
        assert!(net.send_packet(&probe(0, 1, dst)).is_some());
        assert!(net.send_packet(&probe(1, 1, dst)).is_some());
        assert!(net.send_packet(&probe(2, 1, dst)).is_none());
        assert_eq!(net.counters().replies_rate_limited, 1);
    }

    #[test]
    fn wrong_destination_unanswered() {
        let topo = canonical::simplest_diamond();
        let mut net = SimNetwork::new(topo, 1);
        assert!(net
            .send_packet(&probe(0, 1, Ipv4Addr::new(1, 2, 3, 4)))
            .is_none());
    }

    #[test]
    fn deterministic_across_instances() {
        let t1 = canonical::fig1_meshed();
        let dst = t1.destination();
        let mut a = SimNetwork::new(t1.clone(), 77);
        let mut b = SimNetwork::new(t1, 77);
        for flow in 0..64u16 {
            for ttl in 1..=4u8 {
                assert_eq!(
                    a.send_packet(&probe(flow, ttl, dst)),
                    b.send_packet(&probe(flow, ttl, dst))
                );
            }
        }
    }

    #[test]
    fn quoted_probe_recoverable_through_reply() {
        let topo = canonical::simplest_diamond();
        let dst = topo.destination();
        let mut net = SimNetwork::new(topo, 1);
        let reply = net.send_packet(&probe(42, 1, dst)).unwrap();
        let parsed = parse_reply(&reply).unwrap();
        assert_eq!(parsed.probe_flow, Some(FlowId(42)));
        assert_eq!(parsed.probe_sequence, Some(42u16.wrapping_mul(7)));
        assert_eq!(parsed.quoted_ttl, Some(1), "quote carries expired TTL");
    }

    #[test]
    fn send_batch_bit_identical_to_sequential() {
        // The batched transport path must produce byte-for-byte the same
        // replies and timestamps as one-at-a-time dispatch.
        let topo = canonical::fig1_meshed();
        let dst = topo.destination();
        let mut batch = PacketBatch::new();
        for flow in 0..32u16 {
            for ttl in 1..=4u8 {
                batch.push_with(|buf| {
                    mlpt_wire::probe::build_udp_probe_into(
                        &ProbePacket {
                            source: SRC,
                            destination: dst,
                            flow: FlowId(flow),
                            ttl,
                            sequence: flow.wrapping_mul(7),
                        },
                        buf,
                    )
                });
            }
        }

        let mut batched = SimNetwork::new(topo.clone(), 13);
        let mut replies = ReplyBatch::new();
        batched.send_batch(&batch, &mut replies);

        let mut sequential = SimNetwork::new(topo, 13);
        for (i, packet) in batch.iter().enumerate() {
            let expected = sequential.send_packet(packet);
            assert_eq!(
                replies.get(i).map(<[u8]>::to_vec),
                expected,
                "slot {i} diverged"
            );
            assert_eq!(replies.timestamp(i), sequential.now(), "timestamp {i}");
        }
        assert_eq!(batched.counters(), sequential.counters());
    }

    #[test]
    fn scheduled_blackhole_cuts_by_ttl() {
        use crate::faults::{FaultSchedule, FaultSpec};
        let topo = canonical::simplest_diamond();
        let dst = topo.destination();
        // Clean until tick 4, then everything at hop >= 2 goes dark.
        let schedule = FaultSchedule::none().step(4, FaultSpec::none().with_blackhole(2));
        let mut net = SimNetwork::builder(topo)
            .fault_schedule(schedule)
            .seed(1)
            .build();
        // Ticks 1..=3: clean.
        assert!(net.send_packet(&probe(0, 1, dst)).is_some());
        assert!(net.send_packet(&probe(0, 2, dst)).is_some());
        assert!(net.send_packet(&probe(0, 3, dst)).is_some());
        // Tick 4 onward: hop 1 still answers, deeper hops are dark.
        assert!(net.send_packet(&probe(1, 1, dst)).is_some());
        assert!(net.send_packet(&probe(1, 2, dst)).is_none());
        assert!(net.send_packet(&probe(1, 3, dst)).is_none());
        assert_eq!(net.counters().probes_blackholed, 2);
        // Echo probes to interfaces beyond the cut are dark too; the
        // first hop still answers.
        let deep = build_echo_probe(SRC, addr(1, 0), 1, 1, 64);
        assert!(net.send_packet(&deep).is_none());
        let shallow = build_echo_probe(SRC, addr(0, 0), 1, 2, 64);
        assert!(net.send_packet(&shallow).is_some());
        assert_eq!(net.counters().probes_blackholed, 3);
    }

    #[test]
    fn split_transport_matches_batch_without_latency() {
        use mlpt_wire::transport::SplitTransport;
        let topo = canonical::fig1_meshed();
        let dst = topo.destination();
        let mut batch = PacketBatch::new();
        for flow in 0..24u16 {
            for ttl in 1..=4u8 {
                batch.push(&probe(flow, ttl, dst));
            }
        }
        let mut expected = ReplyBatch::new();
        SimNetwork::new(topo.clone(), 13).send_batch(&batch, &mut expected);

        let mut split = SimNetwork::new(topo, 13);
        let timeouts = vec![1u64; batch.len()];
        split.send_probes(&batch, &timeouts);
        let mut got = ReplyBatch::new();
        split.recv_replies(&mut got);
        assert_eq!(got.len(), expected.len());
        for i in 0..expected.len() {
            assert_eq!(got.get(i), expected.get(i), "slot {i}");
            if expected.get(i).is_some() {
                assert_eq!(got.timestamp(i), expected.timestamp(i), "slot {i}");
            }
        }
    }

    #[test]
    fn scheduled_latency_expires_deadlines() {
        use crate::faults::{FaultSchedule, FaultSpec};
        use mlpt_wire::transport::SplitTransport;
        let topo = canonical::simplest_diamond();
        let dst = topo.destination();
        // From tick 3 every reply arrives 10 ticks late.
        let schedule = FaultSchedule::none().step(3, FaultSpec::none().with_latency(10));
        let mut net = SimNetwork::builder(topo)
            .fault_schedule(schedule)
            .seed(1)
            .build();
        let mut batch = PacketBatch::new();
        for flow in 0..4u16 {
            batch.push(&probe(flow, 1, dst));
        }
        // Deadline 5 < latency 10: probes processed at ticks 3 and 4 are
        // answered but late; ticks 1 and 2 are on time.
        net.send_probes(&batch, &[5, 5, 5, 5]);
        let mut replies = ReplyBatch::new();
        net.recv_replies(&mut replies);
        assert!(replies.get(0).is_some());
        assert!(replies.get(1).is_some());
        assert!(replies.get(2).is_none(), "late reply must miss deadline");
        assert!(replies.get(3).is_none(), "late reply must miss deadline");
        assert_eq!(replies.timestamp(0), 1);
        // Unanswered slots resolve at their deadline: send tick + timeout.
        assert_eq!(replies.timestamp(2), 3 + 5);
        // The sim did generate the replies — only the deadline hid them.
        assert_eq!(net.counters().replies_sent, 4);
        // A generous deadline sees them again.
        let mut net2 = SimNetwork::builder(canonical::simplest_diamond())
            .fault_schedule(FaultSchedule::none().step(3, FaultSpec::none().with_latency(10)))
            .seed(1)
            .build();
        net2.send_probes(&batch, &[20, 20, 20, 20]);
        net2.recv_replies(&mut replies);
        assert!((0..4).all(|i| replies.get(i).is_some()));
        // Late replies carry their true arrival tick.
        assert_eq!(replies.timestamp(3), 4 + 10);
    }

    #[test]
    fn scheduled_route_flap_reroutes_flows() {
        use crate::schedule::{TopoMutation, TopologySchedule};
        let topo = canonical::fig1_unmeshed();
        let dst = topo.destination();
        // Swap the hop-1 successor sets at tick 20: vertices 1 and 2 of
        // fig1_unmeshed feed different hop-2 interfaces, so the swap
        // reroutes every flow transiting either.
        let schedule =
            TopologySchedule::none().step(20, TopoMutation::SwapSuccessors { hop: 1, a: 1, b: 2 });
        let mut net = SimNetwork::builder(topo.clone())
            .topology_schedule(schedule)
            .seed(5)
            .build();
        // Pre-flap: record where each flow resolves at TTL 3.
        let mut before = Vec::new();
        for flow in 0..8u16 {
            let reply = net.send_packet(&probe(flow, 3, dst)).unwrap();
            before.push(parse_reply(&reply).unwrap().responder);
        }
        // Burn clock to tick 19 with TTL-1 probes (unaffected by hop 1).
        for flow in 0..11u16 {
            let _ = net.send_packet(&probe(flow, 1, dst));
        }
        assert_eq!(net.counters().mutations_applied, 0);
        // Tick 20: the flap lands before this packet routes.
        let mut after = Vec::new();
        for flow in 0..8u16 {
            let reply = net.send_packet(&probe(flow, 3, dst)).unwrap();
            after.push(parse_reply(&reply).unwrap().responder);
        }
        assert_eq!(net.counters().mutations_applied, 1);
        assert_ne!(before, after, "the flap must reroute some flow");
        // Same (flow, TTL) resolving differently is exactly the artifact
        // a route-change detector keys on.
        let changed = before.iter().zip(&after).filter(|(b, a)| b != a).count();
        assert!(changed > 0);
    }

    #[test]
    fn tunnel_reveal_shifts_destination_deeper() {
        use crate::schedule::{TopoMutation, TopologySchedule};
        let topo = canonical::simplest_diamond();
        let dst = topo.destination();
        let old_depth = topo.num_hops() as u8;
        let schedule = TopologySchedule::none().step(4, TopoMutation::InsertHop { at: 1 });
        let mut net = SimNetwork::builder(topo)
            .topology_schedule(schedule)
            .seed(2)
            .build();
        // Pre-reveal: the destination answers at its original depth.
        let r = parse_reply(&net.send_packet(&probe(0, old_depth, dst)).unwrap()).unwrap();
        assert_eq!(r.kind, ReplyKind::PortUnreachable);
        let _ = net.send_packet(&probe(0, 1, dst));
        let _ = net.send_packet(&probe(1, 1, dst));
        // Post-reveal: the same TTL now hits an intermediate hop ...
        let r = parse_reply(&net.send_packet(&probe(0, old_depth, dst)).unwrap()).unwrap();
        assert_eq!(r.kind, ReplyKind::TimeExceeded);
        // ... and the destination sits one hop deeper.
        let r = parse_reply(&net.send_packet(&probe(0, old_depth + 1, dst)).unwrap()).unwrap();
        assert_eq!(r.kind, ReplyKind::PortUnreachable);
        assert_eq!(r.responder, dst);
        assert_eq!(net.counters().mutations_applied, 1);
    }

    #[test]
    fn impossible_mutation_counted_not_fatal() {
        use crate::schedule::{TopoMutation, TopologySchedule};
        let topo = canonical::simplest_diamond();
        let dst = topo.destination();
        // Hop 0 has one vertex: removing a branch from it is impossible.
        let schedule =
            TopologySchedule::none().step(2, TopoMutation::RemoveBranch { hop: 0, index: 0 });
        let mut net = SimNetwork::builder(topo)
            .topology_schedule(schedule)
            .seed(2)
            .build();
        assert!(net.send_packet(&probe(0, 1, dst)).is_some());
        assert!(net.send_packet(&probe(1, 1, dst)).is_some());
        assert!(net.send_packet(&probe(2, 1, dst)).is_some());
        assert_eq!(net.counters().mutations_applied, 0);
        assert_eq!(net.counters().mutations_rejected, 1);
    }

    #[test]
    fn mutation_free_network_unchanged_by_schedule_plumbing() {
        use crate::schedule::TopologySchedule;
        let topo = canonical::fig1_meshed();
        let dst = topo.destination();
        let mut plain = SimNetwork::new(topo.clone(), 77);
        let mut scheduled = SimNetwork::builder(topo)
            .topology_schedule(TopologySchedule::none())
            .seed(77)
            .build();
        for flow in 0..64u16 {
            for ttl in 1..=4u8 {
                assert_eq!(
                    plain.send_packet(&probe(flow, ttl, dst)),
                    scheduled.send_packet(&probe(flow, ttl, dst))
                );
            }
        }
    }

    #[test]
    fn jitter_spreads_reply_latencies_deterministically() {
        use crate::faults::{FaultSchedule, FaultSpec};
        use mlpt_wire::transport::SplitTransport;
        let dst = canonical::simplest_diamond().destination();
        let build = |seed| {
            SimNetwork::builder(canonical::simplest_diamond())
                .fault_schedule(FaultSchedule::constant(
                    FaultSpec::none().with_latency(1).with_jitter(6),
                ))
                .seed(seed)
                .build()
        };
        let mut batch = PacketBatch::new();
        for flow in 0..32u16 {
            batch.push(&probe(flow, 1, dst));
        }
        let timeouts = vec![4u64; batch.len()];
        let mut a = build(11);
        a.send_probes(&batch, &timeouts);
        let mut ra = ReplyBatch::new();
        a.recv_replies(&mut ra);
        // With latency 1..=7 against deadline 4, some replies squeak in
        // and some straggle past: the spread is visible.
        let on_time = (0..ra.len()).filter(|&i| ra.get(i).is_some()).count();
        assert!(on_time > 0, "some replies must make the deadline");
        assert!(on_time < ra.len(), "some replies must miss the deadline");
        // Same seed → identical outcome; the spread is protocol, not luck.
        let mut b = build(11);
        b.send_probes(&batch, &timeouts);
        let mut rb = ReplyBatch::new();
        b.recv_replies(&mut rb);
        for i in 0..ra.len() {
            assert_eq!(ra.get(i), rb.get(i), "slot {i}");
            assert_eq!(ra.timestamp(i), rb.timestamp(i), "slot {i} timestamp");
        }
    }

    #[test]
    fn send_packet_into_reuses_buffer() {
        let topo = canonical::simplest_diamond();
        let dst = topo.destination();
        let mut net = SimNetwork::new(topo, 1);
        let mut buf = Vec::new();
        assert!(net.send_packet_into(&probe(0, 1, dst), &mut buf));
        let first_len = buf.len();
        assert!(first_len > 20);
        // An unanswered probe must leave prior contents intact.
        assert!(!net.send_packet_into(&probe(0, 1, Ipv4Addr::new(1, 2, 3, 4)), &mut buf));
        assert_eq!(buf.len(), first_len);
        // A second answered probe appends after the first.
        assert!(net.send_packet_into(&probe(1, 1, dst), &mut buf));
        assert!(buf.len() > first_len);
        assert!(parse_reply(&buf[..first_len]).is_ok());
        assert!(parse_reply(&buf[first_len..]).is_ok());
    }
}
