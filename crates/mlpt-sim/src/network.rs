//! The simulated network: probe bytes in, reply bytes out.
//!
//! [`SimNetwork`] is the in-process equivalent of Fakeroute's
//! libnetfilter-queue capture loop: a tool hands it a complete probe
//! datagram; the simulator parses the header fields (flow identifier and
//! TTL, exactly as Fakeroute does with libtins), walks the packet through
//! the topology's load balancers, and crafts a complete ICMP reply — Time
//! Exceeded from an intermediate interface, Port Unreachable from the
//! destination, or Echo Reply for direct probes.
//!
//! All randomness is seeded; two simulators constructed with the same
//! arguments behave identically.

use crate::balance::{BalanceMode, FlowHasher};
use crate::faults::{FaultPlan, FaultState};
use crate::router::{IpIdEngine, ReplyClass, RouterProfile};
use mlpt_topo::{MultipathTopology, RouterId, RouterMap};
use mlpt_wire::icmp::{IcmpExtensions, IcmpMessage, MplsLabelStackEntry, CODE_PORT_UNREACHABLE};
use mlpt_wire::ipv4::{Ipv4Header, PROTO_ICMP, PROTO_UDP};
use mlpt_wire::probe::parse_udp_probe;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use std::net::Ipv4Addr;

pub use mlpt_wire::transport::PacketTransport;

/// Traffic counters maintained by the simulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficCounters {
    /// Probes received from the tool.
    pub probes_received: u64,
    /// Probes dropped by injected loss.
    pub probes_lost: u64,
    /// Replies generated.
    pub replies_sent: u64,
    /// Replies suppressed by rate limiting.
    pub replies_rate_limited: u64,
    /// Replies dropped by injected loss.
    pub replies_lost: u64,
}

/// Builder for [`SimNetwork`].
pub struct SimNetworkBuilder {
    topology: MultipathTopology,
    routers: RouterMap,
    profiles: HashMap<RouterId, RouterProfile>,
    default_profile: RouterProfile,
    mode: BalanceMode,
    faults: FaultPlan,
    weights: HashMap<(usize, Ipv4Addr), Vec<u32>>,
    seed: u64,
}

impl SimNetworkBuilder {
    /// Starts a builder over a topology. By default every interface is its
    /// own router, balancing is per-flow and uniform, no faults.
    pub fn new(topology: MultipathTopology) -> Self {
        Self {
            topology,
            routers: RouterMap::new(),
            profiles: HashMap::new(),
            default_profile: RouterProfile::well_behaved(),
            mode: BalanceMode::PerFlow,
            faults: FaultPlan::none(),
            weights: HashMap::new(),
            seed: 0,
        }
    }

    /// Sets the ground-truth alias map (interfaces grouped into routers).
    pub fn routers(mut self, routers: RouterMap) -> Self {
        self.routers = routers;
        self
    }

    /// Overrides the behavioural profile of one router.
    pub fn profile(mut self, router: RouterId, profile: RouterProfile) -> Self {
        self.profiles.insert(router, profile);
        self
    }

    /// Sets the profile used by routers without an explicit override.
    pub fn default_profile(mut self, profile: RouterProfile) -> Self {
        self.default_profile = profile;
        self
    }

    /// Sets the balancing mode.
    pub fn mode(mut self, mode: BalanceMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the fault plan.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets non-uniform balancing weights for a vertex. Weights align with
    /// the vertex's successors in ascending address order.
    pub fn weights(mut self, hop: usize, vertex: Ipv4Addr, weights: Vec<u32>) -> Self {
        assert_eq!(
            self.topology.successors(hop, vertex).len(),
            weights.len(),
            "weights must match successor count"
        );
        self.weights.insert((hop, vertex), weights);
        self
    }

    /// Sets the seed controlling every stochastic choice.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the simulator.
    pub fn build(self) -> SimNetwork {
        // Assign router ids: explicit map first, then fresh singleton ids.
        let mut next_id = self
            .routers
            .alias_sets()
            .keys()
            .map(|r| r.0 + 1)
            .max()
            .unwrap_or(0);
        let mut assignment: HashMap<Ipv4Addr, RouterId> = HashMap::new();
        let mut full_map = self.routers.clone();
        for addr in self.topology.all_addresses() {
            let id = match self.routers.router_of(addr) {
                Some(id) => id,
                None => {
                    let id = RouterId(next_id);
                    next_id += 1;
                    full_map.assign(addr, id);
                    id
                }
            };
            assignment.insert(addr, id);
        }

        // Distance (in hops) of each address from the source: first hop
        // where it appears, + 1. Used for reply TTL computation.
        let mut distance: HashMap<Ipv4Addr, usize> = HashMap::new();
        for i in 0..self.topology.num_hops() {
            for &a in self.topology.hop(i) {
                distance.entry(a).or_insert(i + 1);
            }
        }

        SimNetwork {
            hasher: FlowHasher::new(self.seed),
            rng: ChaCha8Rng::seed_from_u64(self.seed ^ 0xF1E2_D3C4_B5A6_9788),
            topology: self.topology,
            router_of: assignment,
            ground_truth: full_map,
            profiles: self.profiles,
            default_profile: self.default_profile,
            mode: self.mode,
            faults: self.faults,
            fault_state: FaultState::new(),
            ipid: IpIdEngine::new(),
            weights: self.weights,
            distance,
            clock: 0,
            packet_counter: 0,
            counters: TrafficCounters::default(),
        }
    }
}

/// The simulated network (see module docs).
pub struct SimNetwork {
    topology: MultipathTopology,
    router_of: HashMap<Ipv4Addr, RouterId>,
    ground_truth: RouterMap,
    profiles: HashMap<RouterId, RouterProfile>,
    default_profile: RouterProfile,
    hasher: FlowHasher,
    mode: BalanceMode,
    faults: FaultPlan,
    fault_state: FaultState,
    ipid: IpIdEngine,
    weights: HashMap<(usize, Ipv4Addr), Vec<u32>>,
    distance: HashMap<Ipv4Addr, usize>,
    rng: ChaCha8Rng,
    clock: u64,
    packet_counter: u64,
    counters: TrafficCounters,
}

impl SimNetwork {
    /// Convenience: a default-configured simulator over a topology.
    pub fn new(topology: MultipathTopology, seed: u64) -> Self {
        SimNetworkBuilder::new(topology).seed(seed).build()
    }

    /// Starts a full builder.
    pub fn builder(topology: MultipathTopology) -> SimNetworkBuilder {
        SimNetworkBuilder::new(topology)
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &MultipathTopology {
        &self.topology
    }

    /// Ground-truth alias map (every interface assigned to its router).
    pub fn ground_truth_routers(&self) -> &RouterMap {
        &self.ground_truth
    }

    /// Traffic counters so far.
    pub fn counters(&self) -> TrafficCounters {
        self.counters
    }

    /// Resets traffic counters (not clocks or counter state).
    pub fn reset_counters(&mut self) {
        self.counters = TrafficCounters::default();
    }

    /// Current virtual clock (ticks; one tick per injected packet).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Advances the virtual clock without sending a packet — lets IP-ID
    /// counters drift, as in the gaps between MBT rounds.
    pub fn advance_clock(&mut self, ticks: u64) {
        self.clock += ticks;
    }

    /// Profile of the router owning `addr`.
    fn profile_of(&self, router: RouterId) -> &RouterProfile {
        self.profiles.get(&router).unwrap_or(&self.default_profile)
    }

    /// The balancing selector for a probe per the configured mode.
    fn selector(&self, flow: u64, destination: Ipv4Addr) -> (u64, u64) {
        match self.mode {
            BalanceMode::PerFlow => (flow, 0),
            BalanceMode::PerPacket => (flow, self.packet_counter.max(1)),
            BalanceMode::PerDestination => (u64::from(u32::from(destination)), 0),
        }
    }

    /// Walks a flow to the vertex at hop index `target_hop`.
    /// Returns the vertex reached (which answers TTL `target_hop + 1`).
    fn walk(&mut self, flow: u64, nonce: u64, destination: Ipv4Addr, target_hop: usize) -> Ipv4Addr {
        // Entry: the source balances over hop-0 vertices.
        let entry = self.topology.hop(0);
        let mut current = if entry.len() == 1 {
            entry[0]
        } else {
            entry[self
                .hasher
                .choose(usize::MAX, Ipv4Addr::UNSPECIFIED, flow, nonce, entry.len())]
        };
        let _ = destination;
        for i in 0..target_hop {
            let succs = self.topology.successors(i, current);
            debug_assert!(!succs.is_empty(), "validated topology");
            let succ_list: Vec<Ipv4Addr> = succs.iter().copied().collect();
            let idx = match self.weights.get(&(i, current)) {
                Some(w) => self.hasher.choose_weighted(i, current, flow, nonce, w),
                None => self.hasher.choose(i, current, flow, nonce, succ_list.len()),
            };
            current = succ_list[idx];
        }
        current
    }

    /// Handles a UDP probe: returns the reply datagram, if any.
    fn handle_udp(&mut self, packet: &[u8]) -> Option<Vec<u8>> {
        let probe = parse_udp_probe(packet).ok()?;
        if probe.destination != self.topology.destination() {
            return None; // not routed by this simulation
        }
        if probe.ttl == 0 {
            return None;
        }
        let (flow_sel, nonce) = self.selector(u64::from(probe.flow.value()), probe.destination);

        let last_hop = self.topology.num_hops() - 1;
        let target_hop = usize::from(probe.ttl - 1).min(last_hop);
        let responder = self.walk(flow_sel, nonce, probe.destination, target_hop);

        let reached_destination = target_hop == last_hop;
        let router = self.router_of[&responder];
        let profile = *self.profile_of(router);

        // Rate limiting applies to all ICMP generation.
        if !self.fault_state.allow_icmp(&self.faults, router.0, self.clock) {
            self.counters.replies_rate_limited += 1;
            return None;
        }

        // IP-ID stamping; an unresponsive indirect class means an
        // anonymous router (never replies to expired probes).
        let ip_id = self.ipid.sample(
            &mut self.rng,
            router.0,
            responder,
            &profile.ipid,
            ReplyClass::Indirect,
            probe.sequence,
            self.clock,
        )?;

        // Quote the probe: IP header + 8 payload bytes, with the TTL field
        // rewritten to 1 as a real router quotes the expired datagram
        // (checksum left stale; tools parse quotes leniently).
        let mut quoted = packet[..28.min(packet.len())].to_vec();
        if quoted.len() > 8 {
            quoted[8] = 1;
        }

        let extensions = self.mpls_extensions(&profile);
        let icmp = if reached_destination {
            IcmpMessage::DestinationUnreachable {
                code: CODE_PORT_UNREACHABLE,
                quoted,
                extensions,
            }
        } else {
            IcmpMessage::TimeExceeded { quoted, extensions }
        };

        let hop_distance = (target_hop + 1) as u8;
        let reply_ttl = profile.initial_ttl_indirect.saturating_sub(hop_distance);
        Some(self.emit_reply(responder, probe.source, reply_ttl, ip_id, icmp))
    }

    /// Handles a direct (echo) probe addressed to an interface.
    fn handle_echo(&mut self, packet: &[u8], header: &Ipv4Header, ihl: usize) -> Option<Vec<u8>> {
        let msg = IcmpMessage::parse(&packet[ihl..]).ok()?;
        let IcmpMessage::EchoRequest {
            identifier,
            sequence,
            payload,
        } = msg
        else {
            return None;
        };
        let target = header.destination;
        let router = *self.router_of.get(&target)?;
        let profile = *self.profile_of(router);
        if !profile.responds_to_direct {
            return None;
        }
        if !self.fault_state.allow_icmp(&self.faults, router.0, self.clock) {
            self.counters.replies_rate_limited += 1;
            return None;
        }
        let ip_id = self.ipid.sample(
            &mut self.rng,
            router.0,
            target,
            &profile.ipid,
            ReplyClass::Direct,
            header.identification,
            self.clock,
        )?;
        let reply = IcmpMessage::EchoReply {
            identifier,
            sequence,
            payload,
        };
        let hop_distance = self.distance.get(&target).copied().unwrap_or(1) as u8;
        let reply_ttl = profile.initial_ttl_direct.saturating_sub(hop_distance);
        Some(self.emit_reply(target, header.source, reply_ttl, ip_id, reply))
    }

    /// Builds MPLS extensions for a router, if it sits in a tunnel.
    fn mpls_extensions(&mut self, profile: &RouterProfile) -> IcmpExtensions {
        match profile.mpls {
            None => IcmpExtensions::default(),
            Some(mpls) => {
                let label = if mpls.stable {
                    mpls.label
                } else {
                    self.rng.gen_range(16..(1 << 20))
                };
                IcmpExtensions {
                    mpls_stack: vec![MplsLabelStackEntry::new(label, 0, true, 255)],
                }
            }
        }
    }

    /// Assembles the reply datagram bytes.
    fn emit_reply(
        &mut self,
        from: Ipv4Addr,
        to: Ipv4Addr,
        ttl: u8,
        ip_id: u16,
        icmp: IcmpMessage,
    ) -> Vec<u8> {
        let icmp_bytes = icmp.emit();
        let ip = Ipv4Header::new(from, to, PROTO_ICMP, ttl, ip_id, icmp_bytes.len());
        let mut packet = Vec::with_capacity(20 + icmp_bytes.len());
        packet.extend_from_slice(&ip.emit());
        packet.extend_from_slice(&icmp_bytes);
        packet
    }
}

impl PacketTransport for SimNetwork {
    fn now(&self) -> u64 {
        self.clock
    }

    fn send_packet(&mut self, packet: &[u8]) -> Option<Vec<u8>> {
        self.clock += 1;
        self.packet_counter += 1;
        self.counters.probes_received += 1;

        if self.fault_state.drop_probe(&self.faults, &mut self.rng) {
            self.counters.probes_lost += 1;
            return None;
        }

        let (header, ihl) = Ipv4Header::parse(packet).ok()?;
        let reply = match header.protocol {
            PROTO_UDP => self.handle_udp(packet),
            PROTO_ICMP => self.handle_echo(packet, &header, ihl),
            _ => None,
        }?;

        if self.fault_state.drop_reply(&self.faults, &mut self.rng) {
            self.counters.replies_lost += 1;
            return None;
        }
        self.counters.replies_sent += 1;
        Some(reply)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpt_topo::canonical;
    use mlpt_topo::graph::addr;
    use mlpt_wire::probe::{build_echo_probe, build_udp_probe, parse_reply, ProbePacket, ReplyKind};
    use mlpt_wire::FlowId;
    use std::collections::BTreeSet;

    const SRC: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

    fn probe(flow: u16, ttl: u8, dst: Ipv4Addr) -> Vec<u8> {
        build_udp_probe(&ProbePacket {
            source: SRC,
            destination: dst,
            flow: FlowId(flow),
            ttl,
            sequence: flow.wrapping_mul(7),
        })
    }

    #[test]
    fn ttl1_reveals_first_hop() {
        let topo = canonical::simplest_diamond();
        let dst = topo.destination();
        let mut net = SimNetwork::new(topo, 1);
        let reply = net.send_packet(&probe(0, 1, dst)).unwrap();
        let parsed = parse_reply(&reply).unwrap();
        assert_eq!(parsed.kind, ReplyKind::TimeExceeded);
        assert_eq!(parsed.responder, addr(0, 0));
        assert_eq!(parsed.probe_flow, Some(FlowId(0)));
    }

    #[test]
    fn destination_answers_port_unreachable() {
        let topo = canonical::simplest_diamond();
        let dst = topo.destination();
        let mut net = SimNetwork::new(topo, 1);
        for ttl in [3u8, 4, 30] {
            let reply = net.send_packet(&probe(5, ttl, dst)).unwrap();
            let parsed = parse_reply(&reply).unwrap();
            assert_eq!(parsed.kind, ReplyKind::PortUnreachable);
            assert_eq!(parsed.responder, dst);
        }
    }

    #[test]
    fn middle_hop_splits_flows() {
        let topo = canonical::simplest_diamond();
        let dst = topo.destination();
        let mut net = SimNetwork::new(topo, 3);
        let mut seen = BTreeSet::new();
        for flow in 0..64u16 {
            let reply = net.send_packet(&probe(flow, 2, dst)).unwrap();
            let parsed = parse_reply(&reply).unwrap();
            seen.insert(parsed.responder);
        }
        assert_eq!(
            seen,
            BTreeSet::from([addr(1, 0), addr(1, 1)]),
            "both load-balanced interfaces must be observable"
        );
    }

    #[test]
    fn per_flow_routing_is_stable() {
        let topo = canonical::fig1_unmeshed();
        let dst = topo.destination();
        let mut net = SimNetwork::new(topo, 9);
        for flow in 0..32u16 {
            let a = parse_reply(&net.send_packet(&probe(flow, 2, dst)).unwrap())
                .unwrap()
                .responder;
            let b = parse_reply(&net.send_packet(&probe(flow, 2, dst)).unwrap())
                .unwrap()
                .responder;
            assert_eq!(a, b, "flow {flow} must be stable");
        }
    }

    #[test]
    fn flow_paths_respect_edges() {
        // Walk each flow hop by hop; consecutive responders must be joined
        // by a topology edge.
        let topo = canonical::fig1_meshed();
        let dst = topo.destination();
        let mut net = SimNetwork::new(topo.clone(), 5);
        for flow in 0..48u16 {
            let mut path = Vec::new();
            for ttl in 1..=topo.num_hops() as u8 {
                let reply = net.send_packet(&probe(flow, ttl, dst)).unwrap();
                path.push(parse_reply(&reply).unwrap().responder);
            }
            for (i, pair) in path.windows(2).enumerate() {
                assert!(
                    topo.successors(i, pair[0]).contains(&pair[1]),
                    "flow {flow}: hop {i} edge {:?}->{:?} not in topology",
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    #[test]
    fn per_packet_mode_varies_path() {
        let topo = canonical::max_length_2();
        let dst = topo.destination();
        let mut net = SimNetwork::builder(topo)
            .mode(BalanceMode::PerPacket)
            .seed(2)
            .build();
        let mut seen = BTreeSet::new();
        for _ in 0..40 {
            let reply = net.send_packet(&probe(1, 2, dst)).unwrap();
            seen.insert(parse_reply(&reply).unwrap().responder);
        }
        assert!(seen.len() > 3, "per-packet balancing must vary: {seen:?}");
    }

    #[test]
    fn per_destination_mode_single_path() {
        let topo = canonical::max_length_2();
        let dst = topo.destination();
        let mut net = SimNetwork::builder(topo)
            .mode(BalanceMode::PerDestination)
            .seed(2)
            .build();
        let mut seen = BTreeSet::new();
        for flow in 0..40u16 {
            let reply = net.send_packet(&probe(flow, 2, dst)).unwrap();
            seen.insert(parse_reply(&reply).unwrap().responder);
        }
        assert_eq!(seen.len(), 1, "per-destination ignores the flow ID");
    }

    #[test]
    fn reply_ttl_encodes_distance() {
        let topo = canonical::simplest_diamond();
        let dst = topo.destination();
        let mut net = SimNetwork::new(topo, 1);
        let r1 = parse_reply(&net.send_packet(&probe(0, 1, dst)).unwrap()).unwrap();
        let r2 = parse_reply(&net.send_packet(&probe(0, 2, dst)).unwrap()).unwrap();
        // Default initial TTL 255: hop 1 replies with 254, hop 2 with 253.
        assert_eq!(r1.reply_ttl, 254);
        assert_eq!(r2.reply_ttl, 253);
    }

    #[test]
    fn echo_probe_gets_reply_with_counter() {
        let topo = canonical::simplest_diamond();
        let target = addr(1, 0);
        let mut net = SimNetwork::new(topo, 1);
        let req = build_echo_probe(SRC, target, 0xBEEF, 1, 64);
        let reply = net.send_packet(&req).unwrap();
        let parsed = parse_reply(&reply).unwrap();
        assert_eq!(parsed.kind, ReplyKind::EchoReply);
        assert_eq!(parsed.responder, target);
        assert_eq!(parsed.echo, Some((0xBEEF, 1)));
    }

    #[test]
    fn echo_to_unknown_address_unanswered() {
        let topo = canonical::simplest_diamond();
        let mut net = SimNetwork::new(topo, 1);
        let req = build_echo_probe(SRC, Ipv4Addr::new(8, 8, 8, 8), 1, 1, 64);
        assert!(net.send_packet(&req).is_none());
    }

    #[test]
    fn unresponsive_to_direct_profile() {
        let topo = canonical::simplest_diamond();
        let target = addr(1, 0);
        let routers = RouterMap::from_alias_sets([vec![target]]);
        let profile = RouterProfile {
            responds_to_direct: false,
            ..RouterProfile::well_behaved()
        };
        let mut net = SimNetwork::builder(topo)
            .routers(routers)
            .profile(RouterId(0), profile)
            .seed(1)
            .build();
        let req = build_echo_probe(SRC, target, 1, 1, 64);
        assert!(net.send_packet(&req).is_none());
        // Indirect probing still works.
        let dst = net.topology().destination();
        assert!(net.send_packet(&probe(0, 1, dst)).is_some());
    }

    #[test]
    fn mpls_label_attached() {
        let topo = canonical::simplest_diamond();
        let target = addr(1, 0);
        let routers = RouterMap::from_alias_sets([vec![target, addr(1, 1)]]);
        let profile = RouterProfile {
            mpls: Some(crate::router::MplsProfile {
                label: 16001,
                stable: true,
            }),
            ..RouterProfile::well_behaved()
        };
        let dst = topo.destination();
        let mut net = SimNetwork::builder(topo)
            .routers(routers)
            .profile(RouterId(0), profile)
            .seed(1)
            .build();
        // Find a flow reaching the labelled interface at TTL 2.
        let mut found = false;
        for flow in 0..32u16 {
            let reply = net.send_packet(&probe(flow, 2, dst)).unwrap();
            let parsed = parse_reply(&reply).unwrap();
            if parsed.responder == target {
                assert_eq!(parsed.mpls_stack.len(), 1);
                assert_eq!(parsed.mpls_stack[0].label, 16001);
                found = true;
                break;
            }
        }
        assert!(found);
    }

    #[test]
    fn probe_loss_produces_none() {
        let topo = canonical::simplest_diamond();
        let dst = topo.destination();
        let mut net = SimNetwork::builder(topo)
            .faults(FaultPlan::with_loss(1.0, 0.0))
            .seed(1)
            .build();
        assert!(net.send_packet(&probe(0, 1, dst)).is_none());
        assert_eq!(net.counters().probes_lost, 1);
    }

    #[test]
    fn rate_limit_suppresses_bursts() {
        let topo = canonical::simplest_diamond();
        let dst = topo.destination();
        // Capacity 2, no refill: the first hop router answers twice.
        let mut net = SimNetwork::builder(topo)
            .faults(FaultPlan::with_rate_limit(2, 0.0))
            .seed(1)
            .build();
        assert!(net.send_packet(&probe(0, 1, dst)).is_some());
        assert!(net.send_packet(&probe(1, 1, dst)).is_some());
        assert!(net.send_packet(&probe(2, 1, dst)).is_none());
        assert_eq!(net.counters().replies_rate_limited, 1);
    }

    #[test]
    fn wrong_destination_unanswered() {
        let topo = canonical::simplest_diamond();
        let mut net = SimNetwork::new(topo, 1);
        assert!(net
            .send_packet(&probe(0, 1, Ipv4Addr::new(1, 2, 3, 4)))
            .is_none());
    }

    #[test]
    fn deterministic_across_instances() {
        let t1 = canonical::fig1_meshed();
        let dst = t1.destination();
        let mut a = SimNetwork::new(t1.clone(), 77);
        let mut b = SimNetwork::new(t1, 77);
        for flow in 0..64u16 {
            for ttl in 1..=4u8 {
                assert_eq!(
                    a.send_packet(&probe(flow, ttl, dst)),
                    b.send_packet(&probe(flow, ttl, dst))
                );
            }
        }
    }

    #[test]
    fn quoted_probe_recoverable_through_reply() {
        let topo = canonical::simplest_diamond();
        let dst = topo.destination();
        let mut net = SimNetwork::new(topo, 1);
        let reply = net.send_packet(&probe(42, 1, dst)).unwrap();
        let parsed = parse_reply(&reply).unwrap();
        assert_eq!(parsed.probe_flow, Some(FlowId(42)));
        assert_eq!(parsed.probe_sequence, Some(42u16.wrapping_mul(7)));
        assert_eq!(parsed.quoted_ttl, Some(1), "quote carries expired TTL");
    }
}
