//! Persistent lane worker pool for [`crate::MultiNetwork`].
//!
//! PR 2's parallel `send_batch` path spawned a fresh `thread::scope`
//! per transport crossing, which only amortized above ~64 probes per
//! worker — so the very dispatch sizes an adaptive budget backs off to
//! (single-digit batches) always ran serially. This pool replaces the
//! per-crossing spawn with **long-lived workers**: each worker owns an
//! input queue and parks in `recv` between crossings (`mpsc` blocks by
//! parking the thread; enqueueing a job unparks it), so the per-crossing
//! cost drops from a thread spawn/join (~10–30 µs each on this class of
//! hardware) to two channel hops (~1 µs), and the parallel path engages
//! at any batch size.
//!
//! Determinism: a job hands every worker a *disjoint* set of lanes, each
//! worker processes its lanes' slots in slot order, and the caller
//! merges the produced `(slot, reply, lane clock)` records back in slot
//! order — exactly the contract the scoped-spawn path had, so replies
//! are bit-identical for any worker count and any thread timing.
//!
//! Ownership: lanes live in an `Arc<Vec<Mutex<SimNetwork>>>`. Workers
//! clone the `Arc` only for the duration of one job and drop it
//! **before** acking, so between crossings the `MultiNetwork` holds the
//! only reference and recovers plain `&mut SimNetwork` access (no lock
//! traffic on the serial path). The per-lane mutexes are uncontended by
//! construction — a job never assigns one lane to two workers.

use crate::network::SimNetwork;
use mlpt_wire::transport::{PacketBatch, PacketTransport};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// One crossing's worth of work for one worker: a disjoint set of lanes
/// and, per lane, the probe slots routed to it (in slot order).
struct Job {
    lanes: Arc<Vec<Mutex<SimNetwork>>>,
    probes: Arc<PacketBatch>,
    /// `(lane index, slots routed to that lane)` — lanes disjoint
    /// across the workers of one crossing.
    assignments: Vec<(usize, Vec<usize>)>,
    reply_to: Sender<JobOutput>,
}

/// `(slot, reply bytes if answered, owning lane's clock after the
/// packet)` records, produced per worker and merged by the caller.
type JobOutput = Vec<(usize, Option<Vec<u8>>, u64)>;

struct Worker {
    queue: Sender<Job>,
    handle: Option<JoinHandle<()>>,
}

/// The persistent pool: `len()` long-lived workers, each parked on its
/// own queue until a crossing assigns it lanes.
pub(crate) struct WorkerPool {
    workers: Vec<Worker>,
}

impl WorkerPool {
    /// Spawns `workers` lane workers (at least one).
    pub(crate) fn new(workers: usize) -> Self {
        let workers = (0..workers.max(1))
            .map(|_| {
                let (queue, jobs) = channel::<Job>();
                let handle = std::thread::spawn(move || {
                    // Parked in `recv` between crossings; wakes when a
                    // job lands, exits when the pool drops the sender.
                    while let Ok(job) = jobs.recv() {
                        let Job {
                            lanes,
                            probes,
                            assignments,
                            reply_to,
                        } = job;
                        let mut out: JobOutput = Vec::new();
                        for (lane_index, slots) in assignments {
                            let mut lane = lanes[lane_index]
                                .lock()
                                .expect("lane mutex poisoned by a sibling worker");
                            for slot in slots {
                                let reply = lane.send_packet(probes.get(slot));
                                out.push((slot, reply, lane.clock()));
                            }
                        }
                        // Drop the shared handles *before* acking so the
                        // caller's post-crossing `Arc::get_mut` (the
                        // lock-free serial/accessor path) always succeeds.
                        drop(lanes);
                        drop(probes);
                        let _ = reply_to.send(out);
                    }
                });
                Worker {
                    queue,
                    handle: Some(handle),
                }
            })
            .collect();
        Self { workers }
    }

    /// Number of workers.
    pub(crate) fn len(&self) -> usize {
        self.workers.len()
    }

    /// Runs one crossing: distributes `per_worker` assignment sets over
    /// the workers and blocks until every dispatched job has acked,
    /// invoking `merge` with each worker's output records. Entries of
    /// `per_worker` beyond the worker count are rejected by debug
    /// assertion (callers chunk to `len()`).
    pub(crate) fn dispatch(
        &self,
        lanes: &Arc<Vec<Mutex<SimNetwork>>>,
        probes: Arc<PacketBatch>,
        per_worker: Vec<Vec<(usize, Vec<usize>)>>,
        mut merge: impl FnMut(JobOutput),
    ) {
        debug_assert!(per_worker.len() <= self.workers.len());
        // A fresh result channel per crossing: once every job's sender
        // is consumed, `recv` erroring (instead of parking forever)
        // is what surfaces a worker that died mid-job.
        let (reply_to, results) = channel::<JobOutput>();
        let mut outstanding = 0usize;
        for (worker, assignments) in self.workers.iter().zip(per_worker) {
            if assignments.is_empty() {
                continue;
            }
            let job = Job {
                lanes: Arc::clone(lanes),
                probes: Arc::clone(&probes),
                assignments,
                reply_to: reply_to.clone(),
            };
            worker
                .queue
                .send(job)
                .expect("pool worker exited while the pool is live");
            outstanding += 1;
        }
        drop(reply_to);
        drop(probes);
        for _ in 0..outstanding {
            merge(
                results
                    .recv()
                    .expect("lane worker panicked during a crossing"),
            );
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the queues unparks every worker out of `recv`.
        for worker in &mut self.workers {
            let (closed, _) = channel::<Job>();
            worker.queue = closed;
        }
        for worker in &mut self.workers {
            if let Some(handle) = worker.handle.take() {
                let _ = handle.join();
            }
        }
    }
}
