//! Ground-truth router models.
//!
//! The multilevel tracer (Sec. 4) infers router-level structure from three
//! observable behaviours, all modelled here:
//!
//! * **IP-ID counters** — the Monotonic Bounds Test assumes a router
//!   stamps replies from one shared, monotonically increasing counter.
//!   Real routers deviate in every way the paper reports: per-interface
//!   counters (for ICMP errors) combined with a router-wide counter (for
//!   echo replies) — the 14.4 % "Reject Indirect / Accept Direct" cell of
//!   Table 2; constant (mostly zero) IP IDs — 98.6 % of MMLPT's
//!   inconclusive cases; random/non-monotonic series; and direct replies
//!   that merely copy the probe's IP ID — 22.8 % of MIDAR's inconclusive
//!   cases.
//! * **Initial TTLs** — Network Fingerprinting infers the initial TTL of
//!   reply packets; different initial TTLs for the same probe class mean
//!   different routers.
//! * **MPLS labels** — interfaces in a stable MPLS tunnel report a label;
//!   equal labels at a hop suggest a common router, differing labels
//!   different routers (Sec. 4.1).

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// How a router generates IP IDs for one class of replies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CounterBehavior {
    /// One router-wide monotonic counter for this reply class.
    SharedCounter,
    /// An independent monotonic counter per interface.
    PerInterfaceCounter,
    /// A constant value (routers that always stamp 0).
    Constant(u16),
    /// A uniformly random value per reply (non-monotonic series).
    Random,
    /// The reply copies the probe's IP ID (observed for echo replies).
    CopyProbe,
    /// No reply at all for this class (unresponsive to direct probing).
    Unresponsive,
}

/// IP-ID behaviour of one router: indirect replies (ICMP errors elicited
/// by traceroute-style probing) and direct replies (echo replies) may use
/// different mechanisms — the crux of the Table 2 comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IpIdProfile {
    /// Behaviour for Time Exceeded / Destination Unreachable.
    pub indirect: CounterBehavior,
    /// Behaviour for Echo Reply.
    pub direct: CounterBehavior,
    /// If both classes use `SharedCounter`, whether they share one counter
    /// (true for most routers) or keep separate per-class counters.
    pub unified_counter: bool,
    /// Counter advance per clock tick (background traffic rate).
    pub rate: u16,
    /// Extra uniformly random advance in `0..=jitter` per sample.
    pub jitter: u16,
}

impl IpIdProfile {
    /// The well-behaved router: one shared counter for everything.
    pub fn shared(rate: u16, jitter: u16) -> Self {
        Self {
            indirect: CounterBehavior::SharedCounter,
            direct: CounterBehavior::SharedCounter,
            unified_counter: true,
            rate,
            jitter,
        }
    }

    /// The Table 2 troublemaker: per-interface counters for ICMP errors,
    /// router-wide counter for echo replies.
    pub fn per_interface_indirect(rate: u16, jitter: u16) -> Self {
        Self {
            indirect: CounterBehavior::PerInterfaceCounter,
            direct: CounterBehavior::SharedCounter,
            unified_counter: false,
            rate,
            jitter,
        }
    }

    /// Constant-zero IP IDs everywhere (MBT can conclude nothing).
    pub fn constant_zero() -> Self {
        Self {
            indirect: CounterBehavior::Constant(0),
            direct: CounterBehavior::Constant(0),
            unified_counter: true,
            rate: 0,
            jitter: 0,
        }
    }
}

impl Default for IpIdProfile {
    fn default() -> Self {
        Self::shared(2, 3)
    }
}

/// MPLS tunnel participation of a router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MplsProfile {
    /// The label this router's interfaces report (20-bit).
    pub label: u32,
    /// Whether the label is constant over time; unstable labels are
    /// useless for alias resolution (Sec. 4.1) and are re-rolled per reply.
    pub stable: bool,
}

/// Full behavioural profile of one router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouterProfile {
    /// IP-ID generation.
    pub ipid: IpIdProfile,
    /// Initial TTL of ICMP error replies (fingerprint component 1).
    pub initial_ttl_indirect: u8,
    /// Initial TTL of echo replies (fingerprint component 2).
    pub initial_ttl_direct: u8,
    /// Whether the router answers direct (echo) probes at all.
    pub responds_to_direct: bool,
    /// MPLS tunnel membership.
    pub mpls: Option<MplsProfile>,
}

impl RouterProfile {
    /// A well-behaved router with the classic (255, 255) fingerprint.
    pub fn well_behaved() -> Self {
        Self {
            ipid: IpIdProfile::default(),
            initial_ttl_indirect: 255,
            initial_ttl_direct: 255,
            responds_to_direct: true,
            mpls: None,
        }
    }
}

impl Default for RouterProfile {
    fn default() -> Self {
        Self::well_behaved()
    }
}

/// Key identifying one hardware counter inside the state store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CounterKey {
    /// Router-wide counter shared by all classes.
    Unified(u32),
    /// Router-wide counter for one class (0 = indirect, 1 = direct).
    PerClass(u32, u8),
    /// Per-interface counter for one class.
    PerInterface(u32, Ipv4Addr, u8),
}

/// One monotonic counter's state.
#[derive(Debug, Clone, Copy)]
struct CounterState {
    value: u16,
    last_tick: u64,
}

/// Runtime IP-ID state for all routers of a simulation.
#[derive(Debug, Default)]
pub struct IpIdEngine {
    counters: HashMap<CounterKey, CounterState>,
}

/// Which reply class a sample is for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyClass {
    /// Time Exceeded / Destination Unreachable.
    Indirect,
    /// Echo Reply.
    Direct,
}

impl IpIdEngine {
    /// Creates an empty engine; counters materialise lazily with seeded
    /// initial values so distinct counters start apart.
    pub fn new() -> Self {
        Self::default()
    }

    /// Samples the IP ID a router stamps on a reply.
    ///
    /// Returns `None` if the behaviour is `Unresponsive` (no reply should
    /// be sent at all).
    #[allow(clippy::too_many_arguments)]
    pub fn sample<R: Rng>(
        &mut self,
        rng: &mut R,
        router: u32,
        interface: Ipv4Addr,
        profile: &IpIdProfile,
        class: ReplyClass,
        probe_ip_id: u16,
        now: u64,
    ) -> Option<u16> {
        let behavior = match class {
            ReplyClass::Indirect => profile.indirect,
            ReplyClass::Direct => profile.direct,
        };
        let class_tag = match class {
            ReplyClass::Indirect => 0u8,
            ReplyClass::Direct => 1u8,
        };
        match behavior {
            CounterBehavior::Constant(v) => Some(v),
            CounterBehavior::Random => Some(rng.gen()),
            CounterBehavior::CopyProbe => Some(probe_ip_id),
            CounterBehavior::Unresponsive => None,
            CounterBehavior::SharedCounter => {
                let key = if profile.unified_counter {
                    CounterKey::Unified(router)
                } else {
                    CounterKey::PerClass(router, class_tag)
                };
                Some(self.advance(rng, key, profile, now))
            }
            CounterBehavior::PerInterfaceCounter => {
                let key = CounterKey::PerInterface(router, interface, class_tag);
                Some(self.advance(rng, key, profile, now))
            }
        }
    }

    /// Advances a counter to `now` and returns its value. The counter
    /// moves `rate` per tick plus up to `jitter` extra per sample — always
    /// strictly forward (mod 2^16), which is what the MBT exploits.
    fn advance<R: Rng>(
        &mut self,
        rng: &mut R,
        key: CounterKey,
        profile: &IpIdProfile,
        now: u64,
    ) -> u16 {
        let state = self.counters.entry(key).or_insert_with(|| CounterState {
            value: rng.gen(),
            last_tick: now,
        });
        let elapsed = now.saturating_sub(state.last_tick);
        let base_step = u64::from(profile.rate) * elapsed;
        let jitter_step = if profile.jitter > 0 {
            u64::from(rng.gen_range(0..=profile.jitter))
        } else {
            0
        };
        // Always advance at least 1 so two samples never collide exactly;
        // real counters increment per emitted packet.
        let step = (base_step + jitter_step).max(1);
        state.value = state.value.wrapping_add((step & 0xFFFF) as u16);
        state.last_tick = now;
        state.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const IF_A: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 0);
    const IF_B: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 1);

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    /// Wraparound-aware forward distance.
    fn fwd(a: u16, b: u16) -> u16 {
        b.wrapping_sub(a)
    }

    #[test]
    fn shared_counter_interleaved_monotonic() {
        let mut eng = IpIdEngine::new();
        let mut r = rng();
        let p = IpIdProfile::shared(2, 3);
        let mut last: Option<u16> = None;
        for t in 0..200u64 {
            let iface = if t % 2 == 0 { IF_A } else { IF_B };
            let id = eng
                .sample(&mut r, 1, iface, &p, ReplyClass::Indirect, 0, t)
                .unwrap();
            if let Some(prev) = last {
                // Forward distance must be small (counter velocity bound).
                assert!(fwd(prev, id) <= 16, "jump too large: {prev} -> {id}");
                assert!(fwd(prev, id) >= 1, "must strictly advance");
            }
            last = Some(id);
        }
    }

    #[test]
    fn per_interface_counters_independent() {
        let mut eng = IpIdEngine::new();
        let mut r = rng();
        let p = IpIdProfile::per_interface_indirect(2, 3);
        let a0 = eng
            .sample(&mut r, 1, IF_A, &p, ReplyClass::Indirect, 0, 0)
            .unwrap();
        let b0 = eng
            .sample(&mut r, 1, IF_B, &p, ReplyClass::Indirect, 0, 1)
            .unwrap();
        // Counters are seeded independently: the two interleaved series
        // almost surely do not interleave monotonically with small steps.
        // (Deterministic seed: just check they start far apart.)
        assert!(fwd(a0, b0) > 64 || fwd(b0, a0) > 64);
        // But each interface's own series is monotonic.
        let a1 = eng
            .sample(&mut r, 1, IF_A, &p, ReplyClass::Indirect, 0, 2)
            .unwrap();
        assert!(fwd(a0, a1) >= 1 && fwd(a0, a1) <= 16);
    }

    #[test]
    fn per_interface_indirect_direct_shared() {
        let mut eng = IpIdEngine::new();
        let mut r = rng();
        let p = IpIdProfile::per_interface_indirect(2, 2);
        // Direct samples from different interfaces share a counter.
        let d0 = eng
            .sample(&mut r, 1, IF_A, &p, ReplyClass::Direct, 0, 0)
            .unwrap();
        let d1 = eng
            .sample(&mut r, 1, IF_B, &p, ReplyClass::Direct, 0, 1)
            .unwrap();
        assert!(fwd(d0, d1) >= 1 && fwd(d0, d1) <= 16);
    }

    #[test]
    fn constant_zero_always_zero() {
        let mut eng = IpIdEngine::new();
        let mut r = rng();
        let p = IpIdProfile::constant_zero();
        for t in 0..10 {
            assert_eq!(
                eng.sample(&mut r, 1, IF_A, &p, ReplyClass::Indirect, 99, t),
                Some(0)
            );
        }
    }

    #[test]
    fn copy_probe_echoes() {
        let mut eng = IpIdEngine::new();
        let mut r = rng();
        let p = IpIdProfile {
            direct: CounterBehavior::CopyProbe,
            ..IpIdProfile::default()
        };
        assert_eq!(
            eng.sample(&mut r, 1, IF_A, &p, ReplyClass::Direct, 0xABCD, 5),
            Some(0xABCD)
        );
    }

    #[test]
    fn unresponsive_returns_none() {
        let mut eng = IpIdEngine::new();
        let mut r = rng();
        let p = IpIdProfile {
            direct: CounterBehavior::Unresponsive,
            ..IpIdProfile::default()
        };
        assert_eq!(
            eng.sample(&mut r, 1, IF_A, &p, ReplyClass::Direct, 0, 5),
            None
        );
    }

    #[test]
    fn different_routers_independent_counters() {
        let mut eng = IpIdEngine::new();
        let mut r = rng();
        let p = IpIdProfile::shared(2, 2);
        let a = eng
            .sample(&mut r, 1, IF_A, &p, ReplyClass::Indirect, 0, 0)
            .unwrap();
        let b = eng
            .sample(&mut r, 2, IF_A, &p, ReplyClass::Indirect, 0, 1)
            .unwrap();
        assert!(fwd(a, b) > 64 || fwd(b, a) > 64);
    }

    #[test]
    fn wraparound_still_advances() {
        // Force a counter near the top of the range and step it across.
        let mut eng = IpIdEngine::new();
        let mut r = rng();
        let p = IpIdProfile::shared(1, 0);
        // Warm the counter, then find its value and advance until wrap.
        let mut prev = eng
            .sample(&mut r, 3, IF_A, &p, ReplyClass::Indirect, 0, 0)
            .unwrap();
        let mut wrapped = false;
        for t in 1..200_000u64 {
            let id = eng
                .sample(&mut r, 3, IF_A, &p, ReplyClass::Indirect, 0, t)
                .unwrap();
            if id < prev {
                wrapped = true;
                // Forward distance remains small through the wrap.
                assert!(fwd(prev, id) <= 16);
                break;
            }
            prev = id;
        }
        assert!(wrapped, "counter must eventually wrap");
    }

    #[test]
    fn random_behavior_varies() {
        let mut eng = IpIdEngine::new();
        let mut r = rng();
        let p = IpIdProfile {
            indirect: CounterBehavior::Random,
            ..IpIdProfile::default()
        };
        let values: std::collections::BTreeSet<u16> = (0..32u64)
            .map(|t| {
                eng.sample(&mut r, 1, IF_A, &p, ReplyClass::Indirect, 0, t)
                    .unwrap()
            })
            .collect();
        assert!(values.len() > 16, "random IDs must vary");
    }
}
