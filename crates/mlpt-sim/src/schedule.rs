//! Scheduled topology mutations: the network's *routes* change at named
//! virtual-clock ticks.
//!
//! The fault layer ([`crate::faults`]) can vary loss, latency and
//! rate limiting over time, but it can never violate MDA assumption (1)
//! — "no routing changes during measurement". Real routes flap, load
//! balancers are reconfigured, and MPLS tunnels appear or vanish
//! mid-measurement, producing the loop/cycle/diamond artifacts
//! taxonomized by Viger et al. [`TopologySchedule`] is the missing
//! impairment: a stepped timeline of [`TopoMutation`]s applied to the
//! simulated [`MultipathTopology`] the moment the owning lane's virtual
//! clock crosses each step's tick.
//!
//! Mutations are *positional* (hop index plus vertex index within the
//! hop), never address-literal, so one schedule applies unchanged to
//! every translated per-lane copy of a canonical topology. Freshly
//! minted interfaces come from
//! [`MultipathTopology::next_free_address`], which stays inside the
//! lane's own address block.
//!
//! Determinism: a lane's clock advances only on its own packets, so the
//! tick at which a mutation lands — and therefore everything a prober
//! observes — is a pure function of the lane's own probe sequence. A
//! sweep scheduler may interleave lanes however it likes; the mutation
//! schedule is invisible to that choice, exactly like the fault
//! schedule.

use mlpt_topo::{MultipathTopology, TopologyError};
use serde::{Deserialize, Serialize};

/// One route change, expressed positionally so it applies to any
/// (translated) topology with compatible shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TopoMutation {
    /// Route flap: exchange the successor sets of the vertices at
    /// positions `a` and `b` of hop `hop`
    /// ([`MultipathTopology::with_swapped_successors`]).
    SwapSuccessors {
        /// Hop whose vertices swap next-hop sets.
        hop: usize,
        /// First vertex position.
        a: usize,
        /// Second vertex position.
        b: usize,
    },
    /// Load-balancer regrow: a freshly minted branch appears at `hop`,
    /// parallel to its first vertex
    /// ([`MultipathTopology::with_added_branch`]).
    AddBranch {
        /// Hop that grows a branch.
        hop: usize,
    },
    /// Load-balancer shrink: the vertex at position `index` of `hop`
    /// disappears ([`MultipathTopology::with_removed_branch`]).
    RemoveBranch {
        /// Hop that loses a branch.
        hop: usize,
        /// Vertex position removed.
        index: usize,
    },
    /// MPLS tunnel reveal: a hidden router becomes visible as a new
    /// hop before index `at` ([`MultipathTopology::with_inserted_hop`]).
    InsertHop {
        /// Insertion point; everything from here shifts one TTL deeper.
        at: usize,
    },
    /// Tunnel hide: the hop at index `at` vanishes and its neighbours
    /// splice together ([`MultipathTopology::with_removed_hop`]).
    RemoveHop {
        /// Removed hop index; later hops shift one TTL up.
        at: usize,
    },
}

impl TopoMutation {
    /// Applies the mutation, returning the revalidated topology or the
    /// reason the current shape cannot honour it.
    pub fn apply(&self, topo: &MultipathTopology) -> Result<MultipathTopology, TopologyError> {
        match *self {
            TopoMutation::SwapSuccessors { hop, a, b } => topo.with_swapped_successors(hop, a, b),
            TopoMutation::AddBranch { hop } => topo.with_added_branch(hop),
            TopoMutation::RemoveBranch { hop, index } => topo.with_removed_branch(hop, index),
            TopoMutation::InsertHop { at } => topo.with_inserted_hop(at),
            TopoMutation::RemoveHop { at } => topo.with_removed_hop(at),
        }
    }
}

/// A time-scheduled sequence of topology mutations, mirroring
/// [`crate::faults::FaultSchedule`]'s shape: `(tick, mutation)` steps in
/// strictly increasing tick order, each applied once when the owning
/// simulator's virtual clock first reaches its tick.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopologySchedule {
    steps: Vec<(u64, TopoMutation)>,
}

impl TopologySchedule {
    /// No mutations, ever: the static-topology world every pre-existing
    /// scenario lives in.
    pub fn none() -> Self {
        Self::default()
    }

    /// Appends a step: at the first packet at or after `tick`, `mutation`
    /// fires. Ticks must be appended in strictly increasing order and be
    /// positive (the topology at tick 0 is the constructed one).
    pub fn step(mut self, tick: u64, mutation: TopoMutation) -> Self {
        assert!(tick > 0, "tick 0 is the constructed topology");
        if let Some(&(last, _)) = self.steps.last() {
            assert!(
                tick > last,
                "schedule steps must be appended in increasing tick order \
                 ({tick} after {last})"
            );
        }
        self.steps.push((tick, mutation));
        self
    }

    /// The steps, in tick order.
    pub fn steps(&self) -> &[(u64, TopoMutation)] {
        &self.steps
    }

    /// True if the schedule never mutates anything.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Names of the built-in route-change presets, in
    /// [`preset`](Self::preset) order.
    pub fn preset_names() -> &'static [&'static str] {
        &["route-flap", "lb-regrow", "lb-shrink", "tunnel-reveal"]
    }

    /// A named route-change preset, or `None` for an unknown name. All
    /// presets target hop 1 (the first diamond of the canonical
    /// topologies) and fire at tick 40 — mid-trace for any session that
    /// probes more than a few dozen packets.
    ///
    /// * `route-flap` — the hop-1 vertices exchange next-hop sets at
    ///   tick 40 and flap back at tick 120: committed (flow, TTL)
    ///   evidence downstream of hop 1 goes stale twice.
    /// * `lb-regrow` — a new parallel branch appears at hop 1: the
    ///   diamond gains a vertex the stopping rules never saw.
    /// * `lb-shrink` — the second hop-1 branch vanishes and its flows
    ///   re-home: a committed diamond branch no longer answers.
    /// * `tunnel-reveal` — a hidden MPLS router surfaces as a new hop 2:
    ///   every interface at and beyond the old hop 2 shifts one TTL
    ///   deeper.
    pub fn preset(name: &str) -> Option<Self> {
        let schedule = match name {
            "route-flap" => TopologySchedule::none()
                .step(40, TopoMutation::SwapSuccessors { hop: 1, a: 1, b: 2 })
                .step(120, TopoMutation::SwapSuccessors { hop: 1, a: 1, b: 2 }),
            "lb-regrow" => TopologySchedule::none().step(40, TopoMutation::AddBranch { hop: 1 }),
            "lb-shrink" => {
                TopologySchedule::none().step(40, TopoMutation::RemoveBranch { hop: 1, index: 1 })
            }
            "tunnel-reveal" => TopologySchedule::none().step(40, TopoMutation::InsertHop { at: 2 }),
            _ => return None,
        };
        Some(schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpt_topo::canonical;

    #[test]
    fn steps_apply_in_order() {
        let topo = canonical::fig1_unmeshed();
        let schedule = TopologySchedule::none()
            .step(10, TopoMutation::AddBranch { hop: 1 })
            .step(20, TopoMutation::InsertHop { at: 2 });
        assert_eq!(schedule.steps().len(), 2);
        let mut t = topo;
        for &(_, m) in schedule.steps() {
            t = m.apply(&t).expect("preset-shaped mutation applies");
        }
        assert_eq!(t.num_hops(), 5);
    }

    #[test]
    #[should_panic]
    fn out_of_order_steps_rejected() {
        let _ = TopologySchedule::none()
            .step(20, TopoMutation::AddBranch { hop: 1 })
            .step(10, TopoMutation::AddBranch { hop: 1 });
    }

    #[test]
    fn every_preset_applies_to_canonical_topologies() {
        for name in TopologySchedule::preset_names() {
            let schedule = TopologySchedule::preset(name)
                .unwrap_or_else(|| panic!("preset {name} must exist"));
            assert!(!schedule.is_empty(), "{name} must mutate something");
            for topo in [canonical::fig1_unmeshed(), canonical::fig1_meshed()] {
                let dest = topo.destination();
                let mut t = topo;
                for &(_, m) in schedule.steps() {
                    t = m
                        .apply(&t)
                        .unwrap_or_else(|e| panic!("{name} must apply: {e}"));
                }
                assert_eq!(
                    t.destination(),
                    dest,
                    "{name} must preserve the traced destination"
                );
            }
            let json = serde_json::to_string(&schedule).unwrap();
            let back: TopologySchedule = serde_json::from_str(&json).unwrap();
            assert_eq!(back, schedule, "{name} must round-trip through serde");
        }
        assert!(TopologySchedule::preset("no-such-preset").is_none());
    }

    #[test]
    fn route_flap_round_trips_topology() {
        let topo = canonical::fig1_unmeshed();
        let schedule = TopologySchedule::preset("route-flap").unwrap();
        let mut t = topo.clone();
        for &(_, m) in schedule.steps() {
            t = m.apply(&t).unwrap();
        }
        // Two swaps of the same pair restore the original wiring.
        assert_eq!(t, topo);
    }
}
