//! Statistical validation of a tracing tool against the analytic bound.
//!
//! Fakeroute "runs the actual software tool in question repeatedly on the
//! topology to verify that the tool does indeed fail at the predicted
//! rate, not more, not less, providing a confidence interval for this
//! result" (Sec. 3). The paper's experiment: 1000 runs per sample, 50
//! samples, giving a mean failure rate of 0.03206 against the analytic
//! 0.03125 with a 95 % confidence interval of size 0.00156.
//!
//! [`validate_tool`] reproduces that protocol for any tool expressible as
//! a closure over the simulator.

use crate::analytic::mda_failure_probability;
use crate::network::SimNetwork;
use mlpt_stats::{mean_confidence_interval, ConfidenceInterval};
use mlpt_topo::MultipathTopology;
use serde::{Deserialize, Serialize};

/// Outcome of a validation campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ValidationReport {
    /// The analytic failure probability of the topology under the
    /// stopping points supplied.
    pub analytic_failure: f64,
    /// Per-sample empirical failure rates.
    pub samples: Vec<f64>,
    /// Mean and confidence interval over the samples.
    pub interval: ConfidenceInterval,
    /// Runs aggregated into each sample.
    pub runs_per_sample: usize,
}

impl ValidationReport {
    /// True if the analytic value lies within the confidence interval —
    /// the tool "fails at the predicted rate, not more, not less".
    pub fn analytic_within_interval(&self) -> bool {
        self.interval.contains(self.analytic_failure)
    }
}

/// Runs `tool` `samples × runs_per_sample` times over fresh simulators and
/// reports the empirical failure-rate distribution.
///
/// The closure receives a fresh, deterministically seeded [`SimNetwork`]
/// and a per-run seed for its own randomness; it must return `true` if the
/// run *discovered the complete topology* (vertices and edges).
pub fn validate_tool<F>(
    topology: &MultipathTopology,
    nks: &[u64],
    samples: usize,
    runs_per_sample: usize,
    base_seed: u64,
    confidence: f64,
    mut tool: F,
) -> ValidationReport
where
    F: FnMut(&mut SimNetwork, u64) -> bool,
{
    assert!(samples >= 2, "need at least two samples for an interval");
    assert!(runs_per_sample >= 1);

    let analytic_failure = mda_failure_probability(topology, nks);
    let mut sample_rates = Vec::with_capacity(samples);
    for s in 0..samples {
        let mut failures = 0usize;
        for r in 0..runs_per_sample {
            let run_seed = base_seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((s * runs_per_sample + r) as u64);
            let mut net = SimNetwork::new(topology.clone(), run_seed);
            if !tool(&mut net, run_seed ^ 0xABCD_EF01_2345_6789) {
                failures += 1;
            }
        }
        sample_rates.push(failures as f64 / runs_per_sample as f64);
    }
    let interval = mean_confidence_interval(&sample_rates, confidence);
    ValidationReport {
        analytic_failure,
        samples: sample_rates,
        interval,
        runs_per_sample,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::PacketTransport;
    use mlpt_topo::canonical;
    use mlpt_wire::probe::{build_udp_probe, parse_reply, ProbePacket};
    use mlpt_wire::FlowId;
    use rand::Rng;
    use rand::SeedableRng;
    use std::collections::BTreeSet;
    use std::net::Ipv4Addr;

    const NK95: &[u64] = &[6, 11, 16, 21, 27, 33];

    /// A miniature hand-rolled "tool" implementing just enough of the MDA
    /// stopping rule for the simplest diamond: probe TTL 2 with fresh flow
    /// IDs until the n_k rule fires; succeed if both interfaces are seen.
    ///
    /// (The real MDA lives in mlpt-core; the simulator cannot depend on it,
    /// so validation here uses this reference probing loop. Integration
    /// tests validate the real implementations end to end.)
    fn mini_mda_simplest(net: &mut SimNetwork, seed: u64) -> bool {
        let src = Ipv4Addr::new(192, 0, 2, 1);
        let dst = net.topology().destination();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut seen: BTreeSet<Ipv4Addr> = BTreeSet::new();
        let mut sent = 0u64;
        let mut used: BTreeSet<u16> = BTreeSet::new();
        loop {
            let flow = loop {
                let f: u16 = rng.gen();
                if used.insert(f) {
                    break f;
                }
            };
            let probe = build_udp_probe(&ProbePacket {
                source: src,
                destination: dst,
                flow: FlowId(flow),
                ttl: 2,
                sequence: sent as u16,
            });
            sent += 1;
            if let Some(reply) = net.send_packet(&probe) {
                if let Ok(parsed) = parse_reply(&reply) {
                    seen.insert(parsed.responder);
                }
            }
            let k = seen.len().max(1);
            if k >= NK95.len() || sent >= NK95[k - 1] {
                break;
            }
        }
        seen.len() == 2
    }

    #[test]
    fn simplest_diamond_validation_matches_analytic() {
        let topo = canonical::simplest_diamond();
        // Scaled-down version of the paper's 50 × 1000 protocol to keep
        // test time short; the bench harness runs the full scale.
        let report = validate_tool(&topo, NK95, 20, 400, 7, 0.95, mini_mda_simplest);
        assert!((report.analytic_failure - 0.03125).abs() < 1e-12);
        // The empirical mean should be close; allow generous slack for the
        // reduced sample count.
        assert!(
            (report.interval.mean - 0.03125).abs() < 0.012,
            "mean {} too far from analytic",
            report.interval.mean
        );
        assert_eq!(report.samples.len(), 20);
        assert_eq!(report.runs_per_sample, 400);
        assert!(report.interval.half_width > 0.0);
    }

    #[test]
    fn broken_tool_detected() {
        // A "tool" that sends only 3 probes fails far more often than the
        // analytic rate; the report must expose that.
        let topo = canonical::simplest_diamond();
        let report = validate_tool(&topo, NK95, 10, 200, 3, 0.95, |net, seed| {
            let src = Ipv4Addr::new(192, 0, 2, 1);
            let dst = net.topology().destination();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut seen = BTreeSet::new();
            for s in 0..3u16 {
                let probe = build_udp_probe(&ProbePacket {
                    source: src,
                    destination: dst,
                    flow: FlowId(rng.gen()),
                    ttl: 2,
                    sequence: s,
                });
                if let Some(reply) = net.send_packet(&probe) {
                    seen.insert(parse_reply(&reply).unwrap().responder);
                }
            }
            seen.len() == 2
        });
        assert!(
            report.interval.mean > report.analytic_failure + report.interval.half_width,
            "under-probing tool must fail above the bound: mean {} analytic {}",
            report.interval.mean,
            report.analytic_failure
        );
        assert!(!report.analytic_within_interval());
    }

    #[test]
    #[should_panic(expected = "at least two samples")]
    fn single_sample_rejected() {
        let topo = canonical::simplest_diamond();
        let _ = validate_tool(&topo, NK95, 1, 10, 1, 0.95, |_, _| true);
    }
}
