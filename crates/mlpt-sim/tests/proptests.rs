//! Property tests on the simulator: routing correctness for arbitrary
//! probes against arbitrary topologies.

use mlpt_sim::{BalanceMode, SimNetwork};
use mlpt_topo::graph::addr;
use mlpt_topo::{MultipathTopology, TopologyBuilder};
use mlpt_wire::probe::{build_udp_probe, parse_reply, ProbePacket, ReplyKind};
use mlpt_wire::transport::PacketTransport;
use mlpt_wire::FlowId;
use proptest::prelude::*;
use std::net::Ipv4Addr;

const SRC: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

fn arb_topology() -> impl Strategy<Value = MultipathTopology> {
    proptest::collection::vec(1usize..=8, 1..7).prop_map(|mut widths| {
        widths.insert(0, 1);
        widths.push(1);
        let mut b = TopologyBuilder::default();
        for (h, &w) in widths.iter().enumerate() {
            b.add_hop((0..w).map(|i| addr(h, i)));
        }
        for h in 0..widths.len() - 1 {
            b.connect_unmeshed(h);
        }
        b.build().expect("valid")
    })
}

fn probe(flow: u16, ttl: u8, dst: Ipv4Addr) -> Vec<u8> {
    build_udp_probe(&ProbePacket {
        source: SRC,
        destination: dst,
        flow: FlowId(flow),
        ttl,
        sequence: flow,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every reply comes from a vertex at the probed hop; destination
    /// probes yield Port Unreachable; flows are stable.
    #[test]
    fn routing_respects_topology(
        topo in arb_topology(),
        seed in any::<u64>(),
        flows in proptest::collection::vec(any::<u16>(), 1..12),
    ) {
        let dst = topo.destination();
        let mut net = SimNetwork::new(topo.clone(), seed);
        for &flow in &flows {
            for ttl in 1..=topo.num_hops() as u8 {
                let reply = net.send_packet(&probe(flow, ttl, dst)).expect("lossless");
                let parsed = parse_reply(&reply).expect("valid reply bytes");
                let hop = usize::from(ttl - 1);
                prop_assert!(
                    topo.contains(hop, parsed.responder),
                    "ttl {ttl} answered by {} not at hop {hop}",
                    parsed.responder
                );
                if hop == topo.num_hops() - 1 {
                    prop_assert_eq!(parsed.kind, ReplyKind::PortUnreachable);
                } else {
                    prop_assert_eq!(parsed.kind, ReplyKind::TimeExceeded);
                }
                prop_assert_eq!(parsed.probe_flow, Some(FlowId(flow)));
            }
        }
    }

    /// A flow's responders at consecutive TTLs always form a true edge —
    /// per-flow path consistency, the property the MDA depends on.
    #[test]
    fn per_flow_paths_are_walks(topo in arb_topology(), seed in any::<u64>(), flow in any::<u16>()) {
        let dst = topo.destination();
        let mut net = SimNetwork::new(topo.clone(), seed);
        let mut prev: Option<Ipv4Addr> = None;
        for ttl in 1..=topo.num_hops() as u8 {
            let reply = net.send_packet(&probe(flow, ttl, dst)).expect("lossless");
            let responder = parse_reply(&reply).unwrap().responder;
            if let Some(p) = prev {
                prop_assert!(
                    topo.successors(usize::from(ttl - 2), p).contains(&responder),
                    "{p} -> {responder} not an edge"
                );
            }
            prev = Some(responder);
        }
    }

    /// Per-destination balancing: all flows take the same path.
    #[test]
    fn per_destination_is_flow_blind(topo in arb_topology(), seed in any::<u64>()) {
        let dst = topo.destination();
        let mut net = SimNetwork::builder(topo.clone())
            .mode(BalanceMode::PerDestination)
            .seed(seed)
            .build();
        for ttl in 1..=topo.num_hops() as u8 {
            let mut responders = std::collections::BTreeSet::new();
            for flow in 0..8u16 {
                let reply = net.send_packet(&probe(flow, ttl, dst)).expect("lossless");
                responders.insert(parse_reply(&reply).unwrap().responder);
            }
            prop_assert_eq!(responders.len(), 1, "ttl {}", ttl);
        }
    }

    /// Determinism: identical seeds and probe sequences yield identical
    /// byte-for-byte replies.
    #[test]
    fn determinism(topo in arb_topology(), seed in any::<u64>(), flows in proptest::collection::vec(any::<u16>(), 1..8)) {
        let dst = topo.destination();
        let mut a = SimNetwork::new(topo.clone(), seed);
        let mut b = SimNetwork::new(topo.clone(), seed);
        for &flow in &flows {
            for ttl in 1..=topo.num_hops() as u8 {
                prop_assert_eq!(
                    a.send_packet(&probe(flow, ttl, dst)),
                    b.send_packet(&probe(flow, ttl, dst))
                );
            }
        }
    }

    /// Garbage input never panics the simulator and never elicits a reply
    /// that fails to parse.
    #[test]
    fn garbage_tolerance(topo in arb_topology(), bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let mut net = SimNetwork::new(topo, 1);
        if let Some(reply) = net.send_packet(&bytes) {
            prop_assert!(parse_reply(&reply).is_ok());
        }
    }
}
