//! Empirical cumulative distribution functions.
//!
//! The paper plots CDFs over hop pairs (Fig. 2), topologies (Fig. 4),
//! diamonds (Figs. 8, 9) and routers (Fig. 12). `EmpiricalCdf` stores the
//! sorted sample and answers both directions of query: `fraction_at_or_below`
//! (the CDF proper) and `quantile` (its inverse).

use serde::{Deserialize, Serialize};

/// An empirical CDF over `f64` samples.
///
/// Construction sorts the samples once; queries are `O(log n)`.
/// NaN samples are rejected at construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmpiricalCdf {
    sorted: Vec<f64>,
}

impl EmpiricalCdf {
    /// Builds a CDF from samples.
    ///
    /// # Panics
    /// Panics if any sample is NaN; the paper's metrics are always finite.
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "EmpiricalCdf: NaN sample"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after check"));
        Self { sorted: samples }
    }

    /// Builds a CDF from any iterator of samples.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Self::new(iter.into_iter().collect())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Fraction of samples `<= x` — the CDF evaluated at `x`.
    ///
    /// Returns 0.0 for an empty CDF.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        // partition_point: count of samples <= x.
        let count = self.sorted.partition_point(|&s| s <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Fraction of samples strictly below `x`.
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&s| s < x);
        count as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) using the nearest-rank method,
    /// matching how CDF plot crossings are usually read off.
    ///
    /// Returns `None` for an empty CDF: summary paths can legitimately
    /// feed an empty series (e.g. a bench stage whose lane was fully
    /// rate-limited), and "no samples" must surface as absence, not a
    /// panic.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]` (a programming error, unlike an
    /// empty sample set).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        let first = *self.sorted.first()?;
        if q == 0.0 {
            return Some(first);
        }
        let rank = (q * self.sorted.len() as f64).ceil() as usize;
        Some(self.sorted[rank.saturating_sub(1).min(self.sorted.len() - 1)])
    }

    /// The median (0.5-quantile), `None` for an empty CDF.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Arithmetic mean of the samples.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Emits `(x, F(x))` points suitable for plotting: one point per
    /// distinct sample value, with `F` the fraction at-or-below.
    pub fn plot_points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        let mut points = Vec::new();
        let mut i = 0;
        while i < n {
            let x = self.sorted[i];
            let mut j = i;
            while j < n && self.sorted[j] == x {
                j += 1;
            }
            points.push((x, j as f64 / n as f64));
            i = j;
        }
        points
    }

    /// Evaluates the CDF on a fixed grid of `x` values; convenient for
    /// printing aligned figure series.
    pub fn evaluate_on(&self, xs: &[f64]) -> Vec<(f64, f64)> {
        xs.iter()
            .map(|&x| (x, self.fraction_at_or_below(x)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cdf_behaves() {
        let cdf = EmpiricalCdf::new(vec![]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_at_or_below(1.0), 0.0);
        assert_eq!(cdf.min(), None);
        assert_eq!(cdf.max(), None);
        // Quantile queries over no samples report absence, never panic:
        // summary paths hit this when a stage produces zero samples.
        assert_eq!(cdf.quantile(0.0), None);
        assert_eq!(cdf.quantile(0.9), None);
        assert_eq!(cdf.median(), None);
    }

    #[test]
    fn simple_fractions() {
        let cdf = EmpiricalCdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.fraction_at_or_below(0.5), 0.0);
        assert_eq!(cdf.fraction_at_or_below(1.0), 0.25);
        assert_eq!(cdf.fraction_at_or_below(2.5), 0.5);
        assert_eq!(cdf.fraction_at_or_below(4.0), 1.0);
        assert_eq!(cdf.fraction_at_or_below(9.0), 1.0);
    }

    #[test]
    fn strict_vs_inclusive() {
        let cdf = EmpiricalCdf::new(vec![1.0, 1.0, 2.0]);
        assert_eq!(cdf.fraction_below(1.0), 0.0);
        assert!((cdf.fraction_at_or_below(1.0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let cdf = EmpiricalCdf::new(vec![10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(cdf.quantile(0.0), Some(10.0));
        assert_eq!(cdf.quantile(0.2), Some(10.0));
        assert_eq!(cdf.quantile(0.5), Some(30.0));
        assert_eq!(cdf.quantile(1.0), Some(50.0));
        assert_eq!(cdf.median(), Some(30.0));
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let cdf = EmpiricalCdf::new(vec![3.0, 1.0, 2.0]);
        assert_eq!(cdf.samples(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn plot_points_deduplicate() {
        let cdf = EmpiricalCdf::new(vec![1.0, 1.0, 2.0, 3.0, 3.0, 3.0]);
        let pts = cdf.plot_points();
        assert_eq!(pts.len(), 3);
        assert!((pts[0].1 - 1.0 / 3.0).abs() < 1e-12);
        assert!((pts[1].1 - 0.5).abs() < 1e-12);
        assert_eq!(pts[2].1, 1.0);
    }

    #[test]
    fn mean_matches_hand_computation() {
        let cdf = EmpiricalCdf::new(vec![2.0, 4.0, 6.0]);
        assert!((cdf.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = EmpiricalCdf::new(vec![f64::NAN]);
    }

    #[test]
    fn evaluate_on_grid() {
        let cdf = EmpiricalCdf::new(vec![1.0, 2.0]);
        let grid = cdf.evaluate_on(&[0.0, 1.5, 3.0]);
        assert_eq!(grid[0].1, 0.0);
        assert_eq!(grid[1].1, 0.5);
        assert_eq!(grid[2].1, 1.0);
    }
}
