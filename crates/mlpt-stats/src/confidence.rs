//! Mean and confidence-interval estimation.
//!
//! Section 3 of the paper validates Fakeroute by running the MDA 1000 times
//! to obtain one sample failure rate, collecting 50 such samples, and
//! reporting "a 0.03206 mean of failure, with a 95% confidence interval of
//! size 0.00156". This module provides exactly that computation: a normal
//! (z-based) confidence interval over sample means, which is appropriate
//! since each sample is itself an average of many Bernoulli trials.

use serde::{Deserialize, Serialize};

/// A symmetric confidence interval around a sample mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the interval (mean ± half_width).
    pub half_width: f64,
    /// Confidence level used (e.g. 0.95).
    pub level: f64,
    /// Number of samples.
    pub n: usize,
}

impl ConfidenceInterval {
    /// Lower bound of the interval.
    pub fn low(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound of the interval.
    pub fn high(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Total width of the interval (the paper reports this "size").
    pub fn size(&self) -> f64 {
        2.0 * self.half_width
    }

    /// True if the interval contains `x`.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.low() && x <= self.high()
    }
}

/// Two-sided z critical value for the given confidence level.
///
/// Supports the levels used throughout the workspace; extend as needed.
fn z_value(level: f64) -> f64 {
    // Values from the standard normal quantile function.
    match level {
        l if (l - 0.90).abs() < 1e-9 => 1.6448536269514722,
        l if (l - 0.95).abs() < 1e-9 => 1.9599639845400545,
        l if (l - 0.99).abs() < 1e-9 => 2.5758293035489004,
        _ => panic!("unsupported confidence level {level}; use 0.90, 0.95 or 0.99"),
    }
}

/// Computes the sample mean and a z-based confidence interval at `level`.
///
/// # Panics
/// Panics on an empty sample set or an unsupported level.
pub fn mean_confidence_interval(samples: &[f64], level: f64) -> ConfidenceInterval {
    assert!(
        !samples.is_empty(),
        "confidence interval of empty sample set"
    );
    let n = samples.len();
    let mean = samples.iter().sum::<f64>() / n as f64;
    let var = if n > 1 {
        samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0)
    } else {
        0.0
    };
    let std_err = (var / n as f64).sqrt();
    ConfidenceInterval {
        mean,
        half_width: z_value(level) * std_err,
        level,
        n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_samples_zero_width() {
        let ci = mean_confidence_interval(&[0.5, 0.5, 0.5, 0.5], 0.95);
        assert_eq!(ci.mean, 0.5);
        assert_eq!(ci.half_width, 0.0);
        assert!(ci.contains(0.5));
        assert!(!ci.contains(0.6));
    }

    #[test]
    fn known_example() {
        // Samples 1..=5: mean 3, sample variance 2.5, stderr sqrt(0.5).
        let samples: Vec<f64> = (1..=5).map(|x| x as f64).collect();
        let ci = mean_confidence_interval(&samples, 0.95);
        assert!((ci.mean - 3.0).abs() < 1e-12);
        let expected_hw = 1.9599639845400545 * (2.5f64 / 5.0).sqrt();
        assert!((ci.half_width - expected_hw).abs() < 1e-12);
        assert!((ci.size() - 2.0 * expected_hw).abs() < 1e-12);
    }

    #[test]
    fn wider_level_wider_interval() {
        let samples: Vec<f64> = (0..20).map(|x| (x % 5) as f64).collect();
        let ci90 = mean_confidence_interval(&samples, 0.90);
        let ci99 = mean_confidence_interval(&samples, 0.99);
        assert!(ci99.half_width > ci90.half_width);
        assert_eq!(ci90.mean, ci99.mean);
    }

    #[test]
    fn single_sample_degenerate() {
        let ci = mean_confidence_interval(&[0.25], 0.95);
        assert_eq!(ci.mean, 0.25);
        assert_eq!(ci.half_width, 0.0);
        assert_eq!(ci.n, 1);
    }

    #[test]
    #[should_panic(expected = "unsupported confidence level")]
    fn bad_level_panics() {
        let _ = mean_confidence_interval(&[1.0], 0.5);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        let _ = mean_confidence_interval(&[], 0.95);
    }
}
