//! Integer-valued histograms and "portion of X" distributions.
//!
//! The survey figures (7, 10, 12, 13) are histograms over integer metrics
//! (widths, lengths, asymmetries, router sizes) normalised to portions and
//! plotted on a log y-axis. `Histogram` counts; `PortionHistogram` is its
//! normalised view.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A counting histogram over `u64` values with exact (per-value) bins.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    counts: BTreeMap<u64, u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a histogram from an iterator of values.
    pub fn from_values<I: IntoIterator<Item = u64>>(values: I) -> Self {
        let mut h = Self::new();
        for v in values {
            h.record(v);
        }
        h
    }

    /// Records one observation of `value`.
    pub fn record(&mut self, value: u64) {
        *self.counts.entry(value).or_insert(0) += 1;
        self.total += 1;
    }

    /// Records `n` observations of `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        *self.counts.entry(value).or_insert(0) += n;
        self.total += n;
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count for an exact value.
    pub fn count(&self, value: u64) -> u64 {
        self.counts.get(&value).copied().unwrap_or(0)
    }

    /// Iterator over `(value, count)` in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&v, &c)| (v, c))
    }

    /// Largest recorded value.
    pub fn max_value(&self) -> Option<u64> {
        self.counts.keys().next_back().copied()
    }

    /// Smallest recorded value.
    pub fn min_value(&self) -> Option<u64> {
        self.counts.keys().next().copied()
    }

    /// Portion of observations equal to `value` (0.0 for empty histogram).
    pub fn portion(&self, value: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.count(value) as f64 / self.total as f64
    }

    /// Portion of observations `<= value`.
    pub fn portion_at_or_below(&self, value: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let below: u64 = self.counts.range(..=value).map(|(_, &c)| c).sum();
        below as f64 / self.total as f64
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (v, c) in other.iter() {
            self.record_n(v, c);
        }
    }

    /// The normalised (portion) view of this histogram.
    pub fn portions(&self) -> PortionHistogram {
        let total = self.total.max(1) as f64;
        PortionHistogram {
            portions: self
                .counts
                .iter()
                .map(|(&v, &c)| (v, c as f64 / total))
                .collect(),
        }
    }

    /// The value at which the histogram peaks (mode), breaking ties toward
    /// the smaller value. The paper calls out modes at widths 48 and 56.
    pub fn mode(&self) -> Option<u64> {
        self.counts
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(&v, _)| v)
    }

    /// Local maxima above `floor` portion: values whose count exceeds both
    /// neighbours' counts (used to detect the 48/56 peaks in Fig. 10/13).
    pub fn peaks(&self, floor: f64) -> Vec<u64> {
        let entries: Vec<(u64, u64)> = self.iter().collect();
        let total = self.total.max(1) as f64;
        let mut peaks = Vec::new();
        for i in 0..entries.len() {
            let (v, c) = entries[i];
            if (c as f64 / total) < floor {
                continue;
            }
            let left_ok = i == 0 || entries[i - 1].1 < c;
            let right_ok = i + 1 == entries.len() || entries[i + 1].1 < c;
            if left_ok && right_ok {
                peaks.push(v);
            }
        }
        peaks
    }
}

/// A normalised histogram: value → portion of observations.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PortionHistogram {
    portions: Vec<(u64, f64)>,
}

impl PortionHistogram {
    /// Iterator over `(value, portion)` in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.portions.iter().copied()
    }

    /// Portion for an exact value (0.0 if absent).
    pub fn portion(&self, value: u64) -> f64 {
        self.portions
            .iter()
            .find(|(v, _)| *v == value)
            .map(|(_, p)| *p)
            .unwrap_or(0.0)
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.portions.len()
    }

    /// True if no values were recorded.
    pub fn is_empty(&self) -> bool {
        self.portions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_count() {
        let mut h = Histogram::new();
        h.record(2);
        h.record(2);
        h.record(5);
        assert_eq!(h.total(), 3);
        assert_eq!(h.count(2), 2);
        assert_eq!(h.count(5), 1);
        assert_eq!(h.count(7), 0);
        assert_eq!(h.max_value(), Some(5));
        assert_eq!(h.min_value(), Some(2));
    }

    #[test]
    fn portions_normalise() {
        let h = Histogram::from_values([1, 1, 1, 3]);
        assert!((h.portion(1) - 0.75).abs() < 1e-12);
        assert!((h.portion(3) - 0.25).abs() < 1e-12);
        let p = h.portions();
        assert!((p.portion(1) - 0.75).abs() < 1e-12);
        assert_eq!(p.portion(2), 0.0);
    }

    #[test]
    fn cumulative_portion() {
        let h = Histogram::from_values([1, 2, 2, 10]);
        assert!((h.portion_at_or_below(2) - 0.75).abs() < 1e-12);
        assert!((h.portion_at_or_below(9) - 0.75).abs() < 1e-12);
        assert_eq!(h.portion_at_or_below(10), 1.0);
        assert_eq!(h.portion_at_or_below(0), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::from_values([1, 2]);
        let b = Histogram::from_values([2, 3]);
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.count(2), 2);
        assert_eq!(a.count(3), 1);
    }

    #[test]
    fn mode_and_peaks() {
        // Counts: 2→5, 10→2, 48→4, 52→1, 56→3, 60→1.
        let mut h = Histogram::new();
        h.record_n(2, 5);
        h.record_n(10, 2);
        h.record_n(48, 4);
        h.record_n(52, 1);
        h.record_n(56, 3);
        h.record_n(60, 1);
        assert_eq!(h.mode(), Some(2));
        let peaks = h.peaks(0.0);
        assert!(peaks.contains(&2));
        assert!(peaks.contains(&48));
        assert!(peaks.contains(&56));
        assert!(!peaks.contains(&10) || h.count(10) > h.count(48));
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.portion(3), 0.0);
        assert_eq!(h.mode(), None);
        assert!(h.portions().is_empty());
    }
}
