//! Two-dimensional joint histograms.
//!
//! Figures 11 (max length × max width) and 14 (max width before × after
//! alias resolution) are joint distributions rendered as log-scale heat
//! maps. `JointHistogram` counts `(x, y)` pairs and can emit the non-zero
//! cells as rows for printing or serialization.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A counting histogram over `(u64, u64)` pairs.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct JointHistogram {
    counts: BTreeMap<(u64, u64), u64>,
    total: u64,
}

impl JointHistogram {
    /// Creates an empty joint histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `(x, y)`.
    pub fn record(&mut self, x: u64, y: u64) {
        *self.counts.entry((x, y)).or_insert(0) += 1;
        self.total += 1;
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count at cell `(x, y)`.
    pub fn count(&self, x: u64, y: u64) -> u64 {
        self.counts.get(&(x, y)).copied().unwrap_or(0)
    }

    /// Portion of observations in cell `(x, y)`.
    pub fn portion(&self, x: u64, y: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.count(x, y) as f64 / self.total as f64
    }

    /// Iterator over non-zero cells `((x, y), count)` in row-major order.
    pub fn cells(&self) -> impl Iterator<Item = ((u64, u64), u64)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }

    /// Marginal histogram over `x`.
    pub fn marginal_x(&self) -> crate::Histogram {
        let mut h = crate::Histogram::new();
        for (&(x, _), &c) in &self.counts {
            h.record_n(x, c);
        }
        h
    }

    /// Marginal histogram over `y`.
    pub fn marginal_y(&self) -> crate::Histogram {
        let mut h = crate::Histogram::new();
        for (&(_, y), &c) in &self.counts {
            h.record_n(y, c);
        }
        h
    }

    /// Count of observations strictly below the diagonal (`y < x`): for
    /// Fig. 14 this is the mass where alias resolution reduced the width.
    pub fn below_diagonal(&self) -> u64 {
        self.counts
            .iter()
            .filter(|(&(x, y), _)| y < x)
            .map(|(_, &c)| c)
            .sum()
    }

    /// Count of observations on the diagonal (`y == x`).
    pub fn on_diagonal(&self) -> u64 {
        self.counts
            .iter()
            .filter(|(&(x, y), _)| y == x)
            .map(|(_, &c)| c)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut j = JointHistogram::new();
        j.record(2, 2);
        j.record(2, 2);
        j.record(5, 3);
        assert_eq!(j.total(), 3);
        assert_eq!(j.count(2, 2), 2);
        assert_eq!(j.count(5, 3), 1);
        assert_eq!(j.count(9, 9), 0);
        assert!((j.portion(2, 2) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn marginals() {
        let mut j = JointHistogram::new();
        j.record(1, 10);
        j.record(1, 20);
        j.record(2, 10);
        let mx = j.marginal_x();
        assert_eq!(mx.count(1), 2);
        assert_eq!(mx.count(2), 1);
        let my = j.marginal_y();
        assert_eq!(my.count(10), 2);
        assert_eq!(my.count(20), 1);
    }

    #[test]
    fn diagonal_accounting() {
        let mut j = JointHistogram::new();
        j.record(56, 49); // reduced
        j.record(56, 56); // unchanged
        j.record(48, 48); // unchanged
        j.record(10, 2); // reduced
        assert_eq!(j.below_diagonal(), 2);
        assert_eq!(j.on_diagonal(), 2);
    }

    #[test]
    fn cells_ordering() {
        let mut j = JointHistogram::new();
        j.record(2, 1);
        j.record(1, 2);
        let cells: Vec<_> = j.cells().collect();
        assert_eq!(cells[0].0, (1, 2));
        assert_eq!(cells[1].0, (2, 1));
    }

    #[test]
    fn empty_portion_is_zero() {
        let j = JointHistogram::new();
        assert_eq!(j.portion(1, 1), 0.0);
    }
}
