//! Statistics substrate for the `mlpt` workspace.
//!
//! The paper's evaluation is presented almost entirely through empirical
//! distributions: CDFs of discovery ratios (Fig. 4), CDFs of failure
//! probabilities (Fig. 2), log-scale histograms of diamond metrics
//! (Figs. 7, 10, 13), joint heat maps (Figs. 11, 14), and mean ± confidence
//! interval summaries (Sec. 3). This crate provides those primitives so the
//! survey and benchmark crates can express each figure as data series.
//!
//! Everything here is deterministic and allocation-conscious; nothing in
//! this crate depends on the rest of the workspace.

pub mod cdf;
pub mod confidence;
pub mod histogram;
pub mod joint;
pub mod summary;

pub use cdf::EmpiricalCdf;
pub use confidence::{mean_confidence_interval, ConfidenceInterval};
pub use histogram::{Histogram, PortionHistogram};
pub use joint::JointHistogram;
pub use summary::{RatioSummary, Summary};
