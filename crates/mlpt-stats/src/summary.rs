//! Scalar summaries and ratio accounting.
//!
//! Table 1 of the paper reports, for each alternative algorithm, the ratio
//! of vertices / edges discovered and packets sent relative to a first MDA
//! run, aggregated over 10 000 measurements. `RatioSummary` implements that
//! aggregate ("sum of alternative ÷ sum of baseline"), and `Summary` is a
//! running mean/min/max/variance accumulator used throughout the harness.

use serde::{Deserialize, Serialize};

/// Running summary statistics (count, mean, variance via Welford, min, max).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a summary from an iterator of samples.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        for x in iter {
            s.record(x);
        }
        s
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan(), "Summary: NaN sample");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0.0 if fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n as f64 - 1.0)
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum sample (None if empty).
    pub fn min(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Maximum sample (None if empty).
    pub fn max(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.max)
        }
    }
}

/// Aggregate ratio accumulator: Σ alternative ÷ Σ baseline.
///
/// This is the "macroscopic point of view" of Table 1: rather than averaging
/// per-trace ratios (which over-weights tiny topologies), the paper sums
/// quantities over the whole dataset and takes the ratio of sums.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RatioSummary {
    alternative_total: f64,
    baseline_total: f64,
    pairs: u64,
}

impl RatioSummary {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one (alternative, baseline) measurement pair.
    pub fn record(&mut self, alternative: f64, baseline: f64) {
        assert!(
            alternative >= 0.0 && baseline >= 0.0,
            "RatioSummary: negative quantity"
        );
        self.alternative_total += alternative;
        self.baseline_total += baseline;
        self.pairs += 1;
    }

    /// Number of pairs recorded.
    pub fn pairs(&self) -> u64 {
        self.pairs
    }

    /// Sum over the alternative series.
    pub fn alternative_total(&self) -> f64 {
        self.alternative_total
    }

    /// Sum over the baseline series.
    pub fn baseline_total(&self) -> f64 {
        self.baseline_total
    }

    /// The aggregate ratio Σ alternative ÷ Σ baseline.
    ///
    /// Returns 1.0 when both totals are zero (identical behaviour) and
    /// +∞ when only the baseline total is zero.
    pub fn ratio(&self) -> f64 {
        if self.baseline_total == 0.0 {
            if self.alternative_total == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.alternative_total / self.baseline_total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_mean_var() {
        let s = Summary::from_iter([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Known population variance 4 → sample variance 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn summary_single() {
        let s = Summary::from_iter([3.0]);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn ratio_aggregates_sums_not_means() {
        let mut r = RatioSummary::new();
        // Two traces: one tiny (1 vs 2), one large (100 vs 100).
        r.record(1.0, 2.0);
        r.record(100.0, 100.0);
        // Mean of per-trace ratios would be (0.5 + 1.0)/2 = 0.75;
        // the aggregate ratio is 101/102.
        assert!((r.ratio() - 101.0 / 102.0).abs() < 1e-12);
        assert_eq!(r.pairs(), 2);
    }

    #[test]
    fn ratio_zero_baseline() {
        let mut r = RatioSummary::new();
        r.record(0.0, 0.0);
        assert_eq!(r.ratio(), 1.0);
        r.record(5.0, 0.0);
        assert_eq!(r.ratio(), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn summary_rejects_nan() {
        let mut s = Summary::new();
        s.record(f64::NAN);
    }
}
