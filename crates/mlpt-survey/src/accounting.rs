//! Measured vs distinct diamond bookkeeping.
//!
//! "Since a diamond might show up in multiple measurements, we define each
//! encounter with a distinct diamond to be a measured diamond. Each way of
//! counting reflects a different view of what is important to consider:
//! the number of such topologies, or the likelihood of encountering one."
//! (Sec. 5). [`SurveyAccumulator`] keeps both views: every observation
//! counts once for the *measured* statistics, and the first observation
//! per [`DiamondKey`] (divergence, convergence) defines the *distinct*
//! population.

use mlpt_topo::diamond::DiamondMetrics;
use mlpt_topo::DiamondKey;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One diamond observation within one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiamondObservation {
    /// Index of the trace (scenario) it was seen in.
    pub trace_id: usize,
    /// Its metrics as measured in that trace.
    pub metrics: DiamondMetrics,
}

/// Accumulates diamond observations into measured/distinct views.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SurveyAccumulator {
    measured: Vec<DiamondObservation>,
    distinct: BTreeMap<DiamondKey, DiamondMetrics>,
    encounter_counts: BTreeMap<DiamondKey, u64>,
}

impl SurveyAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, trace_id: usize, metrics: DiamondMetrics) {
        let key = metrics.key;
        self.distinct.entry(key).or_insert_with(|| metrics.clone());
        *self.encounter_counts.entry(key).or_insert(0) += 1;
        self.measured.push(DiamondObservation { trace_id, metrics });
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: SurveyAccumulator) {
        for obs in other.measured {
            let key = obs.metrics.key;
            self.distinct
                .entry(key)
                .or_insert_with(|| obs.metrics.clone());
            *self.encounter_counts.entry(key).or_insert(0) += 1;
            self.measured.push(obs);
        }
    }

    /// All measured observations (one per encounter).
    pub fn measured(&self) -> &[DiamondObservation] {
        &self.measured
    }

    /// Metrics of each distinct diamond (first encounter wins).
    pub fn distinct(&self) -> impl Iterator<Item = &DiamondMetrics> {
        self.distinct.values()
    }

    /// Number of measured diamonds.
    pub fn measured_count(&self) -> usize {
        self.measured.len()
    }

    /// Number of distinct diamonds.
    pub fn distinct_count(&self) -> usize {
        self.distinct.len()
    }

    /// Times each distinct diamond was encountered.
    pub fn encounters(&self, key: &DiamondKey) -> u64 {
        self.encounter_counts.get(key).copied().unwrap_or(0)
    }

    /// Extracts a metric series over the measured population.
    pub fn measured_series<F: Fn(&DiamondMetrics) -> f64>(&self, f: F) -> Vec<f64> {
        self.measured.iter().map(|o| f(&o.metrics)).collect()
    }

    /// Extracts a metric series over the distinct population.
    pub fn distinct_series<F: Fn(&DiamondMetrics) -> f64>(&self, f: F) -> Vec<f64> {
        self.distinct.values().map(f).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn metrics(div: u8, conv: u8, width: usize) -> DiamondMetrics {
        DiamondMetrics {
            key: DiamondKey {
                divergence: Ipv4Addr::new(10, 0, 0, div),
                convergence: Ipv4Addr::new(10, 0, 0, conv),
            },
            max_width: width,
            max_length: 2,
            min_length: 2,
            max_width_asymmetry: 0,
            meshed_hop_pairs: 0,
            total_hop_pairs: 2,
            max_probability_difference: 0.0,
        }
    }

    #[test]
    fn measured_vs_distinct() {
        let mut acc = SurveyAccumulator::new();
        acc.record(0, metrics(1, 2, 4));
        acc.record(1, metrics(1, 2, 4)); // same diamond again
        acc.record(2, metrics(3, 4, 8));
        assert_eq!(acc.measured_count(), 3);
        assert_eq!(acc.distinct_count(), 2);
        assert_eq!(
            acc.encounters(&metrics(1, 2, 4).key),
            2,
            "encounter count tracks repeats"
        );
    }

    #[test]
    fn first_encounter_defines_distinct_metrics() {
        // "there might be differences in its measured internal topology
        // from one encounter to the next" — distinct keeps the first.
        let mut acc = SurveyAccumulator::new();
        acc.record(0, metrics(1, 2, 4));
        acc.record(1, metrics(1, 2, 9));
        let widths: Vec<usize> = acc.distinct().map(|m| m.max_width).collect();
        assert_eq!(widths, vec![4]);
    }

    #[test]
    fn series_extraction() {
        let mut acc = SurveyAccumulator::new();
        acc.record(0, metrics(1, 2, 4));
        acc.record(0, metrics(5, 6, 10));
        let widths = acc.measured_series(|m| m.max_width as f64);
        assert_eq!(widths, vec![4.0, 10.0]);
    }

    #[test]
    fn merge_combines() {
        let mut a = SurveyAccumulator::new();
        a.record(0, metrics(1, 2, 4));
        let mut b = SurveyAccumulator::new();
        b.record(1, metrics(1, 2, 4));
        b.record(1, metrics(7, 8, 2));
        a.merge(b);
        assert_eq!(a.measured_count(), 3);
        assert_eq!(a.distinct_count(), 2);
    }
}
