//! The five-way algorithm comparison (Sec. 2.4.2: Fig. 4 and Table 1).
//!
//! "For each of these, we ran five variants of Paris Traceroute
//! successively: two with the MDA; one with the MDA-Lite and φ = 2; one
//! with the MDA-Lite and φ = 4; and one with just a single flow ID. …
//! For each topology, the first run with the MDA serves as the basis for
//! comparing the other algorithms. We calculate the ratio of vertices
//! discovered, edges discovered, and packets sent."

//! The five variant runs of every diamond-bearing scenario execute on
//! the **concurrent sweep engine**: scenarios are chunked, each chunk
//! shares one [`mlpt_sim::MultiNetwork`] per variant pass (a fresh
//! same-seeded network per run, so every run sees the same network
//! conditions, exactly as the legacy back-to-back loop did), and the
//! chunk's sessions stream into one [`SweepEngine`] per pass. Because
//! sweep traces are bit-identical to sequential ones and traces are
//! reported under their stream index, the ratios are identical to the
//! thread-per-scenario implementation — and independent of chunking,
//! worker count and admission order. The legacy loop survives behind
//! [`DispatchMode::PerProbe`] for A/B comparison.

use crate::generator::{SyntheticInternet, TraceScenario};
use crate::parallel::ordered_parallel_map;
use mlpt_core::prelude::*;
use mlpt_core::prober::DispatchMode;
use mlpt_core::TraceSession;
use mlpt_sim::MultiNetwork;
use mlpt_stats::{EmpiricalCdf, RatioSummary};
use serde::{Deserialize, Serialize};

/// Which of the five runs a ratio series belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Variant {
    /// Second MDA run (the variability baseline).
    SecondMda,
    /// MDA-Lite with φ = 2.
    MdaLitePhi2,
    /// MDA-Lite with φ = 4.
    MdaLitePhi4,
    /// Single flow identifier.
    SingleFlow,
}

/// All variants in presentation order.
pub const VARIANTS: [Variant; 4] = [
    Variant::SecondMda,
    Variant::MdaLitePhi2,
    Variant::MdaLitePhi4,
    Variant::SingleFlow,
];

impl Variant {
    /// Human-readable label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            Variant::SecondMda => "Second MDA",
            Variant::MdaLitePhi2 => "MDA-Lite 2",
            Variant::MdaLitePhi4 => "MDA-Lite 4",
            Variant::SingleFlow => "Single flow ID",
        }
    }
}

/// Per-trace discovery ratios of one variant against the first MDA run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceRatios {
    /// Vertices(variant) / Vertices(first MDA).
    pub vertices: f64,
    /// Edges(variant) / Edges(first MDA).
    pub edges: f64,
    /// Packets(variant) / Packets(first MDA).
    pub packets: f64,
}

/// Raw counts of one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunCounts {
    /// Vertices discovered.
    pub vertices: u64,
    /// Edges discovered.
    pub edges: u64,
    /// Probe packets sent.
    pub packets: u64,
}

/// Configuration of the evaluation campaign.
#[derive(Debug, Clone)]
pub struct EvaluationConfig {
    /// Scenarios to consider (only diamond-bearing ones are measured,
    /// mirroring the paper's "pairs … for which diamonds had been
    /// discovered").
    pub scenarios: usize,
    /// Worker threads.
    pub workers: usize,
    /// Seed for the tracing side.
    pub trace_seed: u64,
    /// How probes cross the transport. [`DispatchMode::Batched`] runs
    /// the five variants on the sweep engine; [`DispatchMode::PerProbe`]
    /// keeps the legacy thread-per-scenario loop for A/B comparison.
    pub dispatch: DispatchMode,
    /// Scenarios per sweep chunk (each chunk shares one network per
    /// variant pass and streams its sessions into one engine).
    pub sweep_chunk: usize,
    /// In-flight probe budget per sweep engine.
    pub sweep_in_flight: usize,
    /// Deadline policy for dispatched probes (see
    /// [`mlpt_core::RetryPolicy`]).
    pub sweep_retry: RetryPolicy,
    /// Stall watchdog: all-silent rounds before a session is finalized
    /// as partial (0 = off).
    pub sweep_stall_rounds: u32,
}

impl Default for EvaluationConfig {
    fn default() -> Self {
        Self {
            dispatch: DispatchMode::Batched,
            scenarios: 500,
            workers: crate::parallel::default_workers(),
            trace_seed: 0xE7A1,
            sweep_chunk: 64,
            sweep_in_flight: 256,
            sweep_retry: RetryPolicy::default(),
            sweep_stall_rounds: 0,
        }
    }
}

/// Results: per-variant ratio series (Fig. 4) and aggregate ratios
/// (Table 1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvaluationOutcome {
    /// Diamond-bearing traces measured.
    pub measured_traces: usize,
    /// Per-variant per-trace ratio records, in variant order
    /// (SecondMda, MdaLitePhi2, MdaLitePhi4, SingleFlow).
    pub ratios: Vec<Vec<TraceRatios>>,
    /// Table 1 aggregates: Σvariant / ΣfirstMda for vertices, edges,
    /// packets, same variant order.
    pub aggregates: Vec<(f64, f64, f64)>,
}

impl EvaluationOutcome {
    /// Ratio records for one variant.
    pub fn ratios_of(&self, variant: Variant) -> &[TraceRatios] {
        let idx = VARIANTS.iter().position(|&v| v == variant).expect("known");
        &self.ratios[idx]
    }

    /// Fig. 4 CDF for one variant and metric selector.
    pub fn cdf<F: Fn(&TraceRatios) -> f64>(&self, variant: Variant, f: F) -> EmpiricalCdf {
        EmpiricalCdf::from_iter(self.ratios_of(variant).iter().map(f))
    }

    /// Table 1 row for one variant: (vertices, edges, packets).
    pub fn aggregate_of(&self, variant: Variant) -> (f64, f64, f64) {
        let idx = VARIANTS.iter().position(|&v| v == variant).expect("known");
        self.aggregates[idx]
    }
}

fn counts(trace: &Trace) -> RunCounts {
    // Count over the completed topology rather than raw flow witnesses:
    // a hop behind a single vertex determines its edges without needing a
    // flow observed at both TTLs (the MDA routinely leaves those edges
    // implicit, the MDA-Lite's completion step makes them explicit — the
    // topologies are the same and must count the same).
    match trace.to_topology() {
        Some(topo) => {
            let vertices = topo
                .hops()
                .iter()
                .flatten()
                .filter(|a| !mlpt_topo::is_star(**a))
                .count() as u64;
            RunCounts {
                vertices,
                edges: topo.total_edges() as u64,
                packets: trace.probes_sent,
            }
        }
        None => RunCounts {
            vertices: trace.total_vertices() as u64,
            edges: trace.total_edges() as u64,
            packets: trace.probes_sent,
        },
    }
}

fn ratio(a: u64, b: u64) -> f64 {
    if b == 0 {
        if a == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        a as f64 / b as f64
    }
}

/// A scenario's base seed: the *network* seed of all five of its runs
/// ("same network conditions per run"). The single source of truth for
/// both execution paths — the legacy/sweep bit-identity depends on them
/// agreeing.
fn scenario_base_seed(trace_seed: u64, id: usize) -> u64 {
    trace_seed ^ (id as u64).wrapping_mul(0xD1B5_4A32)
}

/// The trace seed of one variant run of one scenario (shared by both
/// execution paths so they are bit-identical).
fn variant_seed(trace_seed: u64, id: usize, variant: usize) -> u64 {
    scenario_base_seed(trace_seed, id).wrapping_add(1 + variant as u64)
}

/// The sans-IO session of one variant run (the sweep-engine analogue of
/// the legacy `trace_mda`/`trace_mda_lite`/`trace_single_flow` calls).
fn variant_session(scenario: &TraceScenario, seed: u64, variant: usize) -> Box<dyn TraceSession> {
    let destination = scenario.topology.destination();
    let cfg = TraceConfig::new(seed);
    match variant {
        0 | 1 => Box::new(MdaSession::new(destination, cfg)),
        2 => Box::new(MdaLiteSession::new(destination, cfg.with_phi(2))),
        3 => Box::new(MdaLiteSession::new(destination, cfg.with_phi(4))),
        _ => Box::new(SingleFlowSession::new(destination, cfg, FlowId(0))),
    }
}

/// Runs the five variants over every diamond-bearing scenario.
pub fn evaluate_scenarios(
    internet: &SyntheticInternet,
    config: &EvaluationConfig,
) -> EvaluationOutcome {
    /// First-MDA counts plus each variant's counts, or None if the
    /// scenario carried no diamond.
    type PerScenario = Option<(RunCounts, [RunCounts; 4])>;

    let rows: Vec<PerScenario> = if config.dispatch == DispatchMode::PerProbe {
        // Legacy comparison path: one full trace (and one simulator) per
        // run, thread-per-scenario concurrency.
        ordered_parallel_map(config.scenarios, config.workers, |id| {
            let scenario = internet.scenario(id);
            if !scenario.has_diamond {
                return None;
            }
            let base_seed = scenario_base_seed(config.trace_seed, id);
            let run = |variant: usize| -> Trace {
                // Each run sees the same network conditions (same network
                // seed) but uses its own flow randomness, like
                // back-to-back runs on a stable network.
                let mut prober = scenario.build_prober(base_seed, config.dispatch);
                let cfg = TraceConfig::new(variant_seed(config.trace_seed, id, variant));
                match variant {
                    0 | 1 => trace_mda(&mut prober, &cfg),
                    2 => trace_mda_lite(&mut prober, &cfg.with_phi(2)),
                    3 => trace_mda_lite(&mut prober, &cfg.with_phi(4)),
                    _ => trace_single_flow(&mut prober, &cfg, FlowId(0)),
                }
            };
            let first = counts(&run(0));
            let variants = [
                counts(&run(1)),
                counts(&run(2)),
                counts(&run(3)),
                counts(&run(4)),
            ];
            Some((first, variants))
        })
    } else {
        // Sweep path: worker threads scale across scenario chunks; inside
        // a chunk the five variants run as five streamed sweeps, each
        // over a fresh same-seeded network per scenario (same conditions
        // per run, as the legacy loop). Traces land under their stream
        // index, so rows are in scenario order no matter how admission
        // interleaves or which worker claims the chunk.
        // Cap the chunk size so there are at least `workers` chunks
        // (chunks are the unit of thread parallelism; chunking is pure
        // scheduling, so this never changes the outcome).
        let chunk_size = config
            .sweep_chunk
            .max(1)
            .min(config.scenarios.div_ceil(config.workers.max(1)).max(1));
        let chunks = config.scenarios.div_ceil(chunk_size);
        let nested: Vec<Vec<PerScenario>> = ordered_parallel_map(chunks, config.workers, |c| {
            let ids: Vec<usize> =
                (c * chunk_size..((c + 1) * chunk_size).min(config.scenarios)).collect();
            let scenarios: Vec<TraceScenario> =
                ids.iter().map(|&id| internet.scenario(id)).collect();
            let kept: Vec<&TraceScenario> = scenarios.iter().filter(|s| s.has_diamond).collect();
            // counts_of[variant][kept index]
            let mut counts_of: Vec<Vec<Option<RunCounts>>> = vec![vec![None; kept.len()]; 5];
            if !kept.is_empty() {
                let source = kept[0].source;
                assert!(
                    kept.iter().all(|s| s.source == source),
                    "sweep chunks assume a single vantage point"
                );
                for (variant, slot) in counts_of.iter_mut().enumerate() {
                    let lanes: Vec<mlpt_sim::SimNetwork> = kept
                        .iter()
                        .map(|s| {
                            // Network seed: the run's base seed, as
                            // build_prober used — same conditions for
                            // all five runs of a scenario.
                            s.build_network(scenario_base_seed(config.trace_seed, s.id))
                        })
                        .collect();
                    let net = MultiNetwork::new(lanes)
                        .expect("synthetic-Internet destinations are scenario-unique");
                    let mut engine = SweepEngine::new(net, source).with_config(SweepConfig {
                        max_in_flight: config.sweep_in_flight.max(1),
                        admission: Admission::Streaming,
                        retry: config.sweep_retry,
                        stall_rounds: config.sweep_stall_rounds,
                        ..SweepConfig::default()
                    });
                    let sessions = kept.iter().map(|s| {
                        variant_session(s, variant_seed(config.trace_seed, s.id, variant), variant)
                    });
                    engine.run_stream_with(sessions, |index, trace| {
                        slot[index] = Some(counts(&trace));
                    });
                }
            }
            // Re-align the kept rows with the chunk's full id range.
            let mut kept_iter = 0usize;
            scenarios
                .iter()
                .map(|s| {
                    if !s.has_diamond {
                        return None;
                    }
                    let k = kept_iter;
                    kept_iter += 1;
                    let take = |v: usize| counts_of[v][k].expect("variant run completed");
                    Some((take(0), [take(1), take(2), take(3), take(4)]))
                })
                .collect()
        });
        nested.into_iter().flatten().collect()
    };

    let mut ratios: Vec<Vec<TraceRatios>> = vec![Vec::new(); 4];
    let mut aggregates: Vec<(RatioSummary, RatioSummary, RatioSummary)> =
        vec![Default::default(); 4];
    let mut measured_traces = 0usize;
    for row in rows.into_iter().flatten() {
        measured_traces += 1;
        let (first, variants) = row;
        for (i, v) in variants.iter().enumerate() {
            ratios[i].push(TraceRatios {
                vertices: ratio(v.vertices, first.vertices),
                edges: ratio(v.edges, first.edges),
                packets: ratio(v.packets, first.packets),
            });
            aggregates[i]
                .0
                .record(v.vertices as f64, first.vertices as f64);
            aggregates[i].1.record(v.edges as f64, first.edges as f64);
            aggregates[i]
                .2
                .record(v.packets as f64, first.packets as f64);
        }
    }

    EvaluationOutcome {
        measured_traces,
        ratios,
        aggregates: aggregates
            .into_iter()
            .map(|(v, e, p)| (v.ratio(), e.ratio(), p.ratio()))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::InternetConfig;

    fn small_eval() -> EvaluationOutcome {
        let internet = SyntheticInternet::new(InternetConfig::with_seed(9));
        let config = EvaluationConfig {
            scenarios: 60,
            workers: 4,
            trace_seed: 5,
            ..EvaluationConfig::default()
        };
        evaluate_scenarios(&internet, &config)
    }

    fn outcomes_equal(a: &EvaluationOutcome, b: &EvaluationOutcome) {
        assert_eq!(a.measured_traces, b.measured_traces);
        assert_eq!(a.ratios, b.ratios);
        assert_eq!(a.aggregates, b.aggregates);
    }

    /// The sweep-engine path reproduces the legacy thread-per-scenario
    /// loop exactly: same per-run traces, so same ratios, bit for bit.
    #[test]
    fn sweep_and_legacy_paths_agree() {
        let internet = SyntheticInternet::new(InternetConfig::with_seed(21));
        let base = EvaluationConfig {
            scenarios: 30,
            workers: 2,
            trace_seed: 11,
            dispatch: DispatchMode::Batched,
            sweep_chunk: 7, // deliberately uneven chunks
            sweep_in_flight: 32,
            ..EvaluationConfig::default()
        };
        let sweep = evaluate_scenarios(&internet, &base);
        let legacy = evaluate_scenarios(
            &internet,
            &EvaluationConfig {
                dispatch: DispatchMode::PerProbe,
                ..base
            },
        );
        outcomes_equal(&sweep, &legacy);
    }

    /// Regression for the ordering audit: scenario/variant output order
    /// is pinned by stream indices, so the outcome is identical however
    /// admission interleaves — across worker counts, chunk sizes and
    /// in-flight budgets.
    #[test]
    fn outcome_independent_of_admission_order() {
        let internet = SyntheticInternet::new(InternetConfig::with_seed(23));
        let run = |workers: usize, sweep_chunk: usize, sweep_in_flight: usize| {
            evaluate_scenarios(
                &internet,
                &EvaluationConfig {
                    scenarios: 24,
                    workers,
                    trace_seed: 3,
                    dispatch: DispatchMode::Batched,
                    sweep_chunk,
                    sweep_in_flight,
                    ..EvaluationConfig::default()
                },
            )
        };
        let a = run(1, 24, 8); // one chunk, tight budget: heavy streaming
        let b = run(4, 5, 512); // many chunks, everything admitted at once
        outcomes_equal(&a, &b);
    }

    #[test]
    fn discovery_parity_and_packet_savings() {
        let out = small_eval();
        assert!(out.measured_traces > 20);

        // Table 1 shape: MDA-Lite within a few percent of the MDA on
        // vertices/edges, and clearly cheaper in packets.
        let (v2, e2, p2) = out.aggregate_of(Variant::SecondMda);
        let (vl, el, pl) = out.aggregate_of(Variant::MdaLitePhi2);
        let (vs, es, ps) = out.aggregate_of(Variant::SingleFlow);

        assert!((v2 - 1.0).abs() < 0.05, "second MDA vertices {v2}");
        assert!((e2 - 1.0).abs() < 0.05, "second MDA edges {e2}");
        assert!((p2 - 1.0).abs() < 0.15, "second MDA packets {p2}");

        assert!((vl - 1.0).abs() < 0.06, "lite vertices {vl}");
        assert!((el - 1.0).abs() < 0.08, "lite edges {el}");
        assert!(pl < 0.9, "lite packets must be cheaper: {pl}");

        assert!(vs < 0.8, "single flow discovers far fewer vertices: {vs}");
        assert!(es < 0.6, "single flow discovers far fewer edges: {es}");
        assert!(ps < 0.12, "single flow sends a tiny fraction: {ps}");
    }

    #[test]
    fn phi4_similar_to_phi2() {
        let out = small_eval();
        let (v2, e2, p2) = out.aggregate_of(Variant::MdaLitePhi2);
        let (v4, e4, p4) = out.aggregate_of(Variant::MdaLitePhi4);
        assert!((v2 - v4).abs() < 0.03);
        assert!((e2 - e4).abs() < 0.04);
        // φ = 4 spends slightly more on the meshing test.
        assert!(p4 >= p2 * 0.95);
    }

    #[test]
    fn cdfs_have_full_population() {
        let out = small_eval();
        for variant in VARIANTS {
            let cdf = out.cdf(variant, |r| r.packets);
            assert_eq!(cdf.len(), out.measured_traces);
        }
        // Single-flow packet ratios concentrate near zero.
        let single = out.cdf(Variant::SingleFlow, |r| r.packets);
        assert!(single.quantile(0.9).is_some_and(|q| q < 0.2));
    }
}
