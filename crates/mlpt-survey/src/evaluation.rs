//! The five-way algorithm comparison (Sec. 2.4.2: Fig. 4 and Table 1).
//!
//! "For each of these, we ran five variants of Paris Traceroute
//! successively: two with the MDA; one with the MDA-Lite and φ = 2; one
//! with the MDA-Lite and φ = 4; and one with just a single flow ID. …
//! For each topology, the first run with the MDA serves as the basis for
//! comparing the other algorithms. We calculate the ratio of vertices
//! discovered, edges discovered, and packets sent."

use crate::generator::SyntheticInternet;
use crate::parallel::ordered_parallel_map;
use mlpt_core::prelude::*;
use mlpt_core::prober::DispatchMode;
use mlpt_stats::{EmpiricalCdf, RatioSummary};
use serde::{Deserialize, Serialize};

/// Which of the five runs a ratio series belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Variant {
    /// Second MDA run (the variability baseline).
    SecondMda,
    /// MDA-Lite with φ = 2.
    MdaLitePhi2,
    /// MDA-Lite with φ = 4.
    MdaLitePhi4,
    /// Single flow identifier.
    SingleFlow,
}

/// All variants in presentation order.
pub const VARIANTS: [Variant; 4] = [
    Variant::SecondMda,
    Variant::MdaLitePhi2,
    Variant::MdaLitePhi4,
    Variant::SingleFlow,
];

impl Variant {
    /// Human-readable label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            Variant::SecondMda => "Second MDA",
            Variant::MdaLitePhi2 => "MDA-Lite 2",
            Variant::MdaLitePhi4 => "MDA-Lite 4",
            Variant::SingleFlow => "Single flow ID",
        }
    }
}

/// Per-trace discovery ratios of one variant against the first MDA run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceRatios {
    /// Vertices(variant) / Vertices(first MDA).
    pub vertices: f64,
    /// Edges(variant) / Edges(first MDA).
    pub edges: f64,
    /// Packets(variant) / Packets(first MDA).
    pub packets: f64,
}

/// Raw counts of one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunCounts {
    /// Vertices discovered.
    pub vertices: u64,
    /// Edges discovered.
    pub edges: u64,
    /// Probe packets sent.
    pub packets: u64,
}

/// Configuration of the evaluation campaign.
#[derive(Debug, Clone)]
pub struct EvaluationConfig {
    /// Scenarios to consider (only diamond-bearing ones are measured,
    /// mirroring the paper's "pairs … for which diamonds had been
    /// discovered").
    pub scenarios: usize,
    /// Worker threads.
    pub workers: usize,
    /// Seed for the tracing side.
    pub trace_seed: u64,
    /// How probes cross the transport (batched by default).
    pub dispatch: DispatchMode,
}

impl Default for EvaluationConfig {
    fn default() -> Self {
        Self {
            dispatch: DispatchMode::Batched,
            scenarios: 500,
            workers: crate::parallel::default_workers(),
            trace_seed: 0xE7A1,
        }
    }
}

/// Results: per-variant ratio series (Fig. 4) and aggregate ratios
/// (Table 1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvaluationOutcome {
    /// Diamond-bearing traces measured.
    pub measured_traces: usize,
    /// Per-variant per-trace ratio records, in variant order
    /// (SecondMda, MdaLitePhi2, MdaLitePhi4, SingleFlow).
    pub ratios: Vec<Vec<TraceRatios>>,
    /// Table 1 aggregates: Σvariant / ΣfirstMda for vertices, edges,
    /// packets, same variant order.
    pub aggregates: Vec<(f64, f64, f64)>,
}

impl EvaluationOutcome {
    /// Ratio records for one variant.
    pub fn ratios_of(&self, variant: Variant) -> &[TraceRatios] {
        let idx = VARIANTS.iter().position(|&v| v == variant).expect("known");
        &self.ratios[idx]
    }

    /// Fig. 4 CDF for one variant and metric selector.
    pub fn cdf<F: Fn(&TraceRatios) -> f64>(&self, variant: Variant, f: F) -> EmpiricalCdf {
        EmpiricalCdf::from_iter(self.ratios_of(variant).iter().map(f))
    }

    /// Table 1 row for one variant: (vertices, edges, packets).
    pub fn aggregate_of(&self, variant: Variant) -> (f64, f64, f64) {
        let idx = VARIANTS.iter().position(|&v| v == variant).expect("known");
        self.aggregates[idx]
    }
}

fn counts(trace: &Trace) -> RunCounts {
    // Count over the completed topology rather than raw flow witnesses:
    // a hop behind a single vertex determines its edges without needing a
    // flow observed at both TTLs (the MDA routinely leaves those edges
    // implicit, the MDA-Lite's completion step makes them explicit — the
    // topologies are the same and must count the same).
    match trace.to_topology() {
        Some(topo) => {
            let vertices = topo
                .hops()
                .iter()
                .flatten()
                .filter(|a| !mlpt_topo::is_star(**a))
                .count() as u64;
            RunCounts {
                vertices,
                edges: topo.total_edges() as u64,
                packets: trace.probes_sent,
            }
        }
        None => RunCounts {
            vertices: trace.total_vertices() as u64,
            edges: trace.total_edges() as u64,
            packets: trace.probes_sent,
        },
    }
}

fn ratio(a: u64, b: u64) -> f64 {
    if b == 0 {
        if a == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        a as f64 / b as f64
    }
}

/// Runs the five variants over every diamond-bearing scenario.
pub fn evaluate_scenarios(
    internet: &SyntheticInternet,
    config: &EvaluationConfig,
) -> EvaluationOutcome {
    /// First-MDA counts plus each variant's counts, or None if the
    /// scenario carried no diamond.
    type PerScenario = Option<(RunCounts, [RunCounts; 4])>;

    let rows: Vec<PerScenario> = ordered_parallel_map(config.scenarios, config.workers, |id| {
        let scenario = internet.scenario(id);
        if !scenario.has_diamond {
            return None;
        }
        let base_seed = config.trace_seed ^ (id as u64).wrapping_mul(0xD1B5_4A32);
        let run = |variant: usize| -> Trace {
            // Each run sees the same network conditions (same network
            // seed) but uses its own flow randomness, like back-to-back
            // runs on a stable network.
            let mut prober = scenario.build_prober(base_seed, config.dispatch);
            let cfg = TraceConfig::new(base_seed.wrapping_add(1 + variant as u64));
            match variant {
                0 | 1 => trace_mda(&mut prober, &cfg),
                2 => trace_mda_lite(&mut prober, &cfg.with_phi(2)),
                3 => trace_mda_lite(&mut prober, &cfg.with_phi(4)),
                _ => trace_single_flow(&mut prober, &cfg, FlowId(0)),
            }
        };
        let first = counts(&run(0));
        let variants = [
            counts(&run(1)),
            counts(&run(2)),
            counts(&run(3)),
            counts(&run(4)),
        ];
        Some((first, variants))
    });

    let mut ratios: Vec<Vec<TraceRatios>> = vec![Vec::new(); 4];
    let mut aggregates: Vec<(RatioSummary, RatioSummary, RatioSummary)> =
        vec![Default::default(); 4];
    let mut measured_traces = 0usize;
    for row in rows.into_iter().flatten() {
        measured_traces += 1;
        let (first, variants) = row;
        for (i, v) in variants.iter().enumerate() {
            ratios[i].push(TraceRatios {
                vertices: ratio(v.vertices, first.vertices),
                edges: ratio(v.edges, first.edges),
                packets: ratio(v.packets, first.packets),
            });
            aggregates[i]
                .0
                .record(v.vertices as f64, first.vertices as f64);
            aggregates[i].1.record(v.edges as f64, first.edges as f64);
            aggregates[i]
                .2
                .record(v.packets as f64, first.packets as f64);
        }
    }

    EvaluationOutcome {
        measured_traces,
        ratios,
        aggregates: aggregates
            .into_iter()
            .map(|(v, e, p)| (v.ratio(), e.ratio(), p.ratio()))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::InternetConfig;

    fn small_eval() -> EvaluationOutcome {
        let internet = SyntheticInternet::new(InternetConfig::with_seed(9));
        let config = EvaluationConfig {
            scenarios: 60,
            workers: 4,
            trace_seed: 5,
            ..EvaluationConfig::default()
        };
        evaluate_scenarios(&internet, &config)
    }

    #[test]
    fn discovery_parity_and_packet_savings() {
        let out = small_eval();
        assert!(out.measured_traces > 20);

        // Table 1 shape: MDA-Lite within a few percent of the MDA on
        // vertices/edges, and clearly cheaper in packets.
        let (v2, e2, p2) = out.aggregate_of(Variant::SecondMda);
        let (vl, el, pl) = out.aggregate_of(Variant::MdaLitePhi2);
        let (vs, es, ps) = out.aggregate_of(Variant::SingleFlow);

        assert!((v2 - 1.0).abs() < 0.05, "second MDA vertices {v2}");
        assert!((e2 - 1.0).abs() < 0.05, "second MDA edges {e2}");
        assert!((p2 - 1.0).abs() < 0.15, "second MDA packets {p2}");

        assert!((vl - 1.0).abs() < 0.06, "lite vertices {vl}");
        assert!((el - 1.0).abs() < 0.08, "lite edges {el}");
        assert!(pl < 0.9, "lite packets must be cheaper: {pl}");

        assert!(vs < 0.8, "single flow discovers far fewer vertices: {vs}");
        assert!(es < 0.6, "single flow discovers far fewer edges: {es}");
        assert!(ps < 0.12, "single flow sends a tiny fraction: {ps}");
    }

    #[test]
    fn phi4_similar_to_phi2() {
        let out = small_eval();
        let (v2, e2, p2) = out.aggregate_of(Variant::MdaLitePhi2);
        let (v4, e4, p4) = out.aggregate_of(Variant::MdaLitePhi4);
        assert!((v2 - v4).abs() < 0.03);
        assert!((e2 - e4).abs() < 0.04);
        // φ = 4 spends slightly more on the meshing test.
        assert!(p4 >= p2 * 0.95);
    }

    #[test]
    fn cdfs_have_full_population() {
        let out = small_eval();
        for variant in VARIANTS {
            let cdf = out.cdf(variant, |r| r.packets);
            assert_eq!(cdf.len(), out.measured_traces);
        }
        // Single-flow packet ratios concentrate near zero.
        let single = out.cdf(Variant::SingleFlow, |r| r.packets);
        assert!(single.quantile(0.9) < 0.2);
    }
}
