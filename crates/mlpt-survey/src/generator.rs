//! The synthetic Internet: calibrated multipath scenarios.
//!
//! Each scenario is one (source, destination) pair: a hop-structured
//! route of 6–18 hops in which diamonds are embedded. The embedded
//! diamond population is calibrated against the paper's published
//! marginals (Sec. 5.1):
//!
//! * ≈ 53 % of routes traverse at least one per-flow load balancer
//!   (155 030 / 294 832);
//! * load-balanced routes carry ≈ 1.4 diamonds on average;
//! * ≈ 48 % of diamonds have maximum length 2; the rest decay
//!   geometrically up to length ≈ 10;
//! * widths are dominated by 2 (the simplest diamond is ≈ 25 % of all),
//!   decay geometrically, and carry *shared core structures* of widths
//!   48 and 56 that many routes traverse through different
//!   divergence/convergence points — producing the paper's distinctive
//!   peaks at 48 and 56 (Fig. 10) and its "distinct diamonds sharing a
//!   large portion of their IP addresses";
//! * ≈ 11 % of diamonds are width-asymmetric (Fig. 7: 89 % zero
//!   asymmetry);
//! * ≈ 15 % of measured diamonds are meshed, meshing confined to a
//!   minority of hop pairs (Figs. 9);
//! * router sizes concentrate on 2 (Fig. 12: 68 % size 2, 97 % ≤ 10),
//!   with rare large routers; the 56-wide core collapses at the router
//!   level (Fig. 13: the 56 peak disappears, the 48 peak survives) while
//!   the 48-wide core is all singleton routers.
//!
//! Scenarios are generated deterministically from `(seed, index)` — the
//! whole synthetic Internet is reproducible and never materialised in
//! memory at once.

use mlpt_sim::{CounterBehavior, IpIdProfile, MplsProfile, RouterProfile};
use mlpt_topo::{MultipathTopology, RouterId, RouterMap, TopologyBuilder};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Calibration knobs for the synthetic Internet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InternetConfig {
    /// Master seed: scenario `i` derives from `(seed, i)`.
    pub seed: u64,
    /// Probability a route crosses at least one load balancer.
    pub p_load_balanced: f64,
    /// Probability a load-balanced route carries a second diamond.
    pub p_second_diamond: f64,
    /// Probability a load-balanced route carries a third diamond.
    pub p_third_diamond: f64,
    /// Probability a diamond has maximum length 2.
    pub p_length_two: f64,
    /// Probability a diamond is one of the shared core structures.
    pub p_core_structure: f64,
    /// Probability a (non-core) diamond is width-asymmetric.
    pub p_asymmetric: f64,
    /// Probability an eligible hop pair is meshed.
    pub p_meshed_pair: f64,
    /// Probability an interface pair at a hop shares a router.
    pub p_paired_interfaces: f64,
}

impl Default for InternetConfig {
    fn default() -> Self {
        Self {
            seed: 0x1917_2018,
            p_load_balanced: 0.526,
            p_second_diamond: 0.30,
            p_third_diamond: 0.12,
            p_length_two: 0.48,
            p_core_structure: 0.035,
            p_asymmetric: 0.11,
            p_meshed_pair: 0.40,
            p_paired_interfaces: 0.32,
        }
    }
}

impl InternetConfig {
    /// Creates a config with a specific seed and default calibration.
    pub fn with_seed(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }
}

/// One generated scenario: everything needed to build a simulator.
#[derive(Debug, Clone)]
pub struct TraceScenario {
    /// Scenario index.
    pub id: usize,
    /// Ground-truth topology between source and destination.
    pub topology: MultipathTopology,
    /// Ground-truth alias sets.
    pub routers: RouterMap,
    /// Behavioural profiles per router.
    pub profiles: Vec<(RouterId, RouterProfile)>,
    /// The vantage point's own address.
    pub source: Ipv4Addr,
    /// True if at least one diamond was embedded.
    pub has_diamond: bool,
}

impl TraceScenario {
    /// Builds a ready-to-trace prober over this scenario's simulator,
    /// with the requested probe-dispatch mode. Survey runs go through
    /// this so a whole campaign flips between batched and per-probe
    /// dispatch with one config field.
    pub fn build_prober(
        &self,
        seed: u64,
        dispatch: mlpt_core::prober::DispatchMode,
    ) -> mlpt_core::prober::TransportProber<mlpt_sim::SimNetwork> {
        mlpt_core::prober::TransportProber::new(
            self.build_network(seed),
            self.source,
            self.topology.destination(),
        )
        .with_dispatch(dispatch)
    }

    /// Builds the packet-level simulator for this scenario.
    pub fn build_network(&self, seed: u64) -> mlpt_sim::SimNetwork {
        let mut builder = mlpt_sim::SimNetwork::builder(self.topology.clone())
            .routers(self.routers.clone())
            .seed(seed);
        for (router, profile) in &self.profiles {
            builder = builder.profile(*router, *profile);
        }
        builder.build()
    }
}

/// The deterministic scenario factory.
#[derive(Debug, Clone)]
pub struct SyntheticInternet {
    config: InternetConfig,
    cores: Vec<CoreStructure>,
}

/// A shared wide structure traversed by many routes.
#[derive(Debug, Clone)]
struct CoreStructure {
    /// Interfaces of the wide hops (shared addresses across scenarios).
    hops: Vec<Vec<Ipv4Addr>>,
    /// Alias groups among those interfaces.
    alias_groups: Vec<Vec<Ipv4Addr>>,
}

/// Address of a scenario-local interface. Scenario blocks are 8192
/// addresses apart starting at 64.0.0.0; hop index (< 64) and position
/// (< 128) pack below that, leaving room for ~390 000 scenarios.
fn scenario_addr(id: usize, hop: usize, idx: usize) -> Ipv4Addr {
    debug_assert!(hop < 64 && idx < 128, "hop {hop} idx {idx} out of range");
    let v: u32 = 0x4000_0000 + (id as u32) * 8192 + (hop as u32) * 128 + idx as u32;
    Ipv4Addr::from(v)
}

/// Address inside a shared core structure.
fn core_addr(core: usize, hop: usize, idx: usize) -> Ipv4Addr {
    let v: u32 = 0x0A00_0000 + (core as u32) * 4096 + (hop as u32) * 512 + idx as u32;
    Ipv4Addr::from(v)
}

impl SyntheticInternet {
    /// Creates the factory, materialising the shared core structures.
    pub fn new(config: InternetConfig) -> Self {
        let mut cores = Vec::new();

        // Core 0: the 48-wide structure. Single wide hop; every interface
        // its own router (survives alias resolution: Fig. 13's surviving
        // peak at 48).
        cores.push(CoreStructure {
            hops: vec![(0..48).map(|i| core_addr(0, 0, i)).collect()],
            alias_groups: Vec::new(),
        });

        // Core 1: the 56-wide structure. Two wide hops whose interfaces
        // group into routers (sizes 2–8, one large); at the router level
        // the middle collapses and the diamond splits / shrinks (Fig. 13's
        // disappearing peak at 56, Fig. 14's big width reductions).
        let hop_a: Vec<Ipv4Addr> = (0..56).map(|i| core_addr(1, 0, i)).collect();
        let hop_b: Vec<Ipv4Addr> = (0..56).map(|i| core_addr(1, 1, i)).collect();
        let mut groups: Vec<Vec<Ipv4Addr>> = Vec::new();
        // Hop A groups into routers of size 8 (7 routers).
        for chunk in hop_a.chunks(8) {
            groups.push(chunk.to_vec());
        }
        // Hop B: one 52-interface router (the paper found 1 distinct
        // router with more than 50 interfaces) plus size-2 routers.
        groups.push(hop_b[..52].to_vec());
        for chunk in hop_b[52..].chunks(2) {
            groups.push(chunk.to_vec());
        }
        cores.push(CoreStructure {
            hops: vec![hop_a, hop_b],
            alias_groups: groups,
        });

        // Core 2: the 96-wide extreme — "load balancing practices on a
        // scale (up to 96 interfaces at a single hop) never before
        // described". Rarely traversed; interfaces pair into routers.
        let hop_c: Vec<Ipv4Addr> = (0..96).map(|i| core_addr(2, 0, i)).collect();
        let groups: Vec<Vec<Ipv4Addr>> = hop_c.chunks(2).map(|c| c.to_vec()).collect();
        cores.push(CoreStructure {
            hops: vec![hop_c],
            alias_groups: groups,
        });

        Self { config, cores }
    }

    /// The configuration in force.
    pub fn config(&self) -> &InternetConfig {
        &self.config
    }

    /// Generates scenario `id` deterministically.
    pub fn scenario(&self, id: usize) -> TraceScenario {
        let mut rng = ChaCha8Rng::seed_from_u64(
            self.config
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(id as u64),
        );
        let cfg = &self.config;

        // Plan the hop widths first, as a vector of per-hop widths with
        // diamond spans remembered.
        let mut widths: Vec<usize> = Vec::new();
        // core_spans: (start hop, core id).
        let mut core_spans: Vec<(usize, usize)> = Vec::new();
        // Leading single-vertex hops (access + aggregation): Internet
        // paths run ~10-18 hops, most of them without load balancing.
        let lead = rng.gen_range(4..=8);
        widths.extend(std::iter::repeat_n(1, lead));

        let has_lb = rng.gen::<f64>() < cfg.p_load_balanced;
        let mut diamonds = 0usize;
        if has_lb {
            diamonds = 1;
            if rng.gen::<f64>() < cfg.p_second_diamond {
                diamonds += 1;
                if rng.gen::<f64>() < cfg.p_third_diamond {
                    diamonds += 1;
                }
            }
        }

        let mut asymmetric_planned: Vec<usize> = Vec::new(); // diamond start hops
        let mut meshed_planned: Vec<usize> = Vec::new();

        for _ in 0..diamonds {
            if rng.gen::<f64>() < cfg.p_core_structure {
                // A shared core structure; the 96-wide extreme is rare.
                let roll: f64 = rng.gen();
                let core_id = if roll < 0.45 {
                    0
                } else if roll < 0.9 {
                    1
                } else {
                    2
                };
                core_spans.push((widths.len(), core_id));
                for hop in &self.cores[core_id].hops {
                    widths.push(hop.len());
                }
            } else {
                let start = widths.len();
                let interior_hops = if rng.gen::<f64>() < cfg.p_length_two {
                    1
                } else {
                    // Geometric tail: 2.. up to ~12 interior hops.
                    let mut n = 2usize;
                    while n < 12 && rng.gen::<f64>() < 0.55 {
                        n += 1;
                    }
                    n
                };
                let max_width = sample_width(&mut rng);
                for i in 0..interior_hops {
                    // Bulge profile: widest in the middle.
                    let scale = 1.0
                        - (i as f64 - (interior_hops - 1) as f64 / 2.0).abs()
                            / interior_hops.max(1) as f64;
                    let w = ((max_width as f64) * (0.55 + 0.45 * scale)).round() as usize;
                    widths.push(w.clamp(2, max_width));
                }
                if rng.gen::<f64>() < cfg.p_asymmetric {
                    asymmetric_planned.push(start);
                }
                if interior_hops >= 2 && rng.gen::<f64>() < cfg.p_meshed_pair {
                    meshed_planned.push(start);
                }
            }
            // Converging single hops after each diamond.
            let gap = rng.gen_range(1..=3);
            widths.extend(std::iter::repeat_n(1, gap));
        }

        // Trailing hops to the destination.
        let trail = rng.gen_range(2..=5);
        widths.extend(std::iter::repeat_n(1, trail));

        // Materialise addresses per hop.
        let mut hops: Vec<Vec<Ipv4Addr>> = Vec::with_capacity(widths.len());
        for (h, &w) in widths.iter().enumerate() {
            // Core hops reuse the shared addresses.
            let from_core = core_spans.iter().find_map(|&(start, core_id)| {
                let core = &self.cores[core_id];
                if h >= start && h < start + core.hops.len() {
                    Some(core.hops[h - start].clone())
                } else {
                    None
                }
            });
            match from_core {
                Some(addresses) => hops.push(addresses),
                None => hops.push((0..w).map(|i| scenario_addr(id, h, i)).collect()),
            }
        }

        // Wire the hops.
        let mut b = TopologyBuilder::default();
        for hop in &hops {
            b.add_hop(hop.iter().copied());
        }
        for h in 0..hops.len() - 1 {
            let is_asymmetric = asymmetric_planned.contains(&h)
                && hops[h].len() >= 2
                && hops[h + 1].len() > hops[h].len();
            let is_meshed = meshed_planned
                .iter()
                .any(|&s| h == s + 1 && hops[h].len() >= 2 && hops[h + 1].len() >= 2);
            if is_asymmetric {
                wire_asymmetric(&mut b, h, &hops[h], &hops[h + 1]);
            } else if is_meshed {
                wire_meshed(&mut b, h, &hops[h], &hops[h + 1]);
            } else {
                b.connect_unmeshed(h);
            }
        }
        let topology = b.build().expect("generated topology is valid");

        // Router ground truth: core alias groups + per-hop pairing.
        let mut alias_groups: Vec<Vec<Ipv4Addr>> = Vec::new();
        for &(_, core_id) in &core_spans {
            alias_groups.extend(self.cores[core_id].alias_groups.iter().cloned());
        }
        for hop in &hops {
            if hop.len() < 2 || hop.iter().any(|a| u32::from(*a) < 0x4000_0000) {
                continue; // single hops and core hops handled above
            }
            // A 2-wide hop whose two interfaces share a router is a
            // diamond that alias resolution dissolves entirely — the
            // paper finds that case rare (Table 3: 5.8%), so pairing is
            // suppressed on the narrowest hops.
            let pair_probability = if hop.len() == 2 {
                cfg.p_paired_interfaces * 0.25
            } else {
                cfg.p_paired_interfaces
            };
            let mut i = 0;
            while i + 1 < hop.len() {
                if rng.gen::<f64>() < pair_probability {
                    // Mostly pairs; occasionally a larger router.
                    let mut size = 2usize;
                    while size < 6 && i + size < hop.len() && rng.gen::<f64>() < 0.18 {
                        size += 1;
                    }
                    alias_groups.push(hop[i..i + size].to_vec());
                    i += size;
                } else {
                    i += 1;
                }
            }
        }
        // Deduplicate groups (cores may repeat across spans).
        alias_groups.sort();
        alias_groups.dedup();
        let routers = RouterMap::from_alias_sets(alias_groups.iter().cloned());

        // Behavioural profiles per router. Routers made of shared core
        // addresses must behave identically in every scenario that
        // traverses them, so their profiles derive from their own
        // addresses, not from the scenario RNG; and large routers are
        // given well-behaved shared counters — the paper *found* its
        // > 50-interface router, which requires resolvable IP-IDs.
        let mut profiles = Vec::new();
        for (router, set) in routers.alias_sets() {
            let min_addr = *set.iter().next().expect("non-empty alias set");
            let is_core = u32::from(min_addr) < 0x4000_0000;
            let profile = if set.len() >= 8 {
                RouterProfile::well_behaved()
            } else if is_core {
                let mut core_rng =
                    ChaCha8Rng::seed_from_u64(u64::from(u32::from(min_addr)) ^ 0xC0DE_CAFE);
                sample_profile(&mut core_rng)
            } else {
                sample_profile(&mut rng)
            };
            profiles.push((router, profile));
        }

        TraceScenario {
            id,
            topology,
            routers,
            profiles,
            source: Ipv4Addr::new(192, 0, 2, 1),
            has_diamond: diamonds > 0,
        }
    }
}

/// Width sampler: mass at 2, geometric body, occasional wide tails.
fn sample_width<R: Rng>(rng: &mut R) -> usize {
    let roll: f64 = rng.gen();
    if roll < 0.50 {
        2
    } else if roll < 0.97 {
        // Geometric body 3..=16.
        let mut w = 3usize;
        while w < 16 && rng.gen::<f64>() < 0.62 {
            w += 1;
        }
        w
    } else {
        // Wide tail 17..=40 (the 48/56/96 extremes come from cores and
        // aggregation).
        rng.gen_range(17..=40)
    }
}

/// Asymmetric wiring for a (narrow → wide) pair: the first vertex takes
/// the lion's share of successors, the others one each — non-zero width
/// asymmetry and a non-uniform reach distribution, unmeshed.
fn wire_asymmetric(b: &mut TopologyBuilder, hop: usize, from: &[Ipv4Addr], to: &[Ipv4Addr]) {
    debug_assert!(from.len() >= 2 && to.len() > from.len());
    let heavy = to.len() - (from.len() - 1);
    for (j, &t) in to.iter().enumerate() {
        let f = if j < heavy {
            from[0]
        } else {
            from[j - heavy + 1]
        };
        b.add_edge(hop, f, t);
    }
}

/// Meshed wiring: ring pattern (each vertex feeds two targets) — meshed
/// by the paper's definition yet still uniform.
fn wire_meshed(b: &mut TopologyBuilder, hop: usize, from: &[Ipv4Addr], to: &[Ipv4Addr]) {
    debug_assert!(from.len() >= 2 && to.len() >= 2);
    for (i, &f) in from.iter().enumerate() {
        let t0 = to[i * to.len() / from.len()];
        let t1 = to[(i * to.len() / from.len() + 1) % to.len()];
        b.add_edge(hop, f, t0);
        if t1 != t0 {
            b.add_edge(hop, f, t1);
        }
    }
    // Guarantee every target has a predecessor.
    for (j, &t) in to.iter().enumerate() {
        let f = from[j * from.len() / to.len()];
        b.add_edge(hop, f, t);
    }
}

/// Behavioural profile mixture calibrated to the Table 2 phenomenology.
fn sample_profile<R: Rng>(rng: &mut R) -> RouterProfile {
    let roll: f64 = rng.gen();
    let ipid = if roll < 0.52 {
        // Well-behaved: one shared counter for everything.
        IpIdProfile::shared(2, 3)
    } else if roll < 0.57 {
        // Well-behaved but faster counters (busier routers).
        IpIdProfile::shared(5, 6)
    } else if roll < 0.70 {
        // Per-interface counters for ICMP errors, shared for echo —
        // Table 2's "Reject Indirect / Accept Direct" cell.
        IpIdProfile::per_interface_indirect(2, 3)
    } else if roll < 0.78 {
        // Constant zero on both classes: nobody can conclude.
        IpIdProfile::constant_zero()
    } else if roll < 0.88 {
        // Constant zero for ICMP errors but a live counter for echo —
        // Table 2's "Unable Indirect / Accept Direct" cell (98.6% of
        // MMLPT's inconclusive cases were constant indirect IDs).
        IpIdProfile {
            indirect: CounterBehavior::Constant(0),
            direct: CounterBehavior::SharedCounter,
            unified_counter: false,
            rate: 2,
            jitter: 3,
        }
    } else if roll < 0.94 {
        // Echo replies copy the probe's IP ID (22.8% of MIDAR's
        // inconclusive cases) while indirect probing works fine.
        IpIdProfile {
            indirect: CounterBehavior::SharedCounter,
            direct: CounterBehavior::CopyProbe,
            unified_counter: false,
            rate: 2,
            jitter: 3,
        }
    } else if roll < 0.96 {
        // Shared indirect counter but per-interface echo counters —
        // the rare "Accept Indirect / Reject Direct" cell (0.5%).
        IpIdProfile {
            indirect: CounterBehavior::SharedCounter,
            direct: CounterBehavior::PerInterfaceCounter,
            unified_counter: false,
            rate: 2,
            jitter: 3,
        }
    } else {
        // Random IDs: non-monotonic series for everyone.
        IpIdProfile {
            indirect: CounterBehavior::Random,
            direct: CounterBehavior::Random,
            unified_counter: true,
            rate: 0,
            jitter: 0,
        }
    };
    let initial_ttl = match rng.gen_range(0..10) {
        0..=4 => 255u8,
        5..=7 => 64,
        8 => 128,
        _ => 32,
    };
    let mpls = if rng.gen::<f64>() < 0.12 {
        Some(MplsProfile {
            label: rng.gen_range(16..(1 << 19)),
            stable: rng.gen::<f64>() < 0.8,
        })
    } else {
        None
    };
    RouterProfile {
        ipid,
        initial_ttl_indirect: initial_ttl,
        initial_ttl_direct: initial_ttl,
        responds_to_direct: rng.gen::<f64>() < 0.72,
        mpls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpt_topo::diamond::all_diamond_metrics;

    fn internet() -> SyntheticInternet {
        SyntheticInternet::new(InternetConfig::with_seed(7))
    }

    #[test]
    fn scenarios_are_deterministic() {
        let net = internet();
        let a = net.scenario(42);
        let b = net.scenario(42);
        assert_eq!(a.topology, b.topology);
        assert_eq!(a.routers, b.routers);
    }

    #[test]
    fn scenarios_are_distinct() {
        let net = internet();
        let a = net.scenario(1);
        let b = net.scenario(2);
        assert_ne!(a.topology, b.topology);
    }

    #[test]
    fn topologies_are_valid_and_bounded() {
        let net = internet();
        for id in 0..200 {
            let s = net.scenario(id);
            assert!(s.topology.num_hops() >= 3, "scenario {id} too short");
            assert!(s.topology.num_hops() <= 64, "scenario {id} too long");
            assert_eq!(s.topology.hop(s.topology.num_hops() - 1).len(), 1);
        }
    }

    #[test]
    fn load_balanced_fraction_calibrated() {
        let net = internet();
        let n = 600;
        let with_diamond = (0..n).filter(|&id| net.scenario(id).has_diamond).count();
        let fraction = with_diamond as f64 / n as f64;
        assert!(
            (fraction - 0.526).abs() < 0.07,
            "load-balanced fraction {fraction}"
        );
    }

    #[test]
    fn diamond_population_shape() {
        let net = internet();
        let mut lengths = Vec::new();
        let mut widths = Vec::new();
        let mut asymmetric = 0usize;
        let mut meshed = 0usize;
        let mut total = 0usize;
        for id in 0..600 {
            let s = net.scenario(id);
            for m in all_diamond_metrics(&s.topology) {
                total += 1;
                lengths.push(m.max_length);
                widths.push(m.max_width);
                if m.max_width_asymmetry > 0 {
                    asymmetric += 1;
                }
                if m.is_meshed() {
                    meshed += 1;
                }
            }
        }
        assert!(total > 200, "need a real population, got {total}");
        let len2 = lengths.iter().filter(|&&l| l == 2).count() as f64 / total as f64;
        assert!((len2 - 0.48).abs() < 0.10, "length-2 share {len2}");
        let width2 = widths.iter().filter(|&&w| w == 2).count() as f64 / total as f64;
        assert!(width2 > 0.25 && width2 < 0.60, "width-2 share {width2}");
        let asym = asymmetric as f64 / total as f64;
        assert!(asym > 0.04 && asym < 0.20, "asymmetric share {asym}");
        let mesh = meshed as f64 / total as f64;
        assert!(mesh > 0.05 && mesh < 0.30, "meshed share {mesh}");
        // The cores must appear.
        assert!(
            widths.contains(&48) || widths.contains(&56),
            "core structures must be traversed"
        );
    }

    #[test]
    fn core_addresses_shared_across_scenarios() {
        let net = internet();
        // Find two scenarios traversing the *same* core structure (core 0
        // lives below 0x0A00_1000) and check they share its addresses.
        let uses_core0 = |s: &TraceScenario| {
            s.topology
                .all_addresses()
                .iter()
                .any(|a| (0x0A00_0000..0x0A00_1000).contains(&u32::from(*a)))
        };
        let mut users: Vec<usize> = Vec::new();
        for id in 0..4000 {
            if uses_core0(&net.scenario(id)) {
                users.push(id);
                if users.len() >= 2 {
                    break;
                }
            }
        }
        assert!(users.len() >= 2, "core 0 too rare");
        let a = net.scenario(users[0]);
        let b = net.scenario(users[1]);
        let aa = a.topology.all_addresses();
        let bb = b.topology.all_addresses();
        let shared = aa.intersection(&bb).count();
        assert!(shared >= 40, "shared core interfaces: {shared}");
    }

    #[test]
    fn router_sizes_mostly_two() {
        let net = internet();
        let mut sizes = Vec::new();
        for id in 0..300 {
            sizes.extend(net.scenario(id).routers.router_sizes());
        }
        assert!(!sizes.is_empty());
        let two = sizes.iter().filter(|&&s| s == 2).count() as f64 / sizes.len() as f64;
        assert!(two > 0.5, "size-2 share {two}");
    }

    #[test]
    fn network_builds_and_routes() {
        use mlpt_wire::transport::PacketTransport;
        let net = internet();
        let s = net.scenario(3);
        let mut sim = s.build_network(9);
        let probe = mlpt_wire::probe::build_udp_probe(&mlpt_wire::probe::ProbePacket {
            source: s.source,
            destination: s.topology.destination(),
            flow: mlpt_wire::FlowId(1),
            ttl: 1,
            sequence: 1,
        });
        assert!(sim.send_packet(&probe).is_some());
    }
}
