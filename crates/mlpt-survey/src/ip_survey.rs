//! The IP-level survey (Sec. 5.1).
//!
//! Traces every scenario with the full MDA (as the paper's survey did,
//! using libparistraceroute's MDA with default parameters), extracts
//! diamonds, and aggregates the metric distributions behind Figs. 7–11,
//! plus the Fig. 2 meshing-detection-failure analysis.
//!
//! Scenarios are traced by the **concurrent sweep engine**: destinations
//! are grouped into chunks of [`IpSurveyConfig::sweep_batch`], each
//! chunk shares one [`mlpt_sim::MultiNetwork`] whose lanes are the
//! per-scenario simulators, and one [`mlpt_core::SweepEngine`] *streams*
//! the chunk's [`MdaSession`]s over it: sessions are admitted as
//! in-flight tokens free up rather than entering a fixed table up front,
//! so cross-destination batches stay full until the chunk's destination
//! list runs dry instead of collapsing into a tail of tiny dispatches.
//! Worker threads scale across *networks* (chunks), not across
//! individual traces. Because sweeps are bit-identical to sequential
//! tracing (per-lane RNG streams, tag-based reply demux, admission-order
//! independence), the survey's numbers are unchanged from the
//! thread-per-scenario implementation it replaces; the legacy per-trace
//! loop survives behind [`DispatchMode::PerProbe`] for A/B comparison.

use crate::accounting::SurveyAccumulator;
use crate::generator::SyntheticInternet;
use crate::parallel::ordered_parallel_map;
use mlpt_core::prelude::*;
use mlpt_core::prober::DispatchMode;
use mlpt_core::{MdaSession, TraceSession};
use mlpt_sim::MultiNetwork;
use mlpt_stats::{EmpiricalCdf, Histogram, JointHistogram};
use mlpt_topo::diamond::{all_diamond_metrics, find_diamonds, meshing_miss_probability};
use serde::{Deserialize, Serialize};

/// Configuration of an IP-level survey run.
#[derive(Debug, Clone)]
pub struct IpSurveyConfig {
    /// Number of scenarios (source-destination pairs) to trace.
    pub scenarios: usize,
    /// Worker threads (each drives a whole sweep batch).
    pub workers: usize,
    /// Seed for the tracing side (independent of the generator seed).
    pub trace_seed: u64,
    /// φ used when computing Fig. 2's meshing-miss probabilities.
    pub phi: u32,
    /// How probes cross the transport (batched by default).
    pub dispatch: DispatchMode,
    /// Destinations sharing one simulated network per worker chunk; the
    /// chunk's sessions *stream* into the sweep engine under the
    /// in-flight budget (ignored on the legacy
    /// [`DispatchMode::PerProbe`] path).
    pub sweep_batch: usize,
    /// In-flight probe budget per sweep engine (the streaming-admission
    /// headroom).
    pub sweep_in_flight: usize,
    /// Deadline policy for dispatched probes (see
    /// [`mlpt_core::RetryPolicy`]).
    pub sweep_retry: RetryPolicy,
    /// Stall watchdog: all-silent rounds before a session is finalized
    /// as partial (0 = off).
    pub sweep_stall_rounds: u32,
    /// Shared Doubletree stop set per sweep chunk (`None` = off). The
    /// synthetic Internet draws scenario topologies from disjoint
    /// address blocks, so cross-destination hits are rare; the knob is
    /// here for generators that share near-source infrastructure.
    pub sweep_stop_set: Option<StopSetConfig>,
    /// Engine shards per sweep chunk (`1` = the single engine). With
    /// more, each chunk's lanes and sessions are partitioned by
    /// [`mlpt_core::shard_of`] across a
    /// [`mlpt_core::ShardedSweepEngine`] — scheduling only, the report
    /// is bit-identical for any shard count.
    pub sweep_shards: usize,
}

impl Default for IpSurveyConfig {
    fn default() -> Self {
        Self {
            scenarios: 1000,
            workers: crate::parallel::default_workers(),
            trace_seed: 0xA11A,
            phi: 2,
            dispatch: DispatchMode::Batched,
            sweep_batch: 128,
            sweep_in_flight: 256,
            sweep_retry: RetryPolicy::default(),
            sweep_stall_rounds: 0,
            sweep_stop_set: None,
            sweep_shards: 1,
        }
    }
}

/// Aggregated results of the IP-level survey.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IpSurveyReport {
    /// Scenarios traced.
    pub traces: usize,
    /// Traces that reached their destination (exploitable).
    pub exploitable: usize,
    /// Traces that crossed at least one load balancer (diamond found).
    pub load_balanced: usize,
    /// The diamond populations.
    pub diamonds: SurveyAccumulator,
    /// Fig. 2 (a): P(miss meshing | φ) per *measured* meshed hop pair.
    pub meshing_miss_measured: Vec<f64>,
    /// Fig. 2 (b): same per *distinct* meshed hop pair.
    pub meshing_miss_distinct: Vec<f64>,
}

impl IpSurveyReport {
    /// Fig. 7: width-asymmetry histograms (measured, distinct).
    pub fn asymmetry_histograms(&self) -> (Histogram, Histogram) {
        let measured = Histogram::from_values(
            self.diamonds
                .measured()
                .iter()
                .map(|o| o.metrics.max_width_asymmetry as u64),
        );
        let distinct = Histogram::from_values(
            self.diamonds
                .distinct()
                .map(|m| m.max_width_asymmetry as u64),
        );
        (measured, distinct)
    }

    /// Fig. 8: CDFs of max probability difference over asymmetric,
    /// unmeshed diamonds (measured, distinct).
    pub fn probability_difference_cdfs(&self) -> (EmpiricalCdf, EmpiricalCdf) {
        let filter = |m: &mlpt_topo::DiamondMetrics| {
            m.max_width_asymmetry > 0 && !m.is_meshed() && m.max_probability_difference > 0.0
        };
        let measured = EmpiricalCdf::from_iter(
            self.diamonds
                .measured()
                .iter()
                .filter(|o| filter(&o.metrics))
                .map(|o| o.metrics.max_probability_difference),
        );
        let distinct = EmpiricalCdf::from_iter(
            self.diamonds
                .distinct()
                .filter(|m| filter(m))
                .map(|m| m.max_probability_difference),
        );
        (measured, distinct)
    }

    /// Fig. 9: CDFs of the ratio of meshed hops over meshed diamonds.
    pub fn meshed_ratio_cdfs(&self) -> (EmpiricalCdf, EmpiricalCdf) {
        let measured = EmpiricalCdf::from_iter(
            self.diamonds
                .measured()
                .iter()
                .filter(|o| o.metrics.is_meshed())
                .map(|o| o.metrics.ratio_of_meshed_hops()),
        );
        let distinct = EmpiricalCdf::from_iter(
            self.diamonds
                .distinct()
                .filter(|m| m.is_meshed())
                .map(|m| m.ratio_of_meshed_hops()),
        );
        (measured, distinct)
    }

    /// Fig. 10: max length and max width histograms (measured, distinct).
    pub fn length_width_histograms(&self) -> (Histogram, Histogram, Histogram, Histogram) {
        let ml = Histogram::from_values(
            self.diamonds
                .measured()
                .iter()
                .map(|o| o.metrics.max_length as u64),
        );
        let dl = Histogram::from_values(self.diamonds.distinct().map(|m| m.max_length as u64));
        let mw = Histogram::from_values(
            self.diamonds
                .measured()
                .iter()
                .map(|o| o.metrics.max_width as u64),
        );
        let dw = Histogram::from_values(self.diamonds.distinct().map(|m| m.max_width as u64));
        (ml, dl, mw, dw)
    }

    /// Fig. 11: joint (max length, max width) histograms.
    pub fn joint_length_width(&self) -> (JointHistogram, JointHistogram) {
        let mut measured = JointHistogram::new();
        for o in self.diamonds.measured() {
            measured.record(o.metrics.max_length as u64, o.metrics.max_width as u64);
        }
        let mut distinct = JointHistogram::new();
        for m in self.diamonds.distinct() {
            distinct.record(m.max_length as u64, m.max_width as u64);
        }
        (measured, distinct)
    }

    /// Portion of diamonds with zero width asymmetry (the paper: 89 %).
    pub fn zero_asymmetry_share(&self) -> (f64, f64) {
        let (m, d) = self.asymmetry_histograms();
        (m.portion(0), d.portion(0))
    }
}

/// Runs the survey: MDA-traces every scenario end to end over the packet
/// simulator and aggregates diamond statistics from the *discovered*
/// topologies.
pub fn run_ip_survey(internet: &SyntheticInternet, config: &IpSurveyConfig) -> IpSurveyReport {
    struct PerTrace {
        exploitable: bool,
        load_balanced: bool,
        diamonds: Vec<mlpt_topo::DiamondMetrics>,
        meshing_miss: Vec<f64>,
    }

    let trace_seed_of =
        |id: usize| -> u64 { config.trace_seed ^ (id as u64).wrapping_mul(0x9E37_79B9) };

    /// Post-processing shared by both tracing paths.
    fn analyse(trace: &Trace, phi: u32) -> PerTrace {
        let Some(topology) = trace.to_topology() else {
            return PerTrace {
                exploitable: false,
                load_balanced: false,
                diamonds: Vec::new(),
                meshing_miss: Vec::new(),
            };
        };
        let diamonds = all_diamond_metrics(&topology);
        // Fig. 2 inputs: per meshed hop pair inside each diamond, the
        // probability Eq. (1) assigns to missing the meshing with φ.
        let mut meshing_miss = Vec::new();
        for d in find_diamonds(&topology) {
            for i in d.divergence_hop..d.convergence_hop {
                if mlpt_topo::diamond::hop_pair_meshed(&topology, i) {
                    meshing_miss.push(meshing_miss_probability(&topology, i, phi));
                }
            }
        }
        PerTrace {
            exploitable: true,
            load_balanced: !diamonds.is_empty(),
            diamonds,
            meshing_miss,
        }
    }

    let per_trace: Vec<PerTrace> = if config.dispatch == DispatchMode::PerProbe {
        // Legacy comparison path: one full trace (and one simulator) per
        // scenario, thread-per-scenario concurrency.
        ordered_parallel_map(config.scenarios, config.workers, |id| {
            let scenario = internet.scenario(id);
            let seed = trace_seed_of(id);
            let mut prober = scenario.build_prober(seed, config.dispatch);
            let trace = trace_mda(&mut prober, &TraceConfig::new(seed));
            analyse(&trace, config.phi)
        })
    } else {
        // Sweep path: each chunk of destinations shares one MultiNetwork
        // (one lane per scenario); the chunk's sessions stream into the
        // concurrent engine, which admits them as in-flight tokens free
        // up — no fixed per-batch session table, so dispatch batches
        // stay full until the chunk's destination list is exhausted.
        // Worker threads scale across chunks, i.e. across networks.
        // Per-lane determinism makes the traces bit-identical to the
        // legacy loop, and admission-order independence makes the
        // output independent of scheduling.
        // Cap the chunk size so there are at least `workers` chunks:
        // chunks are the unit of thread parallelism, and chunking is
        // pure scheduling (the report is identical however the sweep is
        // sliced — see the regression test), so shrinking chunks to
        // keep every worker busy is always safe.
        let chunk_size = config
            .sweep_batch
            .max(1)
            .min(config.scenarios.div_ceil(config.workers.max(1)).max(1));
        let chunks = config.scenarios.div_ceil(chunk_size);
        let nested: Vec<Vec<PerTrace>> = ordered_parallel_map(chunks, config.workers, |b| {
            let ids: Vec<usize> =
                (b * chunk_size..((b + 1) * chunk_size).min(config.scenarios)).collect();
            // One generator pass per scenario: the lane, destination and
            // source all come from the same materialisation.
            let scenarios: Vec<_> = ids.iter().map(|&id| internet.scenario(id)).collect();
            let lanes: Vec<mlpt_sim::SimNetwork> = scenarios
                .iter()
                .map(|s| s.build_network(trace_seed_of(s.id)))
                .collect();
            let net = MultiNetwork::new(lanes)
                .expect("synthetic-Internet destinations are scenario-unique");
            // The engine probes every lane from one vantage point; the
            // generator pins a single source today, so assert that holds
            // rather than silently mis-sourcing a chunk if it changes.
            let source = scenarios[0].source;
            assert!(
                scenarios.iter().all(|s| s.source == source),
                "sweep chunks assume a single vantage point"
            );
            let sweep_config = SweepConfig {
                max_in_flight: config.sweep_in_flight.max(1),
                admission: Admission::Streaming,
                retry: config.sweep_retry,
                stall_rounds: config.sweep_stall_rounds,
                stop_set: config.sweep_stop_set,
                ..SweepConfig::default()
            };
            let sessions = scenarios.iter().map(|scenario| {
                Box::new(MdaSession::new(
                    scenario.topology.destination(),
                    TraceConfig::new(trace_seed_of(scenario.id)),
                )) as Box<dyn TraceSession>
            });
            // Analyse each trace as it completes; indices pin results to
            // stream order, independent of completion order.
            let mut per: Vec<Option<PerTrace>> = (0..scenarios.len()).map(|_| None).collect();
            let shards = config.sweep_shards.max(1);
            if shards > 1 {
                // Sharded engine: the chunk's lanes split by the same
                // destination hash that partitions its sessions.
                let mut engine =
                    ShardedSweepEngine::new(net.split_by(shards, |d| shard_of(d, shards)), source)
                        .with_config(sweep_config);
                engine.run_stream_with(sessions, |index, trace| {
                    per[index] = Some(analyse(&trace, config.phi));
                });
            } else {
                let mut engine = SweepEngine::new(net, source).with_config(sweep_config);
                engine.run_stream_with(sessions, |index, trace| {
                    per[index] = Some(analyse(&trace, config.phi));
                });
            }
            per.into_iter()
                .map(|p| p.expect("every streamed session reports a trace"))
                .collect()
        });
        nested.into_iter().flatten().collect()
    };

    let mut report = IpSurveyReport {
        traces: config.scenarios,
        exploitable: 0,
        load_balanced: 0,
        diamonds: SurveyAccumulator::new(),
        meshing_miss_measured: Vec::new(),
        meshing_miss_distinct: Vec::new(),
    };
    let mut distinct_seen: std::collections::BTreeSet<mlpt_topo::DiamondKey> =
        std::collections::BTreeSet::new();
    for (id, t) in per_trace.into_iter().enumerate() {
        report.exploitable += usize::from(t.exploitable);
        report.load_balanced += usize::from(t.load_balanced);
        for m in t.diamonds {
            let fresh = distinct_seen.insert(m.key);
            report.diamonds.record(id, m);
            // The distinct meshing-miss population takes each diamond's
            // pairs once.
            if fresh {
                // Recorded below via per-pair values of this trace only.
            }
        }
        report.meshing_miss_measured.extend(t.meshing_miss.iter());
        if !t.meshing_miss.is_empty() {
            // Distinct view: approximate by taking pairs from first
            // encounters only; a pair's value is identical across repeat
            // encounters of the same structure, so dedup at diamond level
            // suffices for the population shape.
            report.meshing_miss_distinct.extend(t.meshing_miss);
        }
    }
    // Dedup the distinct meshing population.
    report
        .meshing_miss_distinct
        .sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    report.meshing_miss_distinct.dedup();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::InternetConfig;

    fn small_survey() -> IpSurveyReport {
        let internet = SyntheticInternet::new(InternetConfig::with_seed(5));
        let config = IpSurveyConfig {
            scenarios: 120,
            workers: 4,
            trace_seed: 77,
            phi: 2,
            dispatch: DispatchMode::Batched,
            sweep_batch: 16,
            sweep_in_flight: 64,
            ..IpSurveyConfig::default()
        };
        run_ip_survey(&internet, &config)
    }

    /// The sweep engine is a pure scheduling change: the survey's numbers
    /// are identical to the legacy thread-per-scenario loop.
    #[test]
    fn sweep_and_legacy_paths_agree() {
        let internet = SyntheticInternet::new(InternetConfig::with_seed(11));
        let base = IpSurveyConfig {
            scenarios: 40,
            workers: 2,
            trace_seed: 5,
            phi: 2,
            dispatch: DispatchMode::Batched,
            sweep_batch: 7,      // deliberately uneven chunks
            sweep_in_flight: 24, // small enough that admission actually streams
            ..IpSurveyConfig::default()
        };
        let sweep = run_ip_survey(&internet, &base);
        let legacy = run_ip_survey(
            &internet,
            &IpSurveyConfig {
                dispatch: DispatchMode::PerProbe,
                ..base
            },
        );
        assert_eq!(sweep.exploitable, legacy.exploitable);
        assert_eq!(sweep.load_balanced, legacy.load_balanced);
        assert_eq!(
            sweep.diamonds.measured_count(),
            legacy.diamonds.measured_count()
        );
        assert_eq!(sweep.meshing_miss_measured, legacy.meshing_miss_measured);
    }

    /// Chunking, worker counts and the streaming-admission budget are
    /// pure scheduling: the report is identical however the sweep is
    /// sliced.
    #[test]
    fn report_independent_of_chunking_and_budget() {
        let internet = SyntheticInternet::new(InternetConfig::with_seed(13));
        let run = |sweep_batch: usize, sweep_in_flight: usize, workers: usize| {
            run_ip_survey(
                &internet,
                &IpSurveyConfig {
                    scenarios: 30,
                    workers,
                    trace_seed: 9,
                    phi: 2,
                    dispatch: DispatchMode::Batched,
                    sweep_batch,
                    sweep_in_flight,
                    ..IpSurveyConfig::default()
                },
            )
        };
        let a = run(30, 8, 1); // one chunk, tight budget: heavy streaming
        let b = run(5, 512, 4); // many chunks, budget admits whole chunks
        assert_eq!(a.exploitable, b.exploitable);
        assert_eq!(a.load_balanced, b.load_balanced);
        assert_eq!(a.diamonds.measured_count(), b.diamonds.measured_count());
        assert_eq!(a.meshing_miss_measured, b.meshing_miss_measured);
        assert_eq!(a.meshing_miss_distinct, b.meshing_miss_distinct);
    }

    /// Engine sharding is pure scheduling too: the report is identical
    /// for any shard count, with and without the shared stop set.
    #[test]
    fn report_independent_of_shard_count() {
        let internet = SyntheticInternet::new(InternetConfig::with_seed(21));
        let run = |sweep_shards: usize, stop: bool| {
            run_ip_survey(
                &internet,
                &IpSurveyConfig {
                    scenarios: 24,
                    workers: 2,
                    trace_seed: 3,
                    phi: 2,
                    dispatch: DispatchMode::Batched,
                    sweep_batch: 12,
                    sweep_in_flight: 32,
                    sweep_stop_set: stop.then(StopSetConfig::default),
                    sweep_shards,
                    ..IpSurveyConfig::default()
                },
            )
        };
        for stop in [false, true] {
            let one = run(1, stop);
            for shards in [2usize, 3] {
                let many = run(shards, stop);
                assert_eq!(one.exploitable, many.exploitable, "stop={stop}");
                assert_eq!(one.load_balanced, many.load_balanced);
                assert_eq!(
                    one.diamonds.measured_count(),
                    many.diamonds.measured_count()
                );
                assert_eq!(one.meshing_miss_measured, many.meshing_miss_measured);
                assert_eq!(one.meshing_miss_distinct, many.meshing_miss_distinct);
            }
        }
    }

    #[test]
    fn survey_reports_population() {
        let report = small_survey();
        assert_eq!(report.traces, 120);
        assert!(report.exploitable >= 115, "sim traces should all complete");
        assert!(report.load_balanced > 30);
        assert!(report.diamonds.measured_count() >= report.load_balanced);
        assert!(report.diamonds.distinct_count() > 0);
    }

    #[test]
    fn asymmetry_mostly_zero() {
        let report = small_survey();
        let (m_share, d_share) = report.zero_asymmetry_share();
        assert!(m_share > 0.7, "measured zero-asymmetry share {m_share}");
        assert!(d_share > 0.7, "distinct zero-asymmetry share {d_share}");
    }

    #[test]
    fn length_two_dominates() {
        let report = small_survey();
        let (ml, _, mw, _) = report.length_width_histograms();
        let share = ml.portion(2);
        assert!(share > 0.3, "length-2 share {share}");
        assert!(mw.max_value().unwrap_or(0) >= 10);
    }

    #[test]
    fn meshing_miss_probabilities_bounded() {
        let report = small_survey();
        for &p in &report.meshing_miss_measured {
            assert!((0.0..=1.0).contains(&p));
        }
        // With φ = 2 the probability is at most 1/2 per contributing
        // vertex, so any meshed pair with one fan-out vertex gives ≤ 0.5.
        if !report.meshing_miss_measured.is_empty() {
            let below_half = report
                .meshing_miss_measured
                .iter()
                .filter(|&&p| p <= 0.5)
                .count() as f64
                / report.meshing_miss_measured.len() as f64;
            assert!(below_half > 0.5);
        }
    }
}
