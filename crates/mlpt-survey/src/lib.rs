//! The paper's surveys (Sec. 5) over a synthetic Internet.
//!
//! The original surveys trace from 35 PlanetLab nodes towards 350 000
//! Internet destinations. Without Internet access, this crate substitutes
//! a **synthetic Internet**: a deterministic generator of source →
//! destination multipath scenarios whose *diamond population* is
//! calibrated to the marginal statistics the paper publishes (share of
//! load-balanced routes, length/width distributions with the 48/56-wide
//! shared core structures, width asymmetry, meshing prevalence, router
//! size distribution). The tools under test — MDA, MDA-Lite, single-flow
//! Paris traceroute, and the multilevel tracer — then run *end to end over
//! the packet-level simulator* against these scenarios, and the survey
//! pipeline re-measures every figure of Sec. 5 plus the evaluation data of
//! Sec. 2.4.2 (Fig. 4 / Table 1) and Sec. 4.2 (Fig. 5 / Table 2).
//!
//! * [`generator`] — the synthetic Internet.
//! * [`accounting`] — measured vs distinct diamond bookkeeping.
//! * [`ip_survey`] — the IP-level survey (Figs. 2, 7–11).
//! * [`evaluation`] — the five-way algorithm comparison (Fig. 4, Table 1).
//! * [`router_survey`] — the router-level survey (Figs. 5, 12–14,
//!   Tables 2–3), streamed through the sweep engine as sessionized
//!   multilevel traces.
//! * [`parallel`] — a small deterministic fork-join helper used to fan
//!   sweep chunks (and the legacy per-scenario A/B paths) over threads.

pub mod accounting;
pub mod evaluation;
pub mod generator;
pub mod ip_survey;
pub mod parallel;
pub mod router_survey;

pub use accounting::{DiamondObservation, SurveyAccumulator};
pub use evaluation::{evaluate_scenarios, EvaluationConfig, EvaluationOutcome, TraceRatios};
pub use generator::{InternetConfig, SyntheticInternet, TraceScenario};
pub use ip_survey::{run_ip_survey, IpSurveyConfig, IpSurveyReport};
pub use router_survey::{
    disjoint_scenario_groups, run_router_survey, scenario_cost_hint, ResolutionCase,
    RouterSurveyConfig, RouterSurveyReport,
};
