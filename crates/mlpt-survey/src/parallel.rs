//! Deterministic fork-join over scenario indices.
//!
//! Survey runs process thousands of independent scenarios; this helper
//! fans indices out over a fixed number of worker threads and returns
//! results *in index order*, so parallel runs are bit-identical to
//! sequential ones.
//!
//! Its role has narrowed as the surveys moved onto the concurrent sweep
//! engine: the IP-level survey, the evaluation and (since the alias
//! phase was sessionized) the router-level survey all use it only to
//! fan *chunks* out across workers — each chunk drives one
//! `SweepEngine` over one shared `MultiNetwork` — plus the legacy
//! thread-per-scenario A/B paths behind `DispatchMode::PerProbe`. No
//! probing phase depends on thread-per-scenario concurrency anymore;
//! within a chunk, concurrency is the engine's streaming admission, not
//! threads.
//!
//! The implementation is safe Rust on `std::thread::scope`: the result
//! vector is split into disjoint mutable chunks up front, and workers
//! claim whole chunks from a shared worklist **front to back** (a
//! `VecDeque` drained from the head). Claiming from the head matters:
//! chunks were previously popped off the back of a `Vec`, which handed
//! work out back-to-front — the head of the index range was processed
//! *last*, so early results (the ones a consumer typically streams or a
//! progress meter reports first) materialised at the very end of the
//! run. Each slot is owned by exactly one chunk, so exclusive access is
//! enforced by the borrow checker instead of a raw-pointer argument.
//! Chunks are deliberately finer-grained than the worker count so
//! stragglers (expensive scenarios cluster) still load-balance.

use std::collections::VecDeque;
use std::sync::Mutex;

/// One claimable unit of work: the chunk's base index plus its slots.
type Chunk<'a, T> = (usize, &'a mut [Option<T>]);

/// Maps `f` over `0..count` using `workers` threads, preserving order.
///
/// `f` must be `Sync` (it is called concurrently from several threads) and
/// is given the scenario index.
pub fn ordered_parallel_map<T, F>(count: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(workers >= 1);
    if count == 0 {
        return Vec::new();
    }
    let workers = workers.min(count);
    if workers == 1 {
        return (0..count).map(f).collect();
    }
    chunked_parallel_map(count, workers, f)
}

/// The chunked worklist implementation behind [`ordered_parallel_map`]
/// (separate so the claim discipline is testable even with one worker).
fn chunked_parallel_map<T, F>(count: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();

    // Aim for several chunks per worker so dynamic claiming evens out
    // skewed per-index costs without per-index synchronization.
    let chunk_size = count.div_ceil(workers * 8).max(1);
    let worklist: Mutex<VecDeque<Chunk<'_, T>>> = Mutex::new(
        slots
            .chunks_mut(chunk_size)
            .enumerate()
            .map(|(c, chunk)| (c * chunk_size, chunk))
            .collect(),
    );

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // Front-to-back: the head of the index range is handed
                // out (and therefore finished) first.
                let claimed = worklist.lock().expect("worklist poisoned").pop_front();
                let Some((base, chunk)) = claimed else {
                    break;
                };
                for (offset, slot) in chunk.iter_mut().enumerate() {
                    *slot = Some(f(base + offset));
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("every index processed"))
        .collect()
}

/// A sensible worker count for survey workloads.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = ordered_parallel_map(100, 8, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn matches_sequential() {
        let seq = ordered_parallel_map(50, 1, |i| i * i);
        let par = ordered_parallel_map(50, 7, |i| i * i);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = ordered_parallel_map(0, 4, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(ordered_parallel_map(1, 8, |i| i + 1), vec![1]);
    }

    #[test]
    fn heavy_closure_state() {
        // Closures may capture shared read-only state.
        let table: Vec<u64> = (0..1000).map(|i| i as u64 * 7).collect();
        let out = ordered_parallel_map(1000, 6, |i| table[i] + 1);
        assert_eq!(out[999], 999 * 7 + 1);
    }

    #[test]
    fn more_workers_than_items() {
        assert_eq!(ordered_parallel_map(3, 64, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn uneven_chunk_tail_covered() {
        // Exercise chunk sizes that don't divide the count evenly.
        for count in [1usize, 7, 17, 97, 129] {
            let out = ordered_parallel_map(count, 5, |i| i + 10);
            assert_eq!(out, (0..count).map(|i| i + 10).collect::<Vec<_>>());
        }
    }

    /// Regression: a single worker draining the chunked worklist must
    /// claim indices front to back. With the old `Vec::pop` discipline
    /// the chunks were handed out back to front, so index 0 was
    /// processed in the *last* chunk.
    #[test]
    fn single_worker_claims_front_to_back() {
        let order: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        // 97 indices over one worker: many chunks, one claimant, so the
        // observed call order *is* the claim order.
        let out = chunked_parallel_map(97, 1, |i| {
            order.lock().expect("order poisoned").push(i);
            i
        });
        assert_eq!(out, (0..97).collect::<Vec<_>>());
        let order = order.into_inner().expect("order poisoned");
        assert_eq!(
            order,
            (0..97).collect::<Vec<_>>(),
            "chunks must be claimed head first"
        );
    }
}
