//! Deterministic fork-join over scenario indices.
//!
//! Survey runs process thousands of independent scenarios; this helper
//! fans indices out over a fixed number of worker threads (crossbeam
//! scoped threads) and returns results *in index order*, so parallel runs
//! are bit-identical to sequential ones.

/// Maps `f` over `0..count` using `workers` threads, preserving order.
///
/// `f` must be `Sync` (it is called concurrently from several threads) and
/// is given the scenario index.
pub fn ordered_parallel_map<T, F>(count: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(workers >= 1);
    if count == 0 {
        return Vec::new();
    }
    let workers = workers.min(count);
    if workers == 1 {
        return (0..count).map(f).collect();
    }

    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slot_ptr = SlotVec(slots.as_mut_ptr());

    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let value = f(i);
                // Safety: each index i is claimed exactly once via the
                // atomic counter, so no two threads write the same slot,
                // and the vector outlives the scope.
                unsafe {
                    slot_ptr.write(i, value);
                }
            });
        }
    })
    .expect("worker thread panicked");

    slots
        .into_iter()
        .map(|s| s.expect("every index processed"))
        .collect()
}

/// Shareable raw pointer to the slot vector (safe by the exclusive-index
/// argument above).
struct SlotVec<T>(*mut Option<T>);
unsafe impl<T: Send> Sync for SlotVec<T> {}
unsafe impl<T: Send> Send for SlotVec<T> {}

impl<T> SlotVec<T> {
    unsafe fn write(&self, index: usize, value: T) {
        unsafe { *self.0.add(index) = Some(value) };
    }
}

/// A sensible worker count for survey workloads.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = ordered_parallel_map(100, 8, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn matches_sequential() {
        let seq = ordered_parallel_map(50, 1, |i| i * i);
        let par = ordered_parallel_map(50, 7, |i| i * i);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = ordered_parallel_map(0, 4, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(ordered_parallel_map(1, 8, |i| i + 1), vec![1]);
    }

    #[test]
    fn heavy_closure_state() {
        // Closures may capture shared read-only state.
        let table: Vec<u64> = (0..1000).map(|i| i as u64 * 7).collect();
        let out = ordered_parallel_map(1000, 6, |i| table[i] + 1);
        assert_eq!(out[999], 999 * 7 + 1);
    }
}
