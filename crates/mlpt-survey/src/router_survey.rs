//! The router-level survey (Sec. 5.2) and the alias-resolution
//! evaluation (Sec. 4.2).
//!
//! Re-traces the load-balanced scenarios with Multilevel MDA-Lite Paris
//! Traceroute, yielding per trace an IP-level and a router-level
//! topology, and aggregates:
//!
//! * Fig. 5 — precision/recall of each alias round against Round 10 and
//!   the cumulative probing cost;
//! * Table 2 — indirect (MMLPT) vs direct (MIDAR-style) verdicts over
//!   the union of identified router sets;
//! * Fig. 12 — router sizes, per-trace ("distinct") and after transitive
//!   closure across traces ("aggregated");
//! * Table 3 — what alias resolution does to each unique diamond;
//! * Figs. 13 & 14 — max-width distributions before/after resolution.

use crate::generator::SyntheticInternet;
use crate::parallel::ordered_parallel_map;
use mlpt_alias::evidence::EvidenceBase;
use mlpt_alias::multilevel::{trace_multilevel, MultilevelConfig};
use mlpt_alias::resolver::{judge_set, SeriesSource, SetVerdict};
use mlpt_alias::rounds::{run_rounds, ProbeMethod, RoundsConfig};
use mlpt_core::prelude::*;
use mlpt_core::prober::DispatchMode;
use mlpt_stats::{Histogram, JointHistogram};
use mlpt_topo::diamond::{all_diamond_metrics, find_diamonds};
use mlpt_topo::{DiamondKey, MultipathTopology, RouterMap};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// What happened to an IP-level diamond at the router level (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ResolutionCase {
    /// No aliases inside: the diamond is unchanged.
    NoChange,
    /// It narrowed (and/or shortened) into a single smaller diamond.
    SingleSmaller,
    /// It split into a series of smaller diamonds.
    MultipleSmaller,
    /// It dissolved into a straight path of routers.
    OnePath,
}

impl ResolutionCase {
    /// Label as in Table 3.
    pub fn label(self) -> &'static str {
        match self {
            ResolutionCase::NoChange => "No change",
            ResolutionCase::SingleSmaller => "Single smaller diamond",
            ResolutionCase::MultipleSmaller => "Multiple smaller diamonds",
            ResolutionCase::OnePath => "One path (no diamond)",
        }
    }
}

/// Classifies one diamond's fate; also returns the span's max interior
/// width after collapsing (the Fig. 14 "after" coordinate).
pub fn classify_resolution(
    ip: &MultipathTopology,
    router: &MultipathTopology,
    diamond: &mlpt_topo::Diamond,
) -> (ResolutionCase, usize) {
    let d = diamond.divergence_hop;
    let c = diamond.convergence_hop;
    let before: Vec<usize> = (d + 1..c).map(|h| ip.hop(h).len()).collect();
    let after: Vec<usize> = (d + 1..c).map(|h| router.hop(h).len()).collect();
    let after_max = after.iter().copied().max().unwrap_or(1);

    if before == after {
        return (ResolutionCase::NoChange, after_max);
    }
    // Count the segments of consecutive multi-vertex hops remaining.
    let mut segments = 0usize;
    let mut in_segment = false;
    for &w in &after {
        if w >= 2 {
            if !in_segment {
                segments += 1;
                in_segment = true;
            }
        } else {
            in_segment = false;
        }
    }
    let case = match segments {
        0 => ResolutionCase::OnePath,
        1 => ResolutionCase::SingleSmaller,
        _ => ResolutionCase::MultipleSmaller,
    };
    (case, after_max)
}

/// One Fig. 5 data point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundMetric {
    /// Round number.
    pub round: u32,
    /// Pairwise precision against Round 10.
    pub precision: f64,
    /// Pairwise recall against Round 10.
    pub recall: f64,
    /// Cumulative alias probes ÷ trace probes (aggregated over traces).
    pub probe_ratio: f64,
}

/// Table 2: counts of (indirect verdict, direct verdict) over the union
/// of router sets identified by either method.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerdictMatrix {
    counts: BTreeMap<(String, String), u64>,
    /// Total sets considered.
    pub total: u64,
}

impl VerdictMatrix {
    fn key(v: SetVerdict) -> String {
        match v {
            SetVerdict::Accept => "accept".into(),
            SetVerdict::Reject => "reject".into(),
            SetVerdict::Unable => "unable".into(),
        }
    }

    /// Records one set's verdict pair.
    pub fn record(&mut self, indirect: SetVerdict, direct: SetVerdict) {
        *self
            .counts
            .entry((Self::key(indirect), Self::key(direct)))
            .or_insert(0) += 1;
        self.total += 1;
    }

    /// Portion of sets with this verdict pair.
    pub fn portion(&self, indirect: SetVerdict, direct: SetVerdict) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let c = self
            .counts
            .get(&(Self::key(indirect), Self::key(direct)))
            .copied()
            .unwrap_or(0);
        c as f64 / self.total as f64
    }

    /// Merges another matrix.
    pub fn merge(&mut self, other: &VerdictMatrix) {
        for (k, v) in &other.counts {
            *self.counts.entry(k.clone()).or_insert(0) += v;
        }
        self.total += other.total;
    }
}

/// Configuration of the router-level survey.
#[derive(Debug, Clone)]
pub struct RouterSurveyConfig {
    /// Scenarios to re-trace.
    pub scenarios: usize,
    /// Worker threads.
    pub workers: usize,
    /// Seed for the tracing side.
    pub trace_seed: u64,
    /// How probes cross the transport (batched by default).
    pub dispatch: DispatchMode,
    /// Alias-resolution protocol (rounds, replies, MBT parameters).
    pub rounds: RoundsConfig,
    /// Whether to run the direct-probing comparator for Table 2
    /// (roughly doubles alias probing cost).
    pub with_direct_comparison: bool,
}

impl Default for RouterSurveyConfig {
    fn default() -> Self {
        Self {
            dispatch: DispatchMode::Batched,
            scenarios: 300,
            workers: crate::parallel::default_workers(),
            trace_seed: 0x5E52,
            rounds: RoundsConfig::default(),
            with_direct_comparison: true,
        }
    }
}

/// Aggregated router-level survey results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RouterSurveyReport {
    /// Scenarios traced.
    pub traces: usize,
    /// Traces with at least one multi-interface alias set found.
    pub traces_with_aliases: usize,
    /// Sizes of distinct routers — alias sets deduplicated by exact
    /// membership across traces (Fig. 12 a).
    pub router_sizes_distinct: Vec<usize>,
    /// Router sizes after cross-trace transitive closure (Fig. 12 b).
    pub router_sizes_aggregated: Vec<usize>,
    /// Fig. 5 series.
    pub round_metrics: Vec<RoundMetric>,
    /// Table 2 matrix (empty when the comparator is disabled).
    pub verdicts: VerdictMatrix,
    /// Table 3 portions over unique diamonds.
    pub resolution_counts: BTreeMap<ResolutionCase, u64>,
    /// Fig. 13 (a): unique-diamond max widths at the IP level.
    pub width_before: Histogram,
    /// Fig. 13 (b): max widths of router-level diamonds.
    pub width_after: Histogram,
    /// Fig. 14: joint (before, after) widths for diamonds that changed.
    pub width_change: JointHistogram,
}

impl RouterSurveyReport {
    /// Table 3 portion for one case.
    pub fn resolution_portion(&self, case: ResolutionCase) -> f64 {
        let total: u64 = self.resolution_counts.values().sum();
        if total == 0 {
            return 0.0;
        }
        self.resolution_counts.get(&case).copied().unwrap_or(0) as f64 / total as f64
    }

    /// Portion of unique diamonds where *some* resolution happened
    /// (the paper: 41.9 %).
    pub fn some_resolution_portion(&self) -> f64 {
        1.0 - self.resolution_portion(ResolutionCase::NoChange)
    }
}

/// Per-scenario partial result.
struct PerScenario {
    pair_sets: Vec<BTreeSet<(Ipv4Addr, Ipv4Addr)>>, // per round
    probes_per_round: Vec<u64>,
    trace_probes: u64,
    router_map: RouterMap,
    verdicts: VerdictMatrix,
    diamonds: Vec<(DiamondKey, ResolutionCase, usize, usize)>, // key, case, before, after
    router_diamond_widths: Vec<usize>,
}

/// Runs the router-level survey.
pub fn run_router_survey(
    internet: &SyntheticInternet,
    config: &RouterSurveyConfig,
) -> RouterSurveyReport {
    let num_rounds = config.rounds.rounds as usize;
    let rows: Vec<Option<PerScenario>> =
        ordered_parallel_map(config.scenarios, config.workers, |id| {
            let scenario = internet.scenario(id);
            if !scenario.has_diamond {
                return None;
            }
            let seed = config.trace_seed ^ (id as u64).wrapping_mul(0xC0FF_EE11);
            let mut prober = scenario.build_prober(seed, config.dispatch);
            let ml_config = MultilevelConfig {
                trace: TraceConfig::new(seed),
                rounds: config.rounds.clone(),
            };
            let result = trace_multilevel(&mut prober, &ml_config);

            // Fig. 5 inputs: pair sets and probes per round across hops.
            let mut pair_sets: Vec<BTreeSet<(Ipv4Addr, Ipv4Addr)>> =
                vec![BTreeSet::new(); num_rounds + 1];
            let mut probes_per_round = vec![0u64; num_rounds + 1];
            for reports in result.hop_reports.values() {
                for (r, report) in reports.iter().enumerate() {
                    pair_sets[r].extend(report.partition.pairs());
                    probes_per_round[r] += report.cumulative_probes;
                }
            }

            // Table 2: judge the union of router sets under both methods.
            let mut verdicts = VerdictMatrix::default();
            if config.with_direct_comparison {
                let trace = &result.trace;
                for ttl in 1..=trace.discovery.max_observed_ttl() {
                    let candidates: BTreeSet<Ipv4Addr> = trace
                        .discovery
                        .vertices_at(ttl)
                        .iter()
                        .copied()
                        .filter(|&a| a != trace.destination && !mlpt_topo::is_star(a))
                        .collect();
                    if candidates.len() < 2 {
                        continue;
                    }
                    // Evidence so far (trace + indirect rounds) …
                    let mut base = EvidenceBase::from_log(prober.log(), &candidates);
                    // … plus a direct-probing campaign of the same size.
                    let direct_cfg = RoundsConfig {
                        method: ProbeMethod::Direct,
                        ..config.rounds.clone()
                    };
                    let direct_reports =
                        run_rounds(&mut prober, trace, &candidates, &mut base, &direct_cfg);

                    let indirect_partition = result.final_partition(ttl);
                    let direct_partition = direct_reports.last().map(|r| &r.partition);
                    let mut sets: BTreeSet<BTreeSet<Ipv4Addr>> = BTreeSet::new();
                    if let Some(p) = indirect_partition {
                        sets.extend(p.routers().cloned());
                    }
                    if let Some(p) = direct_partition {
                        sets.extend(p.routers().cloned());
                    }
                    for set in sets {
                        let vi = judge_set(&base, &set, SeriesSource::Indirect, &config.rounds.mbt);
                        let vd = judge_set(&base, &set, SeriesSource::Direct, &config.rounds.mbt);
                        verdicts.record(vi, vd);
                    }
                }
            }

            // Table 3 / Figs. 13-14 inputs.
            let mut diamonds = Vec::new();
            let mut router_diamond_widths = Vec::new();
            if let (Some(ip), Some(router)) = (&result.ip_topology, &result.router_topology) {
                for d in find_diamonds(ip) {
                    let m = mlpt_topo::diamond::diamond_metrics(ip, &d);
                    let (case, after_width) = classify_resolution(ip, router, &d);
                    diamonds.push((m.key, case, m.max_width, after_width));
                }
                for m in all_diamond_metrics(router) {
                    router_diamond_widths.push(m.max_width);
                }
            }

            Some(PerScenario {
                pair_sets,
                probes_per_round,
                trace_probes: result.trace.probes_sent,
                router_map: result.router_map,
                verdicts,
                diamonds,
                router_diamond_widths,
            })
        });

    // Aggregate.
    let mut global_pairs: Vec<BTreeSet<(Ipv4Addr, Ipv4Addr)>> =
        vec![BTreeSet::new(); num_rounds + 1];
    let mut probes_per_round = vec![0u64; num_rounds + 1];
    let mut trace_probes_total = 0u64;
    let mut distinct_router_sets: BTreeSet<BTreeSet<Ipv4Addr>> = BTreeSet::new();
    let mut maps = Vec::new();
    let mut verdicts = VerdictMatrix::default();
    let mut unique_diamonds: BTreeMap<DiamondKey, (ResolutionCase, usize, usize)> = BTreeMap::new();
    let mut width_after = Histogram::new();
    let mut traces_with_aliases = 0usize;
    let mut traces = 0usize;

    for row in rows.into_iter().flatten() {
        traces += 1;
        for (r, pairs) in row.pair_sets.iter().enumerate() {
            global_pairs[r].extend(pairs.iter().copied());
        }
        for (r, p) in row.probes_per_round.iter().enumerate() {
            probes_per_round[r] += p;
        }
        trace_probes_total += row.trace_probes;
        let mut any_alias = false;
        for set in row.router_map.alias_sets().into_values() {
            if set.len() >= 2 {
                any_alias = true;
                distinct_router_sets.insert(set);
            }
        }
        if any_alias {
            traces_with_aliases += 1;
        }
        maps.push(row.router_map);
        verdicts.merge(&row.verdicts);
        for (key, case, before, after) in row.diamonds {
            unique_diamonds.entry(key).or_insert((case, before, after));
        }
        for w in row.router_diamond_widths {
            width_after.record(w as u64);
        }
    }

    // Fig. 5 series.
    let reference = global_pairs.last().cloned().unwrap_or_default();
    let mut round_metrics = Vec::new();
    for (r, pairs) in global_pairs.iter().enumerate() {
        let tp = pairs.intersection(&reference).count() as f64;
        let precision = if pairs.is_empty() {
            1.0
        } else {
            tp / pairs.len() as f64
        };
        let recall = if reference.is_empty() {
            1.0
        } else {
            tp / reference.len() as f64
        };
        let probe_ratio = if trace_probes_total == 0 {
            0.0
        } else {
            probes_per_round[r] as f64 / trace_probes_total as f64
        };
        round_metrics.push(RoundMetric {
            round: r as u32,
            precision,
            recall,
            probe_ratio,
        });
    }

    // Fig. 12 (b): aggregated sizes.
    let aggregated = RouterMap::aggregate(&maps);
    let router_sizes_aggregated: Vec<usize> = aggregated
        .router_sizes()
        .into_iter()
        .filter(|&s| s >= 2)
        .collect();

    // Table 3 / Fig. 13 (a) / Fig. 14.
    let mut resolution_counts: BTreeMap<ResolutionCase, u64> = BTreeMap::new();
    let mut width_before = Histogram::new();
    let mut width_change = JointHistogram::new();
    for (case, before, after) in unique_diamonds.values() {
        *resolution_counts.entry(*case).or_insert(0) += 1;
        width_before.record(*before as u64);
        if *case != ResolutionCase::NoChange {
            width_change.record(*before as u64, *after as u64);
        }
    }

    let router_sizes_distinct: Vec<usize> =
        distinct_router_sets.iter().map(BTreeSet::len).collect();

    RouterSurveyReport {
        traces,
        traces_with_aliases,
        router_sizes_distinct,
        router_sizes_aggregated,
        round_metrics,
        verdicts,
        resolution_counts,
        width_before,
        width_after,
        width_change,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::InternetConfig;
    use mlpt_topo::TopologyBuilder;

    #[test]
    fn classify_resolution_cases() {
        use mlpt_topo::graph::addr;
        // IP: 1-2-2-1 (length-3 diamond).
        let mut b = TopologyBuilder::default();
        b.add_hop([addr(0, 0)]);
        b.add_hop([addr(1, 0), addr(1, 1)]);
        b.add_hop([addr(2, 0), addr(2, 1)]);
        b.add_hop([addr(3, 0)]);
        for i in 0..3 {
            b.connect_unmeshed(i);
        }
        let ip = b.build().unwrap();
        let diamond = find_diamonds(&ip)[0];

        // No change: collapse with empty router map.
        let same = mlpt_topo::router::collapse(&ip, &RouterMap::new());
        assert_eq!(
            classify_resolution(&ip, &same, &diamond).0,
            ResolutionCase::NoChange
        );

        // Single smaller: collapse second hop only.
        let routers = RouterMap::from_alias_sets([vec![addr(2, 0), addr(2, 1)]]);
        let collapsed = mlpt_topo::router::collapse(&ip, &routers);
        assert_eq!(
            classify_resolution(&ip, &collapsed, &diamond).0,
            ResolutionCase::SingleSmaller
        );

        // One path: collapse both hops.
        let routers = RouterMap::from_alias_sets([
            vec![addr(1, 0), addr(1, 1)],
            vec![addr(2, 0), addr(2, 1)],
        ]);
        let collapsed = mlpt_topo::router::collapse(&ip, &routers);
        assert_eq!(
            classify_resolution(&ip, &collapsed, &diamond).0,
            ResolutionCase::OnePath
        );
    }

    #[test]
    fn classify_multiple_smaller() {
        use mlpt_topo::graph::addr;
        // IP: 1-2-2-2-1 (length-4); collapsing the middle hop splits it.
        let mut b = TopologyBuilder::default();
        b.add_hop([addr(0, 0)]);
        b.add_hop([addr(1, 0), addr(1, 1)]);
        b.add_hop([addr(2, 0), addr(2, 1)]);
        b.add_hop([addr(3, 0), addr(3, 1)]);
        b.add_hop([addr(4, 0)]);
        for i in 0..4 {
            b.connect_unmeshed(i);
        }
        let ip = b.build().unwrap();
        let diamond = find_diamonds(&ip)[0];
        let routers = RouterMap::from_alias_sets([vec![addr(2, 0), addr(2, 1)]]);
        let collapsed = mlpt_topo::router::collapse(&ip, &routers);
        assert_eq!(
            classify_resolution(&ip, &collapsed, &diamond).0,
            ResolutionCase::MultipleSmaller
        );
    }

    /// Small end-to-end survey exercising the whole pipeline.
    #[test]
    fn small_router_survey() {
        let internet = SyntheticInternet::new(InternetConfig::with_seed(3));
        let config = RouterSurveyConfig {
            scenarios: 30,
            workers: 4,
            trace_seed: 99,
            rounds: RoundsConfig {
                rounds: 4,
                replies_per_round: 12,
                ..RoundsConfig::default()
            },
            with_direct_comparison: true,
            ..RouterSurveyConfig::default()
        };
        let report = run_router_survey(&internet, &config);
        assert!(report.traces > 5, "some scenarios must carry diamonds");
        assert_eq!(report.round_metrics.len(), 5);

        // Final round defines the reference: precision = recall = 1.
        let last = report.round_metrics.last().unwrap();
        assert_eq!(last.precision, 1.0);
        assert_eq!(last.recall, 1.0);
        // Probe ratios grow monotonically.
        for w in report.round_metrics.windows(2) {
            assert!(w[1].probe_ratio >= w[0].probe_ratio);
        }

        // Router sizes: mostly 2 (generator pairs interfaces).
        if !report.router_sizes_distinct.is_empty() {
            let two = report
                .router_sizes_distinct
                .iter()
                .filter(|&&s| s == 2)
                .count() as f64
                / report.router_sizes_distinct.len() as f64;
            assert!(two > 0.4, "size-2 share {two}");
        }

        // Table 3 portions sum to 1.
        let total: f64 = [
            ResolutionCase::NoChange,
            ResolutionCase::SingleSmaller,
            ResolutionCase::MultipleSmaller,
            ResolutionCase::OnePath,
        ]
        .iter()
        .map(|&c| report.resolution_portion(c))
        .sum();
        assert!((total - 1.0).abs() < 1e-9 || total == 0.0);
    }
}
