//! The router-level survey (Sec. 5.2) and the alias-resolution
//! evaluation (Sec. 4.2).
//!
//! Re-traces the load-balanced scenarios with Multilevel MDA-Lite Paris
//! Traceroute, yielding per trace an IP-level and a router-level
//! topology, and aggregates:
//!
//! * Fig. 5 — precision/recall of each alias round against Round 10 and
//!   the cumulative probing cost;
//! * Table 2 — indirect (MMLPT) vs direct (MIDAR-style) verdicts over
//!   the union of identified router sets;
//! * Fig. 12 — router sizes, per-trace ("distinct") and after transitive
//!   closure across traces ("aggregated");
//! * Table 3 — what alias resolution does to each unique diamond;
//! * Figs. 13 & 14 — max-width distributions before/after resolution.
//!
//! Scenarios run through the **concurrent sweep engine** by default:
//! each worker chunk builds one [`mlpt_sim::MultiNetwork`] whose lanes
//! are the per-scenario simulators and streams one
//! [`MultilevelSession`] per destination — trace, Round 0–10 alias
//! rounds and (optionally) the direct comparator campaigns all
//! interleaved across destinations under the engine's streaming
//! admission and in-flight budget. Scenarios whose topologies share
//! interface addresses (the 48/56/96-wide core structures are shared
//! across routes by construction) are split into address-disjoint
//! sub-sweeps, because echo probes route by interface address. Per-lane
//! determinism makes every aggregate bit-identical to the legacy
//! thread-per-scenario loop, which survives behind
//! [`DispatchMode::PerProbe`] for A/B comparison.

use crate::generator::{SyntheticInternet, TraceScenario};
use crate::parallel::ordered_parallel_map;
use mlpt_alias::evidence::EvidenceBase;
use mlpt_alias::multilevel::{
    trace_multilevel, MultilevelConfig, MultilevelOutcome, MultilevelSession,
};
use mlpt_alias::resolver::{judge_set, SeriesSource, SetVerdict};
use mlpt_alias::rounds::{run_rounds, ProbeMethod, RoundsConfig};
use mlpt_core::prelude::*;
use mlpt_core::prober::DispatchMode;
use mlpt_sim::MultiNetwork;
use mlpt_stats::{Histogram, JointHistogram};
use mlpt_topo::diamond::{all_diamond_metrics, find_diamonds};
use mlpt_topo::{DiamondKey, MultipathTopology, RouterMap};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::net::Ipv4Addr;

/// What happened to an IP-level diamond at the router level (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ResolutionCase {
    /// No aliases inside: the diamond is unchanged.
    NoChange,
    /// It narrowed (and/or shortened) into a single smaller diamond.
    SingleSmaller,
    /// It split into a series of smaller diamonds.
    MultipleSmaller,
    /// It dissolved into a straight path of routers.
    OnePath,
}

impl ResolutionCase {
    /// Label as in Table 3.
    pub fn label(self) -> &'static str {
        match self {
            ResolutionCase::NoChange => "No change",
            ResolutionCase::SingleSmaller => "Single smaller diamond",
            ResolutionCase::MultipleSmaller => "Multiple smaller diamonds",
            ResolutionCase::OnePath => "One path (no diamond)",
        }
    }
}

/// Classifies one diamond's fate; also returns the span's max interior
/// width after collapsing (the Fig. 14 "after" coordinate).
pub fn classify_resolution(
    ip: &MultipathTopology,
    router: &MultipathTopology,
    diamond: &mlpt_topo::Diamond,
) -> (ResolutionCase, usize) {
    let d = diamond.divergence_hop;
    let c = diamond.convergence_hop;
    let before: Vec<usize> = (d + 1..c).map(|h| ip.hop(h).len()).collect();
    let after: Vec<usize> = (d + 1..c).map(|h| router.hop(h).len()).collect();
    let after_max = after.iter().copied().max().unwrap_or(1);

    if before == after {
        return (ResolutionCase::NoChange, after_max);
    }
    // Count the segments of consecutive multi-vertex hops remaining.
    let mut segments = 0usize;
    let mut in_segment = false;
    for &w in &after {
        if w >= 2 {
            if !in_segment {
                segments += 1;
                in_segment = true;
            }
        } else {
            in_segment = false;
        }
    }
    let case = match segments {
        0 => ResolutionCase::OnePath,
        1 => ResolutionCase::SingleSmaller,
        _ => ResolutionCase::MultipleSmaller,
    };
    (case, after_max)
}

/// One Fig. 5 data point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundMetric {
    /// Round number.
    pub round: u32,
    /// Pairwise precision against Round 10.
    pub precision: f64,
    /// Pairwise recall against Round 10.
    pub recall: f64,
    /// Cumulative alias probes ÷ trace probes (aggregated over traces).
    pub probe_ratio: f64,
}

/// Table 2: counts of (indirect verdict, direct verdict) over the union
/// of router sets identified by either method.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerdictMatrix {
    counts: BTreeMap<(String, String), u64>,
    /// Total sets considered.
    pub total: u64,
}

impl VerdictMatrix {
    fn key(v: SetVerdict) -> String {
        match v {
            SetVerdict::Accept => "accept".into(),
            SetVerdict::Reject => "reject".into(),
            SetVerdict::Unable => "unable".into(),
        }
    }

    /// Records one set's verdict pair.
    pub fn record(&mut self, indirect: SetVerdict, direct: SetVerdict) {
        *self
            .counts
            .entry((Self::key(indirect), Self::key(direct)))
            .or_insert(0) += 1;
        self.total += 1;
    }

    /// Portion of sets with this verdict pair.
    pub fn portion(&self, indirect: SetVerdict, direct: SetVerdict) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let c = self
            .counts
            .get(&(Self::key(indirect), Self::key(direct)))
            .copied()
            .unwrap_or(0);
        c as f64 / self.total as f64
    }

    /// Merges another matrix.
    pub fn merge(&mut self, other: &VerdictMatrix) {
        for (k, v) in &other.counts {
            *self.counts.entry(k.clone()).or_insert(0) += v;
        }
        self.total += other.total;
    }
}

/// Configuration of the router-level survey.
#[derive(Debug, Clone)]
pub struct RouterSurveyConfig {
    /// Scenarios to re-trace.
    pub scenarios: usize,
    /// Worker threads (each drives a whole sweep chunk).
    pub workers: usize,
    /// Seed for the tracing side.
    pub trace_seed: u64,
    /// How probes cross the transport. [`DispatchMode::Batched`]
    /// (default) streams the multilevel sessions through the sweep
    /// engine; [`DispatchMode::PerProbe`] keeps the legacy
    /// thread-per-scenario blocking loop for A/B comparison.
    pub dispatch: DispatchMode,
    /// Alias-resolution protocol (rounds, replies, MBT parameters).
    pub rounds: RoundsConfig,
    /// Whether to run the direct-probing comparator for Table 2
    /// (roughly doubles alias probing cost).
    pub with_direct_comparison: bool,
    /// Destinations sharing one simulated network per worker chunk on
    /// the sweep path (ignored on the legacy path).
    pub sweep_batch: usize,
    /// In-flight probe budget per sweep engine (the streaming-admission
    /// headroom).
    pub sweep_in_flight: usize,
    /// How the sweep engines admit sessions. [`Admission::CostAware`]
    /// starts likely-expensive alias destinations first — each session
    /// carries a cost hint computed from its scenario's hop widths under
    /// the configured rounds — so the heavy Round 0–10 campaigns
    /// amortize across the sweep instead of serializing at the tail.
    /// Pure scheduling: every aggregate is bit-identical across modes
    /// (regression-tested).
    pub admission: Admission,
    /// Run each destination's per-hop alias stages as one fanned wave
    /// phase instead of hop after hop (see
    /// [`MultilevelSession::with_hop_fanout`]). A deterministic protocol
    /// variant, not a scheduling knob: fanned surveys differ from
    /// hop-sequential ones (per-hop evidence seeds from the wave start),
    /// but are themselves bit-identical across admission modes and
    /// budgets.
    pub hop_fanout: bool,
    /// Deadline policy for dispatched probes (see
    /// [`mlpt_core::RetryPolicy`]).
    pub sweep_retry: RetryPolicy,
    /// Stall watchdog: all-silent rounds before a session is finalized
    /// as partial (0 = off).
    pub sweep_stall_rounds: u32,
    /// Shared Doubletree stop set for each sub-sweep's trace phases
    /// (`None` = off). Sub-sweeps are address-disjoint by construction,
    /// so this mainly exercises the mid-path start + backward probing
    /// order; it never changes discovered topology (rule 5).
    pub sweep_stop_set: Option<StopSetConfig>,
    /// Engine shards per sub-sweep (`1` = the single engine). With
    /// more, each sub-sweep's lanes and sessions are partitioned by
    /// [`mlpt_core::shard_of`] across a
    /// [`mlpt_core::ShardedSweepEngine`] — scheduling only, the report
    /// is bit-identical for any shard count.
    pub sweep_shards: usize,
}

impl Default for RouterSurveyConfig {
    fn default() -> Self {
        Self {
            dispatch: DispatchMode::Batched,
            scenarios: 300,
            workers: crate::parallel::default_workers(),
            trace_seed: 0x5E52,
            rounds: RoundsConfig::default(),
            with_direct_comparison: true,
            sweep_batch: 32,
            sweep_in_flight: 512,
            admission: Admission::Streaming,
            hop_fanout: false,
            sweep_retry: RetryPolicy::default(),
            sweep_stall_rounds: 0,
            sweep_stop_set: None,
            sweep_shards: 1,
        }
    }
}

/// Aggregated router-level survey results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RouterSurveyReport {
    /// Scenarios traced.
    pub traces: usize,
    /// Ids of the scenarios that contributed a trace, in source order —
    /// the streamed sweep reports rows under source indices, so this is
    /// ascending regardless of completion order (regression-tested).
    pub scenario_ids: Vec<usize>,
    /// Traces with at least one multi-interface alias set found.
    pub traces_with_aliases: usize,
    /// Sizes of distinct routers — alias sets deduplicated by exact
    /// membership across traces (Fig. 12 a).
    pub router_sizes_distinct: Vec<usize>,
    /// Router sizes after cross-trace transitive closure (Fig. 12 b).
    pub router_sizes_aggregated: Vec<usize>,
    /// Fig. 5 series.
    pub round_metrics: Vec<RoundMetric>,
    /// Table 2 matrix (empty when the comparator is disabled).
    pub verdicts: VerdictMatrix,
    /// Table 3 portions over unique diamonds.
    pub resolution_counts: BTreeMap<ResolutionCase, u64>,
    /// Fig. 13 (a): unique-diamond max widths at the IP level.
    pub width_before: Histogram,
    /// Fig. 13 (b): max widths of router-level diamonds.
    pub width_after: Histogram,
    /// Fig. 14: joint (before, after) widths for diamonds that changed.
    pub width_change: JointHistogram,
}

impl RouterSurveyReport {
    /// Table 3 portion for one case.
    pub fn resolution_portion(&self, case: ResolutionCase) -> f64 {
        let total: u64 = self.resolution_counts.values().sum();
        if total == 0 {
            return 0.0;
        }
        self.resolution_counts.get(&case).copied().unwrap_or(0) as f64 / total as f64
    }

    /// Portion of unique diamonds where *some* resolution happened
    /// (the paper: 41.9 %).
    pub fn some_resolution_portion(&self) -> f64 {
        1.0 - self.resolution_portion(ResolutionCase::NoChange)
    }
}

/// Per-scenario partial result.
struct PerScenario {
    pair_sets: Vec<BTreeSet<(Ipv4Addr, Ipv4Addr)>>, // per round
    probes_per_round: Vec<u64>,
    trace_probes: u64,
    router_map: RouterMap,
    verdicts: VerdictMatrix,
    diamonds: Vec<(DiamondKey, ResolutionCase, usize, usize)>, // key, case, before, after
    router_diamond_widths: Vec<usize>,
}

/// Shared Fig. 5 / Table 3 / Figs. 13–14 post-processing of one
/// multilevel trace.
fn scenario_tail(
    result: &mlpt_alias::multilevel::MultilevelTrace,
    verdicts: VerdictMatrix,
    num_rounds: usize,
) -> PerScenario {
    // Fig. 5 inputs: pair sets and probes per round across hops.
    let mut pair_sets: Vec<BTreeSet<(Ipv4Addr, Ipv4Addr)>> = vec![BTreeSet::new(); num_rounds + 1];
    let mut probes_per_round = vec![0u64; num_rounds + 1];
    for reports in result.hop_reports.values() {
        for (r, report) in reports.iter().enumerate() {
            pair_sets[r].extend(report.partition.pairs());
            probes_per_round[r] += report.cumulative_probes;
        }
    }

    // Table 3 / Figs. 13-14 inputs.
    let mut diamonds = Vec::new();
    let mut router_diamond_widths = Vec::new();
    if let (Some(ip), Some(router)) = (&result.ip_topology, &result.router_topology) {
        for d in find_diamonds(ip) {
            let m = mlpt_topo::diamond::diamond_metrics(ip, &d);
            let (case, after_width) = classify_resolution(ip, router, &d);
            diamonds.push((m.key, case, m.max_width, after_width));
        }
        for m in all_diamond_metrics(router) {
            router_diamond_widths.push(m.max_width);
        }
    }

    PerScenario {
        pair_sets,
        probes_per_round,
        trace_probes: result.trace.probes_sent,
        router_map: result.router_map.clone(),
        verdicts,
        diamonds,
        router_diamond_widths,
    }
}

/// One scenario on the legacy blocking path: thread-per-scenario prober,
/// trace + rounds + comparator driven sequentially.
fn legacy_scenario(
    internet: &SyntheticInternet,
    config: &RouterSurveyConfig,
    id: usize,
) -> Option<PerScenario> {
    let num_rounds = config.rounds.rounds as usize;
    let scenario = internet.scenario(id);
    if !scenario.has_diamond {
        return None;
    }
    let seed = trace_seed_of(config, id);
    let mut prober = scenario.build_prober(seed, config.dispatch);
    let ml_config = MultilevelConfig {
        trace: TraceConfig::new(seed),
        rounds: config.rounds.clone(),
    };
    let result = trace_multilevel(&mut prober, &ml_config);

    // Table 2: judge the union of router sets under both methods.
    let mut verdicts = VerdictMatrix::default();
    if config.with_direct_comparison {
        let trace = &result.trace;
        for ttl in 1..=trace.discovery.max_observed_ttl() {
            let candidates: BTreeSet<Ipv4Addr> = trace
                .discovery
                .vertices_at(ttl)
                .iter()
                .copied()
                .filter(|&a| a != trace.destination && !mlpt_topo::is_star(a))
                .collect();
            if candidates.len() < 2 {
                continue;
            }
            // Evidence so far (trace + indirect rounds) …
            let mut base = EvidenceBase::from_log(prober.log(), &candidates);
            // … plus a direct-probing campaign of the same size.
            let direct_cfg = RoundsConfig {
                method: ProbeMethod::Direct,
                ..config.rounds.clone()
            };
            let direct_reports =
                run_rounds(&mut prober, trace, &candidates, &mut base, &direct_cfg);

            let indirect_partition = result.final_partition(ttl);
            let direct_partition = direct_reports.last().map(|r| &r.partition);
            record_verdicts(
                &mut verdicts,
                &base,
                indirect_partition,
                direct_partition,
                &config.rounds.mbt,
            );
        }
    }

    Some(scenario_tail(&result, verdicts, num_rounds))
}

/// Records the Table 2 verdicts for one hop: the union of router sets
/// either method identified, judged under both series sources over the
/// campaign's final evidence.
fn record_verdicts(
    verdicts: &mut VerdictMatrix,
    base: &EvidenceBase,
    indirect_partition: Option<&mlpt_alias::resolver::AliasPartition>,
    direct_partition: Option<&mlpt_alias::resolver::AliasPartition>,
    mbt: &mlpt_alias::mbt::MbtParams,
) {
    let mut sets: BTreeSet<BTreeSet<Ipv4Addr>> = BTreeSet::new();
    if let Some(p) = indirect_partition {
        sets.extend(p.routers().cloned());
    }
    if let Some(p) = direct_partition {
        sets.extend(p.routers().cloned());
    }
    for set in sets {
        let vi = judge_set(base, &set, SeriesSource::Indirect, mbt);
        let vd = judge_set(base, &set, SeriesSource::Direct, mbt);
        verdicts.record(vi, vd);
    }
}

/// One scenario's row from a finished sweep session.
fn streamed_scenario(outcome: MultilevelOutcome, config: &RouterSurveyConfig) -> PerScenario {
    let num_rounds = config.rounds.rounds as usize;
    let mut verdicts = VerdictMatrix::default();
    // The comparator campaigns ran inside the session (seeded from its
    // log at exactly the points the legacy loop seeded them); judge the
    // same set unions over their final evidence.
    for (ttl, comparison) in &outcome.direct {
        record_verdicts(
            &mut verdicts,
            &comparison.evidence,
            outcome.multilevel.final_partition(*ttl),
            comparison.reports.last().map(|r| &r.partition),
            &config.rounds.mbt,
        );
    }
    scenario_tail(&outcome.multilevel, verdicts, num_rounds)
}

fn trace_seed_of(config: &RouterSurveyConfig, id: usize) -> u64 {
    config.trace_seed ^ (id as u64).wrapping_mul(0xC0FF_EE11)
}

/// Admission cost hint for one scenario, before its trace has run: the
/// survey knows the ground-truth topology, so the alias campaigns'
/// probe cost follows from the hop widths exactly as
/// [`RoundsConfig::predicted_probes`] models them (the comparator, when
/// enabled, runs a second campaign of the same size per hop). The trace
/// itself is dwarfed by the alias phase and left out of the hint; a
/// wrong hint could only cost schedule quality, never correctness.
pub fn scenario_cost_hint(
    scenario: &TraceScenario,
    rounds: &RoundsConfig,
    comparator: bool,
) -> u64 {
    let topology = &scenario.topology;
    let mut hint = 0u64;
    for hop in 0..topology.num_hops().saturating_sub(1) {
        let width = topology.hop(hop).len();
        if width >= 2 {
            let campaign = rounds.predicted_probes(width);
            hint += if comparator { campaign * 2 } else { campaign };
        }
    }
    hint
}

/// Partitions scenarios into groups whose topologies share no interface
/// addresses, greedily in input order. Lanes of one [`MultiNetwork`]
/// must own disjoint address sets — UDP probes route by (unique)
/// destination, but echo probes route by interface, and the synthetic
/// Internet deliberately shares its wide core structures across routes.
/// Returns indices into `scenarios`.
pub fn disjoint_scenario_groups(scenarios: &[&TraceScenario]) -> Vec<Vec<usize>> {
    let mut groups: Vec<(Vec<usize>, HashSet<u32>)> = Vec::new();
    for (i, scenario) in scenarios.iter().enumerate() {
        let addrs: HashSet<u32> = scenario
            .topology
            .all_addresses()
            .iter()
            .map(|&a| u32::from(a))
            .collect();
        match groups
            .iter_mut()
            .find(|(_, taken)| taken.is_disjoint(&addrs))
        {
            Some((members, taken)) => {
                members.push(i);
                taken.extend(addrs);
            }
            None => groups.push((vec![i], addrs)),
        }
    }
    groups.into_iter().map(|(members, _)| members).collect()
}

/// One worker chunk of the sweep path: every diamond-carrying scenario
/// of `ids` becomes a [`MultilevelSession`] lane; address-disjoint
/// groups share one engine each.
fn sweep_chunk(
    internet: &SyntheticInternet,
    config: &RouterSurveyConfig,
    ids: &[usize],
) -> Vec<Option<PerScenario>> {
    let scenarios: Vec<TraceScenario> = ids.iter().map(|&id| internet.scenario(id)).collect();
    let mut rows: Vec<Option<PerScenario>> = Vec::new();
    rows.resize_with(scenarios.len(), || None);

    let active: Vec<usize> = (0..scenarios.len())
        .filter(|&i| scenarios[i].has_diamond)
        .collect();
    let active_refs: Vec<&TraceScenario> = active.iter().map(|&i| &scenarios[i]).collect();

    for group in disjoint_scenario_groups(&active_refs) {
        // Indices into `scenarios` of this address-disjoint sub-sweep.
        let members: Vec<usize> = group.into_iter().map(|g| active[g]).collect();
        let lanes: Vec<mlpt_sim::SimNetwork> = members
            .iter()
            .map(|&i| scenarios[i].build_network(trace_seed_of(config, ids[i])))
            .collect();
        let net = MultiNetwork::new(lanes).expect("disjoint groups have unique destinations");
        let source = scenarios[members[0]].source;
        assert!(
            members.iter().all(|&i| scenarios[i].source == source),
            "sweep chunks assume a single vantage point"
        );
        let sweep_config = SweepConfig {
            max_in_flight: config.sweep_in_flight.max(1),
            admission: config.admission,
            retry: config.sweep_retry,
            stall_rounds: config.sweep_stall_rounds,
            stop_set: config.sweep_stop_set,
            ..SweepConfig::default()
        };
        let sessions = members.iter().map(|&i| {
            let seed = trace_seed_of(config, ids[i]);
            let mut session = MultilevelSession::new(
                scenarios[i].topology.destination(),
                MultilevelConfig {
                    trace: TraceConfig::new(seed),
                    rounds: config.rounds.clone(),
                },
            )
            .with_hop_fanout(config.hop_fanout)
            .with_cost_hint(scenario_cost_hint(
                &scenarios[i],
                &config.rounds,
                config.with_direct_comparison,
            ));
            if config.with_direct_comparison {
                session = session.with_direct_comparison(RoundsConfig {
                    method: ProbeMethod::Direct,
                    ..config.rounds.clone()
                });
            }
            session
        });
        let shards = config.sweep_shards.max(1);
        if shards > 1 {
            // Sharded engine: the sub-sweep's lanes split by the same
            // destination hash that partitions its sessions.
            let mut engine =
                ShardedSweepEngine::new(net.split_by(shards, |d| shard_of(d, shards)), source)
                    .with_config(sweep_config);
            engine.run_sessions_with(sessions, |index, session, _wire_probes| {
                rows[members[index]] = Some(streamed_scenario(session.finish(), config));
            });
        } else {
            let mut engine = SweepEngine::new(net, source).with_config(sweep_config);
            engine.run_sessions_with(sessions, |index, session, _wire_probes| {
                rows[members[index]] = Some(streamed_scenario(session.finish(), config));
            });
        }
    }
    rows
}

/// Runs the router-level survey.
pub fn run_router_survey(
    internet: &SyntheticInternet,
    config: &RouterSurveyConfig,
) -> RouterSurveyReport {
    let num_rounds = config.rounds.rounds as usize;
    let rows: Vec<Option<PerScenario>> = if config.dispatch == DispatchMode::PerProbe {
        // Legacy comparison path: one full pipeline (and one simulator)
        // per scenario, thread-per-scenario concurrency.
        ordered_parallel_map(config.scenarios, config.workers, |id| {
            legacy_scenario(internet, config, id)
        })
    } else {
        // Sweep path: chunks of scenarios share engines; worker threads
        // scale across chunks. Chunking and admission are pure
        // scheduling — rows come back under source indices, so the
        // report is identical however the sweep is sliced.
        let chunk_size = config
            .sweep_batch
            .max(1)
            .min(config.scenarios.div_ceil(config.workers.max(1)).max(1));
        let chunks = config.scenarios.div_ceil(chunk_size);
        let nested: Vec<Vec<Option<PerScenario>>> =
            ordered_parallel_map(chunks, config.workers, |b| {
                let ids: Vec<usize> =
                    (b * chunk_size..((b + 1) * chunk_size).min(config.scenarios)).collect();
                sweep_chunk(internet, config, &ids)
            });
        nested.into_iter().flatten().collect()
    };

    // Aggregate.
    let mut global_pairs: Vec<BTreeSet<(Ipv4Addr, Ipv4Addr)>> =
        vec![BTreeSet::new(); num_rounds + 1];
    let mut probes_per_round = vec![0u64; num_rounds + 1];
    let mut trace_probes_total = 0u64;
    let mut distinct_router_sets: BTreeSet<BTreeSet<Ipv4Addr>> = BTreeSet::new();
    let mut maps = Vec::new();
    let mut verdicts = VerdictMatrix::default();
    let mut unique_diamonds: BTreeMap<DiamondKey, (ResolutionCase, usize, usize)> = BTreeMap::new();
    let mut width_after = Histogram::new();
    let mut traces_with_aliases = 0usize;
    let mut traces = 0usize;
    let mut scenario_ids = Vec::new();

    for (id, row) in rows.into_iter().enumerate() {
        let Some(row) = row else { continue };
        traces += 1;
        scenario_ids.push(id);
        for (r, pairs) in row.pair_sets.iter().enumerate() {
            global_pairs[r].extend(pairs.iter().copied());
        }
        for (r, p) in row.probes_per_round.iter().enumerate() {
            probes_per_round[r] += p;
        }
        trace_probes_total += row.trace_probes;
        let mut any_alias = false;
        for set in row.router_map.alias_sets().into_values() {
            if set.len() >= 2 {
                any_alias = true;
                distinct_router_sets.insert(set);
            }
        }
        if any_alias {
            traces_with_aliases += 1;
        }
        maps.push(row.router_map);
        verdicts.merge(&row.verdicts);
        for (key, case, before, after) in row.diamonds {
            unique_diamonds.entry(key).or_insert((case, before, after));
        }
        for w in row.router_diamond_widths {
            width_after.record(w as u64);
        }
    }

    // Fig. 5 series.
    let reference = global_pairs.last().cloned().unwrap_or_default();
    let mut round_metrics = Vec::new();
    for (r, pairs) in global_pairs.iter().enumerate() {
        let tp = pairs.intersection(&reference).count() as f64;
        let precision = if pairs.is_empty() {
            1.0
        } else {
            tp / pairs.len() as f64
        };
        let recall = if reference.is_empty() {
            1.0
        } else {
            tp / reference.len() as f64
        };
        let probe_ratio = if trace_probes_total == 0 {
            0.0
        } else {
            probes_per_round[r] as f64 / trace_probes_total as f64
        };
        round_metrics.push(RoundMetric {
            round: r as u32,
            precision,
            recall,
            probe_ratio,
        });
    }

    // Fig. 12 (b): aggregated sizes.
    let aggregated = RouterMap::aggregate(&maps);
    let router_sizes_aggregated: Vec<usize> = aggregated
        .router_sizes()
        .into_iter()
        .filter(|&s| s >= 2)
        .collect();

    // Table 3 / Fig. 13 (a) / Fig. 14.
    let mut resolution_counts: BTreeMap<ResolutionCase, u64> = BTreeMap::new();
    let mut width_before = Histogram::new();
    let mut width_change = JointHistogram::new();
    for (case, before, after) in unique_diamonds.values() {
        *resolution_counts.entry(*case).or_insert(0) += 1;
        width_before.record(*before as u64);
        if *case != ResolutionCase::NoChange {
            width_change.record(*before as u64, *after as u64);
        }
    }

    let router_sizes_distinct: Vec<usize> =
        distinct_router_sets.iter().map(BTreeSet::len).collect();

    RouterSurveyReport {
        traces,
        scenario_ids,
        traces_with_aliases,
        router_sizes_distinct,
        router_sizes_aggregated,
        round_metrics,
        verdicts,
        resolution_counts,
        width_before,
        width_after,
        width_change,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::InternetConfig;
    use mlpt_topo::TopologyBuilder;

    #[test]
    fn classify_resolution_cases() {
        use mlpt_topo::graph::addr;
        // IP: 1-2-2-1 (length-3 diamond).
        let mut b = TopologyBuilder::default();
        b.add_hop([addr(0, 0)]);
        b.add_hop([addr(1, 0), addr(1, 1)]);
        b.add_hop([addr(2, 0), addr(2, 1)]);
        b.add_hop([addr(3, 0)]);
        for i in 0..3 {
            b.connect_unmeshed(i);
        }
        let ip = b.build().unwrap();
        let diamond = find_diamonds(&ip)[0];

        // No change: collapse with empty router map.
        let same = mlpt_topo::router::collapse(&ip, &RouterMap::new());
        assert_eq!(
            classify_resolution(&ip, &same, &diamond).0,
            ResolutionCase::NoChange
        );

        // Single smaller: collapse second hop only.
        let routers = RouterMap::from_alias_sets([vec![addr(2, 0), addr(2, 1)]]);
        let collapsed = mlpt_topo::router::collapse(&ip, &routers);
        assert_eq!(
            classify_resolution(&ip, &collapsed, &diamond).0,
            ResolutionCase::SingleSmaller
        );

        // One path: collapse both hops.
        let routers = RouterMap::from_alias_sets([
            vec![addr(1, 0), addr(1, 1)],
            vec![addr(2, 0), addr(2, 1)],
        ]);
        let collapsed = mlpt_topo::router::collapse(&ip, &routers);
        assert_eq!(
            classify_resolution(&ip, &collapsed, &diamond).0,
            ResolutionCase::OnePath
        );
    }

    #[test]
    fn classify_multiple_smaller() {
        use mlpt_topo::graph::addr;
        // IP: 1-2-2-2-1 (length-4); collapsing the middle hop splits it.
        let mut b = TopologyBuilder::default();
        b.add_hop([addr(0, 0)]);
        b.add_hop([addr(1, 0), addr(1, 1)]);
        b.add_hop([addr(2, 0), addr(2, 1)]);
        b.add_hop([addr(3, 0), addr(3, 1)]);
        b.add_hop([addr(4, 0)]);
        for i in 0..4 {
            b.connect_unmeshed(i);
        }
        let ip = b.build().unwrap();
        let diamond = find_diamonds(&ip)[0];
        let routers = RouterMap::from_alias_sets([vec![addr(2, 0), addr(2, 1)]]);
        let collapsed = mlpt_topo::router::collapse(&ip, &routers);
        assert_eq!(
            classify_resolution(&ip, &collapsed, &diamond).0,
            ResolutionCase::MultipleSmaller
        );
    }

    /// The acceptance gate: the streamed sweep path is a pure scheduling
    /// change. Every aggregate — the Fig. 5 series, the Table 2 verdict
    /// matrix, the Table 3 resolution counts, the Fig. 12 router sizes
    /// and the Fig. 13/14 width histograms — is identical to the legacy
    /// thread-per-scenario blocking loop, bit for bit.
    #[test]
    fn streamed_and_legacy_paths_agree() {
        let internet = SyntheticInternet::new(InternetConfig::with_seed(3));
        let base = RouterSurveyConfig {
            scenarios: 24,
            workers: 2,
            trace_seed: 99,
            rounds: RoundsConfig {
                rounds: 3,
                replies_per_round: 8,
                ..RoundsConfig::default()
            },
            with_direct_comparison: true,
            sweep_batch: 7,      // deliberately uneven chunks
            sweep_in_flight: 48, // small enough that admission actually streams
            ..RouterSurveyConfig::default()
        };
        let streamed = run_router_survey(&internet, &base);
        let legacy = run_router_survey(
            &internet,
            &RouterSurveyConfig {
                dispatch: mlpt_core::prober::DispatchMode::PerProbe,
                ..base.clone()
            },
        );
        assert!(streamed.traces > 3, "population too small to mean much");
        assert_eq!(streamed.traces, legacy.traces);
        assert_eq!(streamed.scenario_ids, legacy.scenario_ids);
        assert_eq!(streamed.traces_with_aliases, legacy.traces_with_aliases);
        assert_eq!(streamed.router_sizes_distinct, legacy.router_sizes_distinct);
        assert_eq!(
            streamed.router_sizes_aggregated,
            legacy.router_sizes_aggregated
        );
        assert_eq!(streamed.round_metrics, legacy.round_metrics);
        assert_eq!(streamed.verdicts, legacy.verdicts);
        assert_eq!(streamed.resolution_counts, legacy.resolution_counts);
        assert_eq!(streamed.width_before, legacy.width_before);
        assert_eq!(streamed.width_after, legacy.width_after);
        assert_eq!(streamed.width_change, legacy.width_change);
        assert!(
            streamed.verdicts.total > 0,
            "the comparator must have judged some sets"
        );
    }

    /// Chunking, worker counts and the in-flight budget are pure
    /// scheduling on the streamed path: rows come back under source
    /// indices, so scenarios are reported in source order and the report
    /// is identical however the sweep is sliced.
    #[test]
    fn streamed_rows_keep_source_order() {
        let internet = SyntheticInternet::new(InternetConfig::with_seed(7));
        let run = |sweep_batch: usize, sweep_in_flight: usize, workers: usize| {
            run_router_survey(
                &internet,
                &RouterSurveyConfig {
                    scenarios: 18,
                    workers,
                    trace_seed: 5,
                    rounds: RoundsConfig {
                        rounds: 2,
                        replies_per_round: 6,
                        ..RoundsConfig::default()
                    },
                    with_direct_comparison: false,
                    sweep_batch,
                    sweep_in_flight,
                    ..RouterSurveyConfig::default()
                },
            )
        };
        let a = run(18, 16, 1); // one chunk, tight budget: heavy streaming
        let b = run(5, 512, 4); // many chunks, budget admits whole chunks
        assert!(
            a.scenario_ids.windows(2).all(|w| w[0] < w[1]),
            "rows must be in ascending source order: {:?}",
            a.scenario_ids
        );
        assert_eq!(a.scenario_ids, b.scenario_ids);
        assert_eq!(a.round_metrics, b.round_metrics);
        assert_eq!(a.router_sizes_distinct, b.router_sizes_distinct);
        assert_eq!(a.resolution_counts, b.resolution_counts);
    }

    /// Engine sharding is pure scheduling on the survey too: every
    /// aggregate matches the single-engine run bit for bit.
    #[test]
    fn sharded_survey_matches_single_engine() {
        let internet = SyntheticInternet::new(InternetConfig::with_seed(9));
        let run = |sweep_shards: usize| {
            run_router_survey(
                &internet,
                &RouterSurveyConfig {
                    scenarios: 14,
                    workers: 2,
                    trace_seed: 31,
                    rounds: RoundsConfig {
                        rounds: 2,
                        replies_per_round: 6,
                        ..RoundsConfig::default()
                    },
                    with_direct_comparison: false,
                    sweep_batch: 7,
                    sweep_in_flight: 48,
                    sweep_shards,
                    ..RouterSurveyConfig::default()
                },
            )
        };
        let one = run(1);
        for shards in [2usize, 3] {
            let many = run(shards);
            assert_eq!(one.scenario_ids, many.scenario_ids, "shards={shards}");
            assert_eq!(one.round_metrics, many.round_metrics);
            assert_eq!(one.router_sizes_distinct, many.router_sizes_distinct);
            assert_eq!(one.router_sizes_aggregated, many.router_sizes_aggregated);
            assert_eq!(one.resolution_counts, many.resolution_counts);
            assert_eq!(one.verdicts, many.verdicts);
        }
    }

    /// Scenarios that traverse the shared core structures overlap in
    /// interface addresses; the grouper must keep them out of each
    /// other's sweeps (echo probes route by interface).
    #[test]
    fn disjoint_groups_respect_shared_cores() {
        let internet = SyntheticInternet::new(InternetConfig::with_seed(7));
        // Find two scenarios sharing core addresses (below 0x4000_0000).
        let uses_core = |s: &TraceScenario| {
            s.topology
                .all_addresses()
                .iter()
                .any(|a| u32::from(*a) < 0x4000_0000)
        };
        let mut core_users: Vec<TraceScenario> = Vec::new();
        for id in 0..4000 {
            let s = internet.scenario(id);
            if uses_core(&s) {
                core_users.push(s);
                if core_users.len() >= 2 {
                    break;
                }
            }
        }
        assert!(core_users.len() >= 2, "core structures too rare");
        let refs: Vec<&TraceScenario> = core_users.iter().collect();
        let groups = disjoint_scenario_groups(&refs);
        if core_users[0]
            .topology
            .all_addresses()
            .intersection(&core_users[1].topology.all_addresses())
            .next()
            .is_some()
        {
            assert_eq!(groups.len(), 2, "overlapping scenarios must split");
        }
        // Every scenario lands in exactly one group.
        let mut all: Vec<usize> = groups.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1]);
    }

    /// Cost-aware admission is pure scheduling on the survey too: every
    /// aggregate matches the default streaming run bit for bit, and the
    /// fanned survey — a deterministic protocol variant — is itself
    /// identical across admission policies.
    #[test]
    fn cost_aware_survey_matches_streaming() {
        let internet = SyntheticInternet::new(InternetConfig::with_seed(5));
        let base = RouterSurveyConfig {
            scenarios: 16,
            workers: 2,
            trace_seed: 42,
            rounds: RoundsConfig {
                rounds: 2,
                replies_per_round: 6,
                ..RoundsConfig::default()
            },
            with_direct_comparison: true,
            sweep_batch: 8,
            sweep_in_flight: 48,
            ..RouterSurveyConfig::default()
        };
        let assert_same = |a: &RouterSurveyReport, b: &RouterSurveyReport| {
            assert_eq!(a.traces, b.traces);
            assert_eq!(a.scenario_ids, b.scenario_ids);
            assert_eq!(a.traces_with_aliases, b.traces_with_aliases);
            assert_eq!(a.router_sizes_distinct, b.router_sizes_distinct);
            assert_eq!(a.router_sizes_aggregated, b.router_sizes_aggregated);
            assert_eq!(a.round_metrics, b.round_metrics);
            assert_eq!(a.verdicts, b.verdicts);
            assert_eq!(a.resolution_counts, b.resolution_counts);
            assert_eq!(a.width_before, b.width_before);
            assert_eq!(a.width_after, b.width_after);
            assert_eq!(a.width_change, b.width_change);
        };
        let streaming = run_router_survey(&internet, &base);
        assert!(streaming.traces > 2, "population too small to mean much");
        let cost_aware = run_router_survey(
            &internet,
            &RouterSurveyConfig {
                admission: Admission::CostAware,
                ..base.clone()
            },
        );
        assert_same(&streaming, &cost_aware);

        let fanned_streaming = run_router_survey(
            &internet,
            &RouterSurveyConfig {
                hop_fanout: true,
                ..base.clone()
            },
        );
        let fanned_cost_aware = run_router_survey(
            &internet,
            &RouterSurveyConfig {
                hop_fanout: true,
                admission: Admission::CostAware,
                ..base.clone()
            },
        );
        assert_same(&fanned_streaming, &fanned_cost_aware);
        // The fan-out changes per-destination wire order, never which
        // scenarios trace or how much the trace phase costs.
        assert_eq!(fanned_streaming.traces, streaming.traces);
        assert_eq!(fanned_streaming.scenario_ids, streaming.scenario_ids);
    }

    /// Small end-to-end survey exercising the whole pipeline.
    #[test]
    fn small_router_survey() {
        let internet = SyntheticInternet::new(InternetConfig::with_seed(3));
        let config = RouterSurveyConfig {
            scenarios: 30,
            workers: 4,
            trace_seed: 99,
            rounds: RoundsConfig {
                rounds: 4,
                replies_per_round: 12,
                ..RoundsConfig::default()
            },
            with_direct_comparison: true,
            ..RouterSurveyConfig::default()
        };
        let report = run_router_survey(&internet, &config);
        assert!(report.traces > 5, "some scenarios must carry diamonds");
        assert_eq!(report.round_metrics.len(), 5);

        // Final round defines the reference: precision = recall = 1.
        let last = report.round_metrics.last().unwrap();
        assert_eq!(last.precision, 1.0);
        assert_eq!(last.recall, 1.0);
        // Probe ratios grow monotonically.
        for w in report.round_metrics.windows(2) {
            assert!(w[1].probe_ratio >= w[0].probe_ratio);
        }

        // Router sizes: mostly 2 (generator pairs interfaces).
        if !report.router_sizes_distinct.is_empty() {
            let two = report
                .router_sizes_distinct
                .iter()
                .filter(|&&s| s == 2)
                .count() as f64
                / report.router_sizes_distinct.len() as f64;
            assert!(two > 0.4, "size-2 share {two}");
        }

        // Table 3 portions sum to 1.
        let total: f64 = [
            ResolutionCase::NoChange,
            ResolutionCase::SingleSmaller,
            ResolutionCase::MultipleSmaller,
            ResolutionCase::OnePath,
        ]
        .iter()
        .map(|&c| report.resolution_portion(c))
        .sum();
        assert!((total - 1.0).abs() < 1e-9 || total == 0.0);
    }
}
