//! The paper's canonical topologies.
//!
//! Sec. 2.1 walks the MDA through two 1-4-2-1 diamonds (Fig. 1); Sec. 2.4.1
//! simulates MDA-Lite vs MDA on four topologies found in real traces; and
//! Sec. 3 validates Fakeroute on the simplest possible diamond. This module
//! reconstructs all of them. Where the paper gives only summary statistics
//! (hop counts, widths, asymmetry), the construction is chosen to match all
//! the stated properties and is verified by tests against the metrics
//! module.

use crate::graph::{addr, MultipathTopology};

/// The simplest possible diamond (Sec. 3): divergence, two vertices,
/// convergence. Analytic MDA failure probability with the 95 % stopping
/// points is `(1/2)^(n1 - 1) = 0.03125`.
pub fn simplest_diamond() -> MultipathTopology {
    let mut b = MultipathTopology::builder();
    b.add_hop([addr(0, 0)]);
    b.add_hop([addr(1, 0), addr(1, 1)]);
    b.add_hop([addr(2, 0)]);
    b.connect_unmeshed(0);
    b.connect_unmeshed(1);
    b.build().expect("static topology")
}

/// Fig. 1's unmeshed diamond: divergence, four vertices, two vertices,
/// convergence, with each hop-2 vertex having exactly one successor.
pub fn fig1_unmeshed() -> MultipathTopology {
    let mut b = MultipathTopology::builder();
    b.add_hop([addr(0, 0)]);
    b.add_hop([addr(1, 0), addr(1, 1), addr(1, 2), addr(1, 3)]);
    b.add_hop([addr(2, 0), addr(2, 1)]);
    b.add_hop([addr(3, 0)]);
    b.connect_unmeshed(0);
    b.add_edge(1, addr(1, 0), addr(2, 0));
    b.add_edge(1, addr(1, 1), addr(2, 0));
    b.add_edge(1, addr(1, 2), addr(2, 1));
    b.add_edge(1, addr(1, 3), addr(2, 1));
    b.connect_unmeshed(2);
    b.build().expect("static topology")
}

/// Fig. 1's meshed diamond: same hops, but every hop-2 vertex has both
/// hop-3 vertices as successors.
pub fn fig1_meshed() -> MultipathTopology {
    let mut b = MultipathTopology::builder();
    b.add_hop([addr(0, 0)]);
    b.add_hop([addr(1, 0), addr(1, 1), addr(1, 2), addr(1, 3)]);
    b.add_hop([addr(2, 0), addr(2, 1)]);
    b.add_hop([addr(3, 0)]);
    b.connect_unmeshed(0);
    b.connect_full(1);
    b.connect_unmeshed(2);
    b.build().expect("static topology")
}

/// Sec. 2.4.1 "max length 2" diamond (trace pl2.prakinf.tu-ilmenau.de →
/// 83.167.65.184): a divergence point, a 28-vertex hop, a convergence
/// point. Nearly half of surveyed diamonds have max length 2; this is a
/// particularly wide example.
pub fn max_length_2() -> MultipathTopology {
    let mut b = MultipathTopology::builder();
    b.add_hop([addr(0, 0)]);
    b.add_hop((0..28).map(|i| addr(1, i)));
    b.add_hop([addr(2, 0)]);
    b.connect_unmeshed(0);
    b.connect_unmeshed(1);
    b.build().expect("static topology")
}

/// Sec. 2.4.1 "symmetric" diamond (ple1.cesnet.cz → 203.195.189.3): three
/// multi-vertex hops with at most 10 vertices, no meshing, fully uniform.
/// Constructed as 1 → 5 → 10 → 5 → 1 with even unmeshed fan-out/fan-in.
pub fn symmetric() -> MultipathTopology {
    let mut b = MultipathTopology::builder();
    b.add_hop([addr(0, 0)]);
    b.add_hop((0..5).map(|i| addr(1, i)));
    b.add_hop((0..10).map(|i| addr(2, i)));
    b.add_hop((0..5).map(|i| addr(3, i)));
    b.add_hop([addr(4, 0)]);
    b.connect_unmeshed(0);
    // 5 -> 10: vertex i fans to 2i, 2i+1 (out-degree 2, in-degree 1).
    for i in 0..5 {
        b.add_edge(1, addr(1, i), addr(2, 2 * i));
        b.add_edge(1, addr(1, i), addr(2, 2 * i + 1));
    }
    // 10 -> 5: vertices 2i, 2i+1 converge on i (out-degree 1, in-degree 2).
    for i in 0..5 {
        b.add_edge(2, addr(2, 2 * i), addr(3, i));
        b.add_edge(2, addr(2, 2 * i + 1), addr(3, i));
    }
    b.connect_unmeshed(3);
    b.build().expect("static topology")
}

/// Sec. 2.4.1 "asymmetric" diamond (kulcha.mimuw.edu.pl → 61.6.250.1):
/// nine multi-vertex hops, at most 19 vertices at a hop, width asymmetry
/// 17, unmeshed. If MDA-Lite detects the asymmetry it must switch to the
/// full MDA.
///
/// Construction: widths 1, 2, 19, 16, 12, 8, 6, 4, 3, 2, 1. The 2 → 19
/// expansion is maximally uneven (successor counts 18 vs 1 → asymmetry
/// 17); every contraction keeps out-degree 1, so no hop pair is meshed.
pub fn asymmetric() -> MultipathTopology {
    let widths = [1usize, 2, 19, 16, 12, 8, 6, 4, 3, 2, 1];
    let mut b = MultipathTopology::builder();
    for (h, &w) in widths.iter().enumerate() {
        b.add_hop((0..w).map(|i| addr(h, i)));
    }
    // 1 -> 2 even.
    b.connect_unmeshed(0);
    // 2 -> 19 uneven: vertex 0 gets successors 0..18, vertex 1 gets 18.
    for i in 0..18 {
        b.add_edge(1, addr(1, 0), addr(2, i));
    }
    b.add_edge(1, addr(1, 1), addr(2, 18));
    // Contractions with out-degree 1: map index j at hop h to
    // j % width(h+1) at hop h+1.
    for h in 2..widths.len() - 1 {
        b.connect_unmeshed(h);
    }
    b.build().expect("static topology")
}

/// Sec. 2.4.1 "meshed" diamond (ple2.planetlab.eu → 125.155.82.17): five
/// multi-vertex hops, at most 48 vertices, meshed. If MDA-Lite detects the
/// meshing it must switch to the full MDA.
///
/// Construction: widths 1, 8, 48, 48, 24, 12, 1. The 48 → 48 hop pair is
/// meshed (equal widths, out-degree 2) and the 48 → 24 pair is meshed
/// (wider to narrower with out-degree 2), while remaining uniform.
pub fn meshed() -> MultipathTopology {
    let widths = [1usize, 8, 48, 48, 24, 12, 1];
    let mut b = MultipathTopology::builder();
    for (h, &w) in widths.iter().enumerate() {
        b.add_hop((0..w).map(|i| addr(h, i)));
    }
    b.connect_unmeshed(0); // 1 -> 8
    b.connect_unmeshed(1); // 8 -> 48 even fan out (6 each)
                           // 48 -> 48 meshed but uniform: vertex i connects to i and (i+1) mod 48.
    for i in 0..48 {
        b.add_edge(2, addr(2, i), addr(3, i));
        b.add_edge(2, addr(2, i), addr(3, (i + 1) % 48));
    }
    // 48 -> 24 meshed but uniform: vertex i connects to i/2 and (i/2+1)%24.
    for i in 0..48 {
        b.add_edge(3, addr(3, i), addr(4, i / 2));
        b.add_edge(3, addr(3, i), addr(4, (i / 2 + 1) % 24));
    }
    b.connect_unmeshed(4); // 24 -> 12 even fan-in
    b.connect_unmeshed(5); // 12 -> 1
    b.build().expect("static topology")
}

/// One lane of a Doubletree sweep family (Donnet et al., "Efficient
/// Route Tracing from a Single Source"): every lane shares a
/// single-path near-source prefix of `prefix_len` hops — identical
/// interface addresses at identical TTLs across the whole family —
/// then diverges into a per-lane single-path suffix of `suffix_len`
/// hops and a per-lane destination. Sweeping many lanes of one family
/// is the canonical shared-stop-set workload: all cross-destination
/// redundancy sits in the prefix, so probes per destination should
/// fall towards `suffix_len + 2` as the sweep widens (the suffix, the
/// destination, and one backward probe to the shared-stop hit).
///
/// Destinations are unique per lane; the shared prefix interfaces are
/// only ever probed by TTL-limited UDP, which multi-lane simulators
/// route by destination, so the address overlap is unambiguous.
pub fn shared_prefix_lane(prefix_len: usize, suffix_len: usize, lane: usize) -> MultipathTopology {
    assert!(prefix_len >= 1, "the shared prefix needs at least one hop");
    assert!(
        prefix_len + suffix_len < 256,
        "hop count exceeds the 10.hop.x.y address scheme"
    );
    assert!(lane < 65_535, "lane index exceeds the address scheme");
    let mut b = MultipathTopology::builder();
    for h in 0..prefix_len {
        b.add_hop([addr(h, 0)]);
    }
    for h in prefix_len..=prefix_len + suffix_len {
        b.add_hop([addr(h, lane + 1)]);
    }
    for h in 0..prefix_len + suffix_len {
        b.connect_unmeshed(h);
    }
    b.build().expect("static topology")
}

/// All four Sec. 2.4.1 simulation topologies with their paper names.
pub fn simulation_suite() -> Vec<(&'static str, MultipathTopology)> {
    vec![
        ("max-length-2", max_length_2()),
        ("symmetric", symmetric()),
        ("asymmetric", asymmetric()),
        ("meshed", meshed()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diamond::{all_diamond_metrics, find_diamonds};

    #[test]
    fn simplest_properties() {
        let t = simplest_diamond();
        let m = all_diamond_metrics(&t).pop().unwrap();
        assert_eq!(m.max_width, 2);
        assert_eq!(m.max_length, 2);
        assert!(!m.is_meshed());
        assert_eq!(m.max_width_asymmetry, 0);
    }

    #[test]
    fn fig1_shapes() {
        let u = fig1_unmeshed();
        let m = fig1_meshed();
        assert_eq!(u.hop(1).len(), 4);
        assert_eq!(u.hop(2).len(), 2);
        assert_eq!(m.hop(1).len(), 4);
        let mu = all_diamond_metrics(&u).pop().unwrap();
        let mm = all_diamond_metrics(&m).pop().unwrap();
        assert!(!mu.is_meshed());
        assert!(mm.is_meshed());
        // Both are uniform (zero probability spread).
        assert_eq!(mu.max_probability_difference, 0.0);
        assert_eq!(mm.max_probability_difference, 0.0);
    }

    #[test]
    fn max_length_2_properties() {
        let t = max_length_2();
        let m = all_diamond_metrics(&t).pop().unwrap();
        assert_eq!(m.max_length, 2);
        assert_eq!(m.max_width, 28);
        assert!(!m.is_meshed());
        assert_eq!(m.max_width_asymmetry, 0);
        assert_eq!(m.max_probability_difference, 0.0);
    }

    #[test]
    fn symmetric_properties() {
        let t = symmetric();
        // Three multi-vertex hops, max 10 vertices.
        let widths: Vec<usize> = (0..t.num_hops()).map(|i| t.hop(i).len()).collect();
        assert_eq!(widths, vec![1, 5, 10, 5, 1]);
        let m = all_diamond_metrics(&t).pop().unwrap();
        assert_eq!(m.max_width, 10);
        assert!(!m.is_meshed(), "symmetric diamond must be unmeshed");
        assert_eq!(m.max_width_asymmetry, 0);
        assert_eq!(m.max_probability_difference, 0.0);
    }

    #[test]
    fn asymmetric_properties() {
        let t = asymmetric();
        let m = all_diamond_metrics(&t).pop().unwrap();
        // Nine multi-vertex hops.
        let multi = (0..t.num_hops()).filter(|&i| t.hop(i).len() >= 2).count();
        assert_eq!(multi, 9);
        assert_eq!(m.max_width, 19);
        assert_eq!(m.max_width_asymmetry, 17);
        assert!(!m.is_meshed(), "asymmetric diamond must be unmeshed");
        assert!(m.max_probability_difference > 0.0, "must be non-uniform");
    }

    #[test]
    fn meshed_properties() {
        let t = meshed();
        let m = all_diamond_metrics(&t).pop().unwrap();
        let multi = (0..t.num_hops()).filter(|&i| t.hop(i).len() >= 2).count();
        assert_eq!(multi, 5);
        assert_eq!(m.max_width, 48);
        assert!(m.is_meshed(), "meshed diamond must be meshed");
        // Ring wiring keeps every vertex equally likely.
        assert!(m.max_probability_difference < 1e-9);
    }

    #[test]
    fn suite_has_four_named_topologies() {
        let suite = simulation_suite();
        assert_eq!(suite.len(), 4);
        for (_, t) in &suite {
            assert_eq!(find_diamonds(t).len(), 1);
        }
    }
}
