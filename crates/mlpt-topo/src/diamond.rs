//! Diamonds and their metrics.
//!
//! A *diamond* (Augustin et al., quoted in Sec. 2.1) is "a subgraph
//! delimited by a divergence point followed, two or more hops later, by a
//! convergence point, with the requirement that all flows from source to
//! destination flow through both points". In a hop-structured topology the
//! points all flows pass through are exactly the hops holding a single
//! vertex, so diamonds are the segments between consecutive single-vertex
//! hops that contain at least one multi-vertex hop.
//!
//! This module implements extraction plus every metric of Fig. 6:
//!
//! * **maximum width** — most vertices at any hop inside the diamond;
//! * **maximum length** — hops from divergence to convergence;
//! * **minimum length** — hops until the convergence address first appears
//!   (shorter paths through a diamond show up as early appearances of the
//!   convergence address);
//! * **maximum width asymmetry** — the topological non-uniformity signal
//!   the MDA-Lite tests for (Sec. 2.3.3);
//! * **meshing** of hop pairs and the **ratio of meshed hops**;
//! * **maximum probability difference** between vertices at a common hop
//!   (Fig. 8), from reach-probability analysis.

use crate::graph::MultipathTopology;
use crate::is_star;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// A diamond located within a topology, by hop indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Diamond {
    /// Hop index of the divergence point (single-vertex hop).
    pub divergence_hop: usize,
    /// Hop index of the convergence point (single-vertex hop).
    pub convergence_hop: usize,
}

/// Identity of a *distinct* diamond per the paper's survey definition
/// (Sec. 5): the pair (divergence address, convergence address), where a
/// non-responding point makes the diamond distinct from any
/// responsive-point diamond. Star placeholders encode that distinction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DiamondKey {
    /// Divergence point address (star placeholder if non-responsive).
    pub divergence: Ipv4Addr,
    /// Convergence point address (star placeholder if non-responsive).
    pub convergence: Ipv4Addr,
}

impl DiamondKey {
    /// True if either delimiting point was a star.
    pub fn has_star(&self) -> bool {
        is_star(self.divergence) || is_star(self.convergence)
    }
}

/// All metrics of one diamond, computed once.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiamondMetrics {
    /// Identity (divergence, convergence addresses).
    pub key: DiamondKey,
    /// Maximum number of vertices at a hop strictly inside the diamond.
    pub max_width: usize,
    /// Hops from divergence to convergence.
    pub max_length: usize,
    /// Hops from divergence until the convergence address first appears.
    pub min_length: usize,
    /// Largest width asymmetry over the diamond's hop pairs.
    pub max_width_asymmetry: usize,
    /// Number of meshed hop pairs.
    pub meshed_hop_pairs: usize,
    /// Total hop pairs in the diamond (max_length).
    pub total_hop_pairs: usize,
    /// Largest difference in reach probability between two vertices at a
    /// common hop inside the diamond (0.0 for uniform diamonds).
    pub max_probability_difference: f64,
}

impl DiamondMetrics {
    /// True if at least one hop pair is meshed.
    pub fn is_meshed(&self) -> bool {
        self.meshed_hop_pairs > 0
    }

    /// Ratio of meshed hop pairs to all hop pairs (Fig. 9's metric).
    pub fn ratio_of_meshed_hops(&self) -> f64 {
        if self.total_hop_pairs == 0 {
            0.0
        } else {
            self.meshed_hop_pairs as f64 / self.total_hop_pairs as f64
        }
    }

    /// True if the diamond shows zero width asymmetry — the paper's
    /// topological indicator of uniformity (Sec. 2.3.3).
    pub fn is_width_symmetric(&self) -> bool {
        self.max_width_asymmetry == 0
    }
}

/// Finds all diamonds in a topology: maximal segments between consecutive
/// single-vertex hops containing at least one multi-vertex hop.
pub fn find_diamonds(topology: &MultipathTopology) -> Vec<Diamond> {
    let mut diamonds = Vec::new();
    let single_hops: Vec<usize> = (0..topology.num_hops())
        .filter(|&i| topology.hop(i).len() == 1)
        .collect();
    for pair in single_hops.windows(2) {
        let (d, c) = (pair[0], pair[1]);
        // At least one intermediate hop, which by construction of the
        // single-hop list has >= 2 vertices.
        if c - d >= 2 {
            diamonds.push(Diamond {
                divergence_hop: d,
                convergence_hop: c,
            });
        }
    }
    diamonds
}

/// Width asymmetry of the hop pair `(i, i + 1)` per the paper's definition.
///
/// * hop `i` narrower: max difference in successor counts at hop `i`;
/// * hop `i` wider: max difference in predecessor counts at hop `i + 1`;
/// * equal widths: the max of the two.
pub fn hop_pair_width_asymmetry(topology: &MultipathTopology, i: usize) -> usize {
    let wi = topology.hop(i).len();
    let wj = topology.hop(i + 1).len();

    let successor_spread = || -> usize {
        let degs: Vec<usize> = topology
            .hop(i)
            .iter()
            .map(|&v| topology.out_degree(i, v))
            .collect();
        spread(&degs)
    };
    let predecessor_spread = || -> usize {
        let degs: Vec<usize> = topology
            .hop(i + 1)
            .iter()
            .map(|&v| topology.in_degree(i + 1, v))
            .collect();
        spread(&degs)
    };

    match wi.cmp(&wj) {
        std::cmp::Ordering::Less => successor_spread(),
        std::cmp::Ordering::Greater => predecessor_spread(),
        std::cmp::Ordering::Equal => successor_spread().max(predecessor_spread()),
    }
}

fn spread(values: &[usize]) -> usize {
    match (values.iter().max(), values.iter().min()) {
        (Some(max), Some(min)) => max - min,
        _ => 0,
    }
}

/// Whether hop pair `(i, i + 1)` is meshed per Sec. 2.2:
///
/// * equal vertex counts and some hop-`i` out-degree ≥ 2;
/// * hop `i` narrower and some hop-`i+1` in-degree ≥ 2;
/// * hop `i` wider and some hop-`i` out-degree ≥ 2.
pub fn hop_pair_meshed(topology: &MultipathTopology, i: usize) -> bool {
    let wi = topology.hop(i).len();
    let wj = topology.hop(i + 1).len();
    let any_out_ge2 = || {
        topology
            .hop(i)
            .iter()
            .any(|&v| topology.out_degree(i, v) >= 2)
    };
    let any_in_ge2 = || {
        topology
            .hop(i + 1)
            .iter()
            .any(|&v| topology.in_degree(i + 1, v) >= 2)
    };
    match wi.cmp(&wj) {
        std::cmp::Ordering::Equal => any_out_ge2(),
        std::cmp::Ordering::Less => any_in_ge2(),
        std::cmp::Ordering::Greater => any_out_ge2(),
    }
}

/// Computes all metrics for one diamond.
pub fn diamond_metrics(topology: &MultipathTopology, diamond: &Diamond) -> DiamondMetrics {
    let d = diamond.divergence_hop;
    let c = diamond.convergence_hop;
    debug_assert!(c > d + 1, "diamond must contain an interior hop");

    let divergence = topology.hop(d)[0];
    let convergence = topology.hop(c)[0];

    let max_width = (d + 1..c).map(|i| topology.hop(i).len()).max().unwrap_or(0);

    let max_length = c - d;
    let min_length = topology.hops_until(d, convergence).unwrap_or(max_length);

    let max_width_asymmetry = (d..c)
        .map(|i| hop_pair_width_asymmetry(topology, i))
        .max()
        .unwrap_or(0);

    let meshed_hop_pairs = (d..c).filter(|&i| hop_pair_meshed(topology, i)).count();
    let total_hop_pairs = c - d;

    // Probability spread across vertices at common hops inside the diamond.
    let probs = topology.reach_probabilities();
    let mut max_probability_difference: f64 = 0.0;
    for layer in probs.iter().take(c).skip(d + 1) {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &p in layer.values() {
            lo = lo.min(p);
            hi = hi.max(p);
        }
        if hi > lo {
            max_probability_difference = max_probability_difference.max(hi - lo);
        }
    }

    DiamondMetrics {
        key: DiamondKey {
            divergence,
            convergence,
        },
        max_width,
        max_length,
        min_length,
        max_width_asymmetry,
        meshed_hop_pairs,
        total_hop_pairs,
        max_probability_difference,
    }
}

/// Extracts metrics for every diamond in the topology.
pub fn all_diamond_metrics(topology: &MultipathTopology) -> Vec<DiamondMetrics> {
    find_diamonds(topology)
        .iter()
        .map(|d| diamond_metrics(topology, d))
        .collect()
}

/// Probability that the MDA-Lite meshing test with `phi` flow identifiers
/// per vertex fails to detect meshing at hop pair `(i, i+1)` — Eq. (1) of
/// the paper:
///
/// ```text
///   prod_{v in V} 1 / |sigma(v)|^(phi - 1)
/// ```
///
/// where tracing runs from the hop with more vertices toward the hop with
/// fewer (forward if `hop i` is wider or equal, backward otherwise), `V`
/// is the vertex set at the traced-from hop and `sigma(v)` its
/// successor/predecessor set. Only vertices with `|sigma(v)| >= 2`
/// contribute (a single-successor vertex can never reveal meshing).
pub fn meshing_miss_probability(topology: &MultipathTopology, i: usize, phi: u32) -> f64 {
    assert!(phi >= 2, "meshing test requires phi >= 2");
    let wi = topology.hop(i).len();
    let wj = topology.hop(i + 1).len();
    let forward = wi >= wj;
    let mut p = 1.0;
    if forward {
        for &v in topology.hop(i) {
            let k = topology.out_degree(i, v);
            if k >= 2 {
                p /= (k as f64).powi(phi as i32 - 1);
            }
        }
    } else {
        for &v in topology.hop(i + 1) {
            let k = topology.in_degree(i + 1, v);
            if k >= 2 {
                p /= (k as f64).powi(phi as i32 - 1);
            }
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::addr;

    /// Simple 1-2-1 diamond.
    fn simplest() -> MultipathTopology {
        let mut b = MultipathTopology::builder();
        b.add_hop([addr(0, 0)]);
        b.add_hop([addr(1, 0), addr(1, 1)]);
        b.add_hop([addr(2, 0)]);
        b.connect_unmeshed(0);
        b.connect_unmeshed(1);
        b.build().unwrap()
    }

    /// The Fig. 1 unmeshed diamond: 1-4-2-1 with single successors.
    fn fig1_unmeshed() -> MultipathTopology {
        let mut b = MultipathTopology::builder();
        b.add_hop([addr(0, 0)]);
        b.add_hop([addr(1, 0), addr(1, 1), addr(1, 2), addr(1, 3)]);
        b.add_hop([addr(2, 0), addr(2, 1)]);
        b.add_hop([addr(3, 0)]);
        b.connect_unmeshed(0);
        // 4 -> 2: two hop-1 vertices feed each hop-2 vertex, out-degree 1.
        b.add_edge(1, addr(1, 0), addr(2, 0));
        b.add_edge(1, addr(1, 1), addr(2, 0));
        b.add_edge(1, addr(1, 2), addr(2, 1));
        b.add_edge(1, addr(1, 3), addr(2, 1));
        b.connect_unmeshed(2);
        b.build().unwrap()
    }

    /// The Fig. 1 meshed diamond: each hop-1 vertex has both hop-2
    /// vertices as successors.
    fn fig1_meshed() -> MultipathTopology {
        let mut b = MultipathTopology::builder();
        b.add_hop([addr(0, 0)]);
        b.add_hop([addr(1, 0), addr(1, 1), addr(1, 2), addr(1, 3)]);
        b.add_hop([addr(2, 0), addr(2, 1)]);
        b.add_hop([addr(3, 0)]);
        b.connect_unmeshed(0);
        b.connect_full(1);
        b.connect_unmeshed(2);
        b.build().unwrap()
    }

    #[test]
    fn finds_single_diamond() {
        let t = simplest();
        let diamonds = find_diamonds(&t);
        assert_eq!(diamonds.len(), 1);
        assert_eq!(diamonds[0].divergence_hop, 0);
        assert_eq!(diamonds[0].convergence_hop, 2);
    }

    #[test]
    fn no_diamond_on_linear_path() {
        let mut b = MultipathTopology::builder();
        b.add_hop([addr(0, 0)]);
        b.add_hop([addr(1, 0)]);
        b.add_hop([addr(2, 0)]);
        b.connect_unmeshed(0);
        b.connect_unmeshed(1);
        let t = b.build().unwrap();
        assert!(find_diamonds(&t).is_empty());
    }

    #[test]
    fn two_diamonds_in_sequence() {
        let mut b = MultipathTopology::builder();
        b.add_hop([addr(0, 0)]);
        b.add_hop([addr(1, 0), addr(1, 1)]);
        b.add_hop([addr(2, 0)]);
        b.add_hop([addr(3, 0), addr(3, 1), addr(3, 2)]);
        b.add_hop([addr(4, 0)]);
        for i in 0..4 {
            b.connect_unmeshed(i);
        }
        let t = b.build().unwrap();
        let diamonds = find_diamonds(&t);
        assert_eq!(diamonds.len(), 2);
        let m0 = diamond_metrics(&t, &diamonds[0]);
        let m1 = diamond_metrics(&t, &diamonds[1]);
        assert_eq!(m0.max_width, 2);
        assert_eq!(m1.max_width, 3);
        assert_eq!(m0.max_length, 2);
        assert_eq!(m1.max_length, 2);
    }

    #[test]
    fn simplest_metrics() {
        let t = simplest();
        let m = all_diamond_metrics(&t).pop().unwrap();
        assert_eq!(m.max_width, 2);
        assert_eq!(m.max_length, 2);
        assert_eq!(m.min_length, 2);
        assert_eq!(m.max_width_asymmetry, 0);
        assert!(!m.is_meshed());
        assert_eq!(m.max_probability_difference, 0.0);
        assert!(m.is_width_symmetric());
        assert_eq!(m.key.divergence, addr(0, 0));
        assert_eq!(m.key.convergence, addr(2, 0));
    }

    #[test]
    fn fig1_unmeshed_is_unmeshed_and_uniform() {
        let t = fig1_unmeshed();
        let m = all_diamond_metrics(&t).pop().unwrap();
        assert_eq!(m.max_width, 4);
        assert_eq!(m.max_length, 3);
        assert!(!m.is_meshed());
        assert_eq!(m.max_width_asymmetry, 0);
        assert_eq!(m.max_probability_difference, 0.0);
    }

    #[test]
    fn fig1_meshed_is_meshed_but_uniform() {
        let t = fig1_meshed();
        let m = all_diamond_metrics(&t).pop().unwrap();
        assert_eq!(m.max_width, 4);
        assert!(m.is_meshed());
        assert_eq!(m.meshed_hop_pairs, 1);
        assert_eq!(m.total_hop_pairs, 3);
        // Full bipartite wiring keeps the hop uniform.
        assert_eq!(m.max_probability_difference, 0.0);
        // Equal out-degrees/in-degrees: zero width asymmetry.
        assert_eq!(m.max_width_asymmetry, 0);
    }

    #[test]
    fn meshing_cases_by_relative_width() {
        // Case: hop i narrower than hop i+1, some in-degree 2 -> meshed.
        let mut b = MultipathTopology::builder();
        b.add_hop([addr(0, 0)]);
        b.add_hop([addr(1, 0), addr(1, 1)]);
        b.add_hop([addr(2, 0), addr(2, 1), addr(2, 2)]);
        b.add_hop([addr(3, 0)]);
        b.connect_unmeshed(0);
        b.add_edge(1, addr(1, 0), addr(2, 0));
        b.add_edge(1, addr(1, 0), addr(2, 1));
        b.add_edge(1, addr(1, 1), addr(2, 1)); // in-degree 2 at (2,1)
        b.add_edge(1, addr(1, 1), addr(2, 2));
        b.connect_unmeshed(2);
        let t = b.build().unwrap();
        assert!(hop_pair_meshed(&t, 1));

        // Case: wider to narrower with out-degree 1 everywhere -> unmeshed.
        let t2 = fig1_unmeshed();
        assert!(!hop_pair_meshed(&t2, 1));
    }

    #[test]
    fn width_asymmetry_computation() {
        // Divergence fans to 2; vertex A gets 3 successors, vertex B gets 1.
        let mut b = MultipathTopology::builder();
        b.add_hop([addr(0, 0)]);
        b.add_hop([addr(1, 0), addr(1, 1)]);
        b.add_hop([addr(2, 0), addr(2, 1), addr(2, 2), addr(2, 3)]);
        b.add_hop([addr(3, 0)]);
        b.connect_unmeshed(0);
        b.add_edge(1, addr(1, 0), addr(2, 0));
        b.add_edge(1, addr(1, 0), addr(2, 1));
        b.add_edge(1, addr(1, 0), addr(2, 2));
        b.add_edge(1, addr(1, 1), addr(2, 3));
        b.connect_unmeshed(2);
        let t = b.build().unwrap();
        assert_eq!(hop_pair_width_asymmetry(&t, 1), 2); // 3 - 1
        let m = all_diamond_metrics(&t).pop().unwrap();
        assert_eq!(m.max_width_asymmetry, 2);
        // Non-uniform: probabilities 1/6,1/6,1/6 vs 1/2.
        assert!((m.max_probability_difference - (0.5 - 1.0 / 6.0)).abs() < 1e-12);
        assert!(!m.is_width_symmetric());
    }

    #[test]
    fn min_length_shorter_path() {
        // Convergence address also appears at hop 2 (a 2-hop path) while
        // the long path has 3 hops.
        let conv = addr(9, 9);
        let mut b = MultipathTopology::builder();
        b.add_hop([addr(0, 0)]);
        b.add_hop([addr(1, 0), addr(1, 1)]);
        b.add_hop([addr(2, 0), conv]);
        b.add_hop([conv]);
        b.connect_unmeshed(0);
        b.add_edge(1, addr(1, 0), addr(2, 0));
        b.add_edge(1, addr(1, 1), conv);
        b.add_edge(2, addr(2, 0), conv);
        b.add_edge(2, conv, conv);
        let t = b.build().unwrap();
        let m = all_diamond_metrics(&t).pop().unwrap();
        assert_eq!(m.max_length, 3);
        assert_eq!(m.min_length, 2);
    }

    #[test]
    fn meshing_miss_probability_eq1() {
        // Fig. 1 meshed diamond at hop pair (1, 2): wider (4) to narrower
        // (2); every hop-1 vertex has 2 successors.
        let t = fig1_meshed();
        // phi = 2: each of 4 vertices contributes 1/2 -> 1/16.
        assert!((meshing_miss_probability(&t, 1, 2) - 1.0 / 16.0).abs() < 1e-12);
        // phi = 3: 1/2^2 each -> 1/256.
        assert!((meshing_miss_probability(&t, 1, 3) - 1.0 / 256.0).abs() < 1e-12);
        // Unmeshed pair: probability 1 (no vertex with degree >= 2 to catch).
        let u = fig1_unmeshed();
        assert_eq!(meshing_miss_probability(&u, 1, 2), 1.0);
    }

    #[test]
    #[should_panic(expected = "phi >= 2")]
    fn meshing_test_needs_phi_2() {
        let t = simplest();
        let _ = meshing_miss_probability(&t, 0, 1);
    }

    #[test]
    fn diamond_key_star_detection() {
        let k = DiamondKey {
            divergence: crate::star_address(4),
            convergence: addr(5, 0),
        };
        assert!(k.has_star());
        let k2 = DiamondKey {
            divergence: addr(1, 0),
            convergence: addr(5, 0),
        };
        assert!(!k2.has_star());
    }
}
