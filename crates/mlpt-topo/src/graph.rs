//! The hop-structured multipath DAG.
//!
//! [`MultipathTopology`] is the shared vocabulary of the whole workspace:
//! the simulator routes probes through one, the tracing algorithms produce
//! one as their result, and the diamond metrics of the survey are computed
//! over one. Vertices are IPv4 interface addresses grouped by hop (TTL);
//! edges connect adjacent hops.
//!
//! Invariants enforced by [`TopologyBuilder::build`]:
//!
//! * at least two hops (a first hop and the destination);
//! * the last hop contains exactly one vertex (the destination);
//! * every edge references vertices present at its hops;
//! * every non-final-hop vertex has at least one successor;
//! * every non-first-hop vertex has at least one predecessor.
//!
//! Together these guarantee that *every flow from the source reaches the
//! destination* — assumption (1) of the MDA model (no routing changes, all
//! paths converge).

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// Errors detected while building a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// Fewer than two hops.
    TooFewHops,
    /// A hop has no vertices.
    EmptyHop {
        /// Index of the offending hop.
        hop: usize,
    },
    /// The final hop must hold exactly the destination.
    BadFinalHop,
    /// An edge references a vertex that is not present at its hop.
    DanglingEdge {
        /// Hop index of the edge's source side.
        hop: usize,
        /// The offending endpoint.
        addr: Ipv4Addr,
    },
    /// A vertex has no successor (flows entering it are lost).
    NoSuccessor {
        /// Hop of the offending vertex.
        hop: usize,
        /// The vertex.
        addr: Ipv4Addr,
    },
    /// A vertex has no predecessor (it is unreachable).
    NoPredecessor {
        /// Hop of the offending vertex.
        hop: usize,
        /// The vertex.
        addr: Ipv4Addr,
    },
    /// The same vertex appears twice at one hop.
    DuplicateVertex {
        /// Hop of the duplicate.
        hop: usize,
        /// The vertex.
        addr: Ipv4Addr,
    },
    /// A mutation request that the topology cannot honour (hop or vertex
    /// out of range, removing the last branch of a hop, touching the
    /// destination hop, ...).
    BadMutation {
        /// Human-readable rejection reason.
        reason: &'static str,
    },
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::TooFewHops => write!(f, "topology needs at least two hops"),
            TopologyError::EmptyHop { hop } => write!(f, "hop {hop} is empty"),
            TopologyError::BadFinalHop => write!(f, "final hop must contain exactly one vertex"),
            TopologyError::DanglingEdge { hop, addr } => {
                write!(f, "edge at hop {hop} references absent vertex {addr}")
            }
            TopologyError::NoSuccessor { hop, addr } => {
                write!(f, "vertex {addr} at hop {hop} has no successor")
            }
            TopologyError::NoPredecessor { hop, addr } => {
                write!(f, "vertex {addr} at hop {hop} has no predecessor")
            }
            TopologyError::DuplicateVertex { hop, addr } => {
                write!(f, "vertex {addr} duplicated at hop {hop}")
            }
            TopologyError::BadMutation { reason } => {
                write!(f, "mutation rejected: {reason}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// A validated hop-structured multipath topology.
///
/// Hop indices are zero-based; hop `i` is what a probe with TTL `i + 1`
/// reveals. The last hop holds the destination.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultipathTopology {
    hops: Vec<Vec<Ipv4Addr>>,
    /// `edges[i]` maps a hop-`i` vertex to its hop-`i+1` successors.
    edges: Vec<BTreeMap<Ipv4Addr, BTreeSet<Ipv4Addr>>>,
    /// `reverse[i]` maps a hop-`i+1` vertex to its hop-`i` predecessors.
    reverse: Vec<BTreeMap<Ipv4Addr, BTreeSet<Ipv4Addr>>>,
}

impl MultipathTopology {
    /// Starts building a topology.
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// Number of hops (≥ 2). The destination is at hop `num_hops() - 1`.
    pub fn num_hops(&self) -> usize {
        self.hops.len()
    }

    /// Vertices at hop `i`, in deterministic (insertion) order.
    pub fn hop(&self, i: usize) -> &[Ipv4Addr] {
        &self.hops[i]
    }

    /// All hops.
    pub fn hops(&self) -> &[Vec<Ipv4Addr>] {
        &self.hops
    }

    /// The destination address.
    pub fn destination(&self) -> Ipv4Addr {
        self.hops.last().expect("validated: >= 2 hops")[0]
    }

    /// The TTL at which hop `i` responds.
    pub fn ttl_of_hop(&self, i: usize) -> u8 {
        (i + 1) as u8
    }

    /// True if `addr` is a vertex at hop `i`.
    pub fn contains(&self, hop: usize, addr: Ipv4Addr) -> bool {
        self.hops.get(hop).is_some_and(|h| h.contains(&addr))
    }

    /// Successors of `addr` at hop `i` (vertices at hop `i + 1`).
    pub fn successors(&self, hop: usize, addr: Ipv4Addr) -> &BTreeSet<Ipv4Addr> {
        static EMPTY: std::sync::OnceLock<BTreeSet<Ipv4Addr>> = std::sync::OnceLock::new();
        self.edges
            .get(hop)
            .and_then(|m| m.get(&addr))
            .unwrap_or_else(|| EMPTY.get_or_init(BTreeSet::new))
    }

    /// Predecessors of `addr` at hop `i` (vertices at hop `i - 1`).
    pub fn predecessors(&self, hop: usize, addr: Ipv4Addr) -> &BTreeSet<Ipv4Addr> {
        static EMPTY: std::sync::OnceLock<BTreeSet<Ipv4Addr>> = std::sync::OnceLock::new();
        if hop == 0 {
            return EMPTY.get_or_init(BTreeSet::new);
        }
        self.reverse
            .get(hop - 1)
            .and_then(|m| m.get(&addr))
            .unwrap_or_else(|| EMPTY.get_or_init(BTreeSet::new))
    }

    /// Out-degree of a vertex.
    pub fn out_degree(&self, hop: usize, addr: Ipv4Addr) -> usize {
        self.successors(hop, addr).len()
    }

    /// In-degree of a vertex.
    pub fn in_degree(&self, hop: usize, addr: Ipv4Addr) -> usize {
        self.predecessors(hop, addr).len()
    }

    /// Total number of vertices (summed over hops; an address appearing at
    /// two hops counts twice, since it is two topological vertices).
    pub fn total_vertices(&self) -> usize {
        self.hops.iter().map(Vec::len).sum()
    }

    /// Total number of edges.
    pub fn total_edges(&self) -> usize {
        self.edges
            .iter()
            .map(|m| m.values().map(BTreeSet::len).sum::<usize>())
            .sum()
    }

    /// Iterator over all edges as `(hop, from, to)`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, Ipv4Addr, Ipv4Addr)> + '_ {
        self.edges.iter().enumerate().flat_map(|(i, m)| {
            m.iter()
                .flat_map(move |(&from, tos)| tos.iter().map(move |&to| (i, from, to)))
        })
    }

    /// The set of distinct addresses appearing anywhere in the topology.
    pub fn all_addresses(&self) -> BTreeSet<Ipv4Addr> {
        self.hops.iter().flatten().copied().collect()
    }

    /// Probability, under uniform-at-random per-flow load balancing, that a
    /// probe with a uniformly chosen flow ID reaches each vertex.
    ///
    /// Hop 0 vertices split the unit mass evenly (the source balances over
    /// them uniformly if there are several); afterwards each vertex splits
    /// its mass evenly over its successors. This is the quantity behind the
    /// paper's "maximum probability difference" (Fig. 8) and behind the
    /// definition of a *uniform hop* (every vertex equally likely).
    pub fn reach_probabilities(&self) -> Vec<BTreeMap<Ipv4Addr, f64>> {
        let mut probs: Vec<BTreeMap<Ipv4Addr, f64>> = Vec::with_capacity(self.hops.len());
        let first: BTreeMap<Ipv4Addr, f64> = {
            let n = self.hops[0].len() as f64;
            self.hops[0].iter().map(|&a| (a, 1.0 / n)).collect()
        };
        probs.push(first);
        for i in 1..self.hops.len() {
            let mut layer: BTreeMap<Ipv4Addr, f64> =
                self.hops[i].iter().map(|&a| (a, 0.0)).collect();
            for &u in &self.hops[i - 1] {
                let p_u = probs[i - 1][&u];
                let succs = self.successors(i - 1, u);
                if succs.is_empty() {
                    continue;
                }
                let share = p_u / succs.len() as f64;
                for &v in succs {
                    *layer.get_mut(&v).expect("validated edge target") += share;
                }
            }
            probs.push(layer);
        }
        probs
    }

    /// Length of the shortest hop-path from `from_hop`'s single vertex to
    /// the first hop at which `target` appears, scanning forward. Returns
    /// `None` if `target` never appears after `from_hop`.
    pub fn hops_until(&self, from_hop: usize, target: Ipv4Addr) -> Option<usize> {
        (from_hop + 1..self.hops.len())
            .find(|&i| self.hops[i].contains(&target))
            .map(|i| i - from_hop)
    }

    /// An isomorphic copy with every address shifted by `offset`
    /// (wrapping 32-bit addition), preserving hop order and edges.
    ///
    /// Multi-destination sweeps use this to replicate one canonical
    /// topology into disjoint address blocks, so several lanes of a
    /// shared simulator can serve "the same" topology behind distinct
    /// destinations.
    pub fn translated(&self, offset: u32) -> MultipathTopology {
        let shift = |a: Ipv4Addr| Ipv4Addr::from(u32::from(a).wrapping_add(offset));
        let mut b = TopologyBuilder::default();
        for hop in &self.hops {
            b.add_hop(hop.iter().copied().map(shift));
        }
        for (hop, from, to) in self.edges() {
            b.add_edge(hop, shift(from), shift(to));
        }
        b.build()
            .expect("translation preserves topology invariants")
    }

    /// Re-validates a mutated copy through the builder, so every mutation
    /// below returns a topology satisfying the full invariant set.
    fn rebuilt(
        hops: Vec<Vec<Ipv4Addr>>,
        edges: Vec<BTreeMap<Ipv4Addr, BTreeSet<Ipv4Addr>>>,
    ) -> Result<MultipathTopology, TopologyError> {
        let mut b = TopologyBuilder::default();
        for hop in &hops {
            b.add_hop(hop.iter().copied());
        }
        for (i, m) in edges.iter().enumerate() {
            for (&from, tos) in m {
                for &to in tos {
                    b.add_edge(i, from, to);
                }
            }
        }
        b.build()
    }

    /// The numerically smallest address not yet used anywhere in the
    /// topology and above every existing address — mutations that grow the
    /// graph mint interfaces here, so translated per-lane copies mint into
    /// their own disjoint blocks.
    pub fn next_free_address(&self) -> Ipv4Addr {
        let max = self
            .hops
            .iter()
            .flatten()
            .map(|&a| u32::from(a))
            .max()
            .expect("validated: >= 2 hops");
        Ipv4Addr::from(max.wrapping_add(1))
    }

    /// Route flap: exchanges the successor sets of the vertices at
    /// positions `a` and `b` of hop `hop`. The union of next-hops is
    /// preserved, so the result is always a valid topology — but every
    /// flow transiting either vertex is rerouted.
    pub fn with_swapped_successors(
        &self,
        hop: usize,
        a: usize,
        b: usize,
    ) -> Result<MultipathTopology, TopologyError> {
        if hop + 1 >= self.hops.len() {
            return Err(TopologyError::BadMutation {
                reason: "swap hop out of range (destination hop has no successors)",
            });
        }
        let vertices = &self.hops[hop];
        if a == b || a >= vertices.len() || b >= vertices.len() {
            return Err(TopologyError::BadMutation {
                reason: "swap needs two distinct in-range vertex indices",
            });
        }
        let (va, vb) = (vertices[a], vertices[b]);
        let mut edges = self.edges.clone();
        let sa = edges[hop].remove(&va).unwrap_or_default();
        let sb = edges[hop].remove(&vb).unwrap_or_default();
        edges[hop].insert(va, sb);
        edges[hop].insert(vb, sa);
        Self::rebuilt(self.hops.clone(), edges)
    }

    /// Load-balancer regrow: adds one freshly minted vertex at hop `hop`,
    /// wired in parallel with that hop's first vertex (same predecessors,
    /// same successors) — a new branch appearing in an existing diamond.
    pub fn with_added_branch(&self, hop: usize) -> Result<MultipathTopology, TopologyError> {
        if hop + 1 >= self.hops.len() {
            return Err(TopologyError::BadMutation {
                reason: "cannot grow the destination hop",
            });
        }
        let template = self.hops[hop][0];
        let fresh = self.next_free_address();
        let mut hops = self.hops.clone();
        hops[hop].push(fresh);
        let mut edges = self.edges.clone();
        let succs = self.successors(hop, template).clone();
        edges[hop].insert(fresh, succs);
        if hop > 0 {
            for &p in self.predecessors(hop, template).clone().iter() {
                edges[hop - 1].entry(p).or_default().insert(fresh);
            }
        }
        Self::rebuilt(hops, edges)
    }

    /// Load-balancer shrink: removes the vertex at position `index` of hop
    /// `hop`. Predecessors left with no successor are rewired to the
    /// hop's first remaining vertex, and orphaned successors gain an edge
    /// from it, so all flows still reach the destination.
    pub fn with_removed_branch(
        &self,
        hop: usize,
        index: usize,
    ) -> Result<MultipathTopology, TopologyError> {
        if hop + 1 >= self.hops.len() {
            return Err(TopologyError::BadMutation {
                reason: "cannot shrink the destination hop",
            });
        }
        let vertices = &self.hops[hop];
        if index >= vertices.len() {
            return Err(TopologyError::BadMutation {
                reason: "shrink vertex index out of range",
            });
        }
        if vertices.len() < 2 {
            return Err(TopologyError::BadMutation {
                reason: "cannot remove the last branch of a hop",
            });
        }
        let removed = vertices[index];
        let mut hops = self.hops.clone();
        hops[hop].remove(index);
        let fallback = hops[hop][0];
        let mut edges = self.edges.clone();
        let orphaned_succs = edges[hop].remove(&removed).unwrap_or_default();
        if hop > 0 {
            for set in edges[hop - 1].values_mut() {
                set.remove(&removed);
            }
        }
        // Re-home flows: predecessors that only fed the removed branch
        // fall back to the first surviving sibling ...
        if hop > 0 {
            let starved: Vec<Ipv4Addr> = self.hops[hop - 1]
                .iter()
                .copied()
                .filter(|p| edges[hop - 1].get(p).is_none_or(BTreeSet::is_empty))
                .collect();
            for p in starved {
                edges[hop - 1].entry(p).or_default().insert(fallback);
            }
        }
        // ... and successors only the removed branch fed are adopted by it.
        for s in orphaned_succs {
            let reachable = edges[hop].values().any(|set| set.contains(&s));
            if !reachable {
                edges[hop].entry(fallback).or_default().insert(s);
            }
        }
        Self::rebuilt(hops, edges)
    }

    /// MPLS tunnel reveal: interposes a single freshly minted vertex as a
    /// new hop before index `at`, carrying all traffic between the two
    /// neighbouring hops (the hidden label-switching router becoming
    /// visible). Everything from hop `at` on shifts one TTL deeper.
    pub fn with_inserted_hop(&self, at: usize) -> Result<MultipathTopology, TopologyError> {
        if at == 0 || at >= self.hops.len() {
            return Err(TopologyError::BadMutation {
                reason: "hop insertion point must be between two existing hops",
            });
        }
        let fresh = self.next_free_address();
        let mut hops = self.hops.clone();
        hops.insert(at, vec![fresh]);
        let mut edges = self.edges.clone();
        // The interposed router absorbs the old at-1 -> at wiring: every
        // upstream vertex feeds it, and it fans out to the whole old hop.
        edges[at - 1] = self.hops[at - 1]
            .iter()
            .map(|&p| (p, BTreeSet::from([fresh])))
            .collect();
        edges.insert(
            at,
            std::iter::once((fresh, self.hops[at].iter().copied().collect())).collect(),
        );
        Self::rebuilt(hops, edges)
    }

    /// Tunnel hide: removes the hop at index `at`, splicing its
    /// neighbours together (predecessor -> removed -> successor paths
    /// become direct edges). Everything after `at` shifts one TTL up.
    pub fn with_removed_hop(&self, at: usize) -> Result<MultipathTopology, TopologyError> {
        if at == 0 || at + 1 >= self.hops.len() {
            return Err(TopologyError::BadMutation {
                reason: "only interior hops can be removed",
            });
        }
        let mut hops = self.hops.clone();
        hops.remove(at);
        let mut edges = self.edges.clone();
        let spliced: BTreeMap<Ipv4Addr, BTreeSet<Ipv4Addr>> = self.hops[at - 1]
            .iter()
            .map(|&p| {
                let through: BTreeSet<Ipv4Addr> = self
                    .successors(at - 1, p)
                    .iter()
                    .flat_map(|&v| self.successors(at, v).iter().copied())
                    .collect();
                (p, through)
            })
            .collect();
        edges[at - 1] = spliced;
        edges.remove(at);
        Self::rebuilt(hops, edges)
    }
}

/// Incremental builder for [`MultipathTopology`].
#[derive(Debug, Clone, Default)]
pub struct TopologyBuilder {
    hops: Vec<Vec<Ipv4Addr>>,
    edges: Vec<BTreeMap<Ipv4Addr, BTreeSet<Ipv4Addr>>>,
}

impl TopologyBuilder {
    /// Appends a hop with the given vertices; returns its index.
    pub fn add_hop<I: IntoIterator<Item = Ipv4Addr>>(&mut self, vertices: I) -> usize {
        self.hops.push(vertices.into_iter().collect());
        self.edges.push(BTreeMap::new());
        self.hops.len() - 1
    }

    /// Adds an edge from `from` at `hop` to `to` at `hop + 1`.
    pub fn add_edge(&mut self, hop: usize, from: Ipv4Addr, to: Ipv4Addr) -> &mut Self {
        assert!(hop < self.hops.len(), "edge hop out of range");
        self.edges[hop].entry(from).or_default().insert(to);
        self
    }

    /// Connects every vertex at `hop` to every vertex at `hop + 1`
    /// (full bipartite wiring — the extreme form of meshing).
    pub fn connect_full(&mut self, hop: usize) -> &mut Self {
        assert!(hop + 1 < self.hops.len(), "connect_full hop out of range");
        let (first, second) = (self.hops[hop].clone(), self.hops[hop + 1].clone());
        for from in first {
            for &to in &second {
                self.add_edge(hop, from, to);
            }
        }
        self
    }

    /// Connects hops `hop` → `hop + 1` in a balanced unmeshed pattern:
    /// vertices on the smaller side fan out (or in) evenly, each vertex on
    /// the larger side touching exactly one edge. Requires the larger side
    /// size to be a multiple-free ≥ relationship — any sizes work; the fan
    /// is as even as possible.
    pub fn connect_unmeshed(&mut self, hop: usize) -> &mut Self {
        assert!(
            hop + 1 < self.hops.len(),
            "connect_unmeshed hop out of range"
        );
        let from = self.hops[hop].clone();
        let to = self.hops[hop + 1].clone();
        if from.len() <= to.len() {
            // Fan out: each target gets exactly one predecessor.
            for (j, &t) in to.iter().enumerate() {
                let f = from[j % from.len()];
                self.add_edge(hop, f, t);
            }
        } else {
            // Fan in: each source gets exactly one successor.
            for (j, &f) in from.iter().enumerate() {
                let t = to[j % to.len()];
                self.add_edge(hop, f, t);
            }
        }
        self
    }

    /// Validates and freezes the topology.
    pub fn build(self) -> Result<MultipathTopology, TopologyError> {
        if self.hops.len() < 2 {
            return Err(TopologyError::TooFewHops);
        }
        for (i, hop) in self.hops.iter().enumerate() {
            if hop.is_empty() {
                return Err(TopologyError::EmptyHop { hop: i });
            }
            let mut seen = BTreeSet::new();
            for &a in hop {
                if !seen.insert(a) {
                    return Err(TopologyError::DuplicateVertex { hop: i, addr: a });
                }
            }
        }
        if self.hops.last().expect(">=2 hops").len() != 1 {
            return Err(TopologyError::BadFinalHop);
        }

        // Edge endpoint validity.
        let hop_sets: Vec<BTreeSet<Ipv4Addr>> = self
            .hops
            .iter()
            .map(|h| h.iter().copied().collect())
            .collect();
        for (i, edge_map) in self.edges.iter().enumerate() {
            for (&from, tos) in edge_map {
                if !hop_sets[i].contains(&from) {
                    return Err(TopologyError::DanglingEdge { hop: i, addr: from });
                }
                for &to in tos {
                    if i + 1 >= hop_sets.len() || !hop_sets[i + 1].contains(&to) {
                        return Err(TopologyError::DanglingEdge { hop: i, addr: to });
                    }
                }
            }
        }

        // Reverse index + connectivity checks.
        let mut reverse: Vec<BTreeMap<Ipv4Addr, BTreeSet<Ipv4Addr>>> =
            vec![BTreeMap::new(); self.hops.len().saturating_sub(1)];
        for (i, edge_map) in self.edges.iter().enumerate() {
            for (&from, tos) in edge_map {
                for &to in tos {
                    reverse[i].entry(to).or_default().insert(from);
                }
            }
        }
        for (i, hop) in self.hops.iter().enumerate() {
            if i + 1 < self.hops.len() {
                for &a in hop {
                    if self.edges[i].get(&a).is_none_or(BTreeSet::is_empty) {
                        return Err(TopologyError::NoSuccessor { hop: i, addr: a });
                    }
                }
            }
            if i > 0 {
                for &a in hop {
                    if reverse[i - 1].get(&a).is_none_or(BTreeSet::is_empty) {
                        return Err(TopologyError::NoPredecessor { hop: i, addr: a });
                    }
                }
            }
        }

        Ok(MultipathTopology {
            hops: self.hops,
            edges: self.edges,
            reverse,
        })
    }
}

/// Convenience: sequential test addresses `10.h.x.y` for hop `h`.
/// Used pervasively by tests and the canonical topologies.
pub fn addr(hop: usize, index: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, hop as u8, (index / 256) as u8, (index % 256) as u8)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1-2-1: the simplest possible diamond (Sec. 3's validation topology).
    fn simplest() -> MultipathTopology {
        let mut b = MultipathTopology::builder();
        b.add_hop([addr(0, 0)]);
        b.add_hop([addr(1, 0), addr(1, 1)]);
        b.add_hop([addr(2, 0)]);
        b.add_edge(0, addr(0, 0), addr(1, 0));
        b.add_edge(0, addr(0, 0), addr(1, 1));
        b.add_edge(1, addr(1, 0), addr(2, 0));
        b.add_edge(1, addr(1, 1), addr(2, 0));
        b.build().unwrap()
    }

    #[test]
    fn simplest_diamond_shape() {
        let t = simplest();
        assert_eq!(t.num_hops(), 3);
        assert_eq!(t.hop(1).len(), 2);
        assert_eq!(t.destination(), addr(2, 0));
        assert_eq!(t.total_vertices(), 4);
        assert_eq!(t.total_edges(), 4);
        assert_eq!(t.out_degree(0, addr(0, 0)), 2);
        assert_eq!(t.in_degree(2, addr(2, 0)), 2);
        assert_eq!(t.in_degree(0, addr(0, 0)), 0);
    }

    #[test]
    fn reach_probabilities_uniform_split() {
        let t = simplest();
        let probs = t.reach_probabilities();
        assert_eq!(probs[0][&addr(0, 0)], 1.0);
        assert!((probs[1][&addr(1, 0)] - 0.5).abs() < 1e-12);
        assert!((probs[1][&addr(1, 1)] - 0.5).abs() < 1e-12);
        assert!((probs[2][&addr(2, 0)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn asymmetric_fanout_probabilities() {
        // Divergence with 2 successors; one of them fans out to 2 more.
        let mut b = MultipathTopology::builder();
        b.add_hop([addr(0, 0)]);
        b.add_hop([addr(1, 0), addr(1, 1)]);
        b.add_hop([addr(2, 0), addr(2, 1), addr(2, 2)]);
        b.add_hop([addr(3, 0)]);
        b.add_edge(0, addr(0, 0), addr(1, 0));
        b.add_edge(0, addr(0, 0), addr(1, 1));
        b.add_edge(1, addr(1, 0), addr(2, 0));
        b.add_edge(1, addr(1, 0), addr(2, 1));
        b.add_edge(1, addr(1, 1), addr(2, 2));
        b.add_edge(2, addr(2, 0), addr(3, 0));
        b.add_edge(2, addr(2, 1), addr(3, 0));
        b.add_edge(2, addr(2, 2), addr(3, 0));
        let t = b.build().unwrap();
        let probs = t.reach_probabilities();
        assert!((probs[2][&addr(2, 0)] - 0.25).abs() < 1e-12);
        assert!((probs[2][&addr(2, 1)] - 0.25).abs() < 1e-12);
        assert!((probs[2][&addr(2, 2)] - 0.50).abs() < 1e-12);
    }

    #[test]
    fn builder_rejects_too_few_hops() {
        let mut b = MultipathTopology::builder();
        b.add_hop([addr(0, 0)]);
        assert_eq!(b.build().unwrap_err(), TopologyError::TooFewHops);
    }

    #[test]
    fn builder_rejects_multi_vertex_final_hop() {
        let mut b = MultipathTopology::builder();
        b.add_hop([addr(0, 0)]);
        b.add_hop([addr(1, 0), addr(1, 1)]);
        b.add_edge(0, addr(0, 0), addr(1, 0));
        b.add_edge(0, addr(0, 0), addr(1, 1));
        assert_eq!(b.build().unwrap_err(), TopologyError::BadFinalHop);
    }

    #[test]
    fn builder_rejects_successorless_vertex() {
        let mut b = MultipathTopology::builder();
        b.add_hop([addr(0, 0)]);
        b.add_hop([addr(1, 0), addr(1, 1)]);
        b.add_hop([addr(2, 0)]);
        b.add_edge(0, addr(0, 0), addr(1, 0));
        b.add_edge(0, addr(0, 0), addr(1, 1));
        b.add_edge(1, addr(1, 0), addr(2, 0));
        // addr(1,1) has no successor: a flow reaching it would be lost.
        assert_eq!(
            b.build().unwrap_err(),
            TopologyError::NoSuccessor {
                hop: 1,
                addr: addr(1, 1)
            }
        );
    }

    #[test]
    fn builder_rejects_unreachable_vertex() {
        let mut b = MultipathTopology::builder();
        b.add_hop([addr(0, 0)]);
        b.add_hop([addr(1, 0), addr(1, 1)]);
        b.add_hop([addr(2, 0)]);
        b.add_edge(0, addr(0, 0), addr(1, 0));
        b.add_edge(1, addr(1, 0), addr(2, 0));
        b.add_edge(1, addr(1, 1), addr(2, 0));
        assert_eq!(
            b.build().unwrap_err(),
            TopologyError::NoPredecessor {
                hop: 1,
                addr: addr(1, 1)
            }
        );
    }

    #[test]
    fn builder_rejects_dangling_edge() {
        let mut b = MultipathTopology::builder();
        b.add_hop([addr(0, 0)]);
        b.add_hop([addr(1, 0)]);
        b.add_edge(0, addr(0, 0), addr(9, 9));
        assert!(matches!(
            b.build().unwrap_err(),
            TopologyError::DanglingEdge { .. }
        ));
    }

    #[test]
    fn builder_rejects_duplicate_vertex() {
        let mut b = MultipathTopology::builder();
        b.add_hop([addr(0, 0), addr(0, 0)]);
        b.add_hop([addr(1, 0)]);
        b.add_edge(0, addr(0, 0), addr(1, 0));
        assert!(matches!(
            b.build().unwrap_err(),
            TopologyError::DuplicateVertex { .. }
        ));
    }

    #[test]
    fn connect_unmeshed_even_fan() {
        let mut b = MultipathTopology::builder();
        b.add_hop([addr(0, 0)]);
        b.add_hop([addr(1, 0), addr(1, 1)]);
        b.add_hop([addr(2, 0), addr(2, 1), addr(2, 2), addr(2, 3)]);
        b.add_hop([addr(3, 0)]);
        b.connect_unmeshed(0);
        b.connect_unmeshed(1);
        b.connect_unmeshed(2);
        let t = b.build().unwrap();
        // 2 -> 4: each hop-1 vertex has exactly 2 successors; every hop-2
        // vertex has in-degree 1 (no meshing).
        for &v in t.hop(1) {
            assert_eq!(t.out_degree(1, v), 2);
        }
        for &v in t.hop(2) {
            assert_eq!(t.in_degree(2, v), 1);
        }
    }

    #[test]
    fn connect_full_meshes() {
        let mut b = MultipathTopology::builder();
        b.add_hop([addr(0, 0)]);
        b.add_hop([addr(1, 0), addr(1, 1)]);
        b.add_hop([addr(2, 0), addr(2, 1)]);
        b.add_hop([addr(3, 0)]);
        b.connect_unmeshed(0);
        b.connect_full(1);
        b.connect_unmeshed(2);
        let t = b.build().unwrap();
        assert_eq!(t.out_degree(1, addr(1, 0)), 2);
        assert_eq!(t.in_degree(2, addr(2, 1)), 2);
    }

    #[test]
    fn edges_iterator_consistent() {
        let t = simplest();
        let edges: Vec<_> = t.edges().collect();
        assert_eq!(edges.len(), t.total_edges());
        assert!(edges.contains(&(0, addr(0, 0), addr(1, 0))));
        assert!(edges.contains(&(1, addr(1, 1), addr(2, 0))));
    }

    #[test]
    fn hops_until_finds_first_occurrence() {
        let t = simplest();
        assert_eq!(t.hops_until(0, addr(2, 0)), Some(2));
        assert_eq!(t.hops_until(0, addr(1, 1)), Some(1));
        assert_eq!(t.hops_until(1, addr(1, 1)), None);
    }

    #[test]
    fn clone_preserves_structure() {
        let t = simplest();
        let u = t.clone();
        assert_eq!(t, u);
        assert_eq!(u.total_edges(), 4);
    }

    /// 1-2-2-1 unmeshed: hop-1 vertices have distinct single successors,
    /// so a successor swap reroutes every flow through them.
    fn unmeshed() -> MultipathTopology {
        let mut b = MultipathTopology::builder();
        b.add_hop([addr(0, 0)]);
        b.add_hop([addr(1, 0), addr(1, 1)]);
        b.add_hop([addr(2, 0), addr(2, 1)]);
        b.add_hop([addr(3, 0)]);
        b.connect_unmeshed(0);
        b.connect_unmeshed(1);
        b.connect_unmeshed(2);
        b.build().unwrap()
    }

    #[test]
    fn swap_successors_reroutes_and_validates() {
        let t = unmeshed();
        let old_succ_0: Vec<_> = t.successors(1, addr(1, 0)).iter().copied().collect();
        let old_succ_1: Vec<_> = t.successors(1, addr(1, 1)).iter().copied().collect();
        assert_ne!(old_succ_0, old_succ_1);
        let m = t.with_swapped_successors(1, 0, 1).unwrap();
        assert_eq!(
            m.successors(1, addr(1, 0))
                .iter()
                .copied()
                .collect::<Vec<_>>(),
            old_succ_1
        );
        assert_eq!(
            m.successors(1, addr(1, 1))
                .iter()
                .copied()
                .collect::<Vec<_>>(),
            old_succ_0
        );
        // Swapping back restores the original topology exactly.
        assert_eq!(m.with_swapped_successors(1, 0, 1).unwrap(), t);
        assert!(matches!(
            t.with_swapped_successors(1, 0, 0),
            Err(TopologyError::BadMutation { .. })
        ));
        assert!(matches!(
            t.with_swapped_successors(3, 0, 1),
            Err(TopologyError::BadMutation { .. })
        ));
    }

    #[test]
    fn added_branch_parallels_first_vertex() {
        let t = unmeshed();
        let m = t.with_added_branch(1).unwrap();
        assert_eq!(m.hop(1).len(), 3);
        let fresh = t.next_free_address();
        assert!(m.contains(1, fresh));
        assert_eq!(m.successors(1, fresh), m.successors(1, addr(1, 0)));
        assert_eq!(m.predecessors(1, fresh), m.predecessors(1, addr(1, 0)));
        assert!(matches!(
            t.with_added_branch(3),
            Err(TopologyError::BadMutation { .. })
        ));
    }

    #[test]
    fn removed_branch_rewires_orphans() {
        let t = unmeshed();
        let m = t.with_removed_branch(1, 1).unwrap();
        assert_eq!(m.hop(1), &[addr(1, 0)]);
        // addr(2,1) was fed only by the removed vertex: adopted by the
        // surviving sibling so it stays reachable.
        assert!(m.successors(1, addr(1, 0)).contains(&addr(2, 1)));
        assert_eq!(m.num_hops(), 4);
        // A single-vertex hop cannot shrink further.
        assert!(matches!(
            m.with_removed_branch(1, 0),
            Err(TopologyError::BadMutation { .. })
        ));
    }

    #[test]
    fn inserted_hop_interposes_single_router() {
        let t = unmeshed();
        let m = t.with_inserted_hop(2).unwrap();
        assert_eq!(m.num_hops(), 5);
        let fresh = t.next_free_address();
        assert_eq!(m.hop(2), &[fresh]);
        for &p in m.hop(1) {
            assert_eq!(
                m.successors(1, p).iter().copied().collect::<Vec<_>>(),
                vec![fresh]
            );
        }
        assert_eq!(m.successors(2, fresh).len(), t.hop(2).len());
        assert_eq!(m.destination(), t.destination());
        assert!(matches!(
            t.with_inserted_hop(0),
            Err(TopologyError::BadMutation { .. })
        ));
    }

    #[test]
    fn removed_hop_splices_neighbours() {
        let t = unmeshed();
        let grown = t.with_inserted_hop(2).unwrap();
        let back = grown.with_removed_hop(2).unwrap();
        // Insert-then-remove composes the bipartite wiring, so every
        // hop-1 vertex now reaches everything the interposed router fed.
        assert_eq!(back.num_hops(), 4);
        for &p in back.hop(1) {
            assert_eq!(back.successors(1, p).len(), t.hop(2).len());
        }
        assert_eq!(back.destination(), t.destination());
        assert!(matches!(
            t.with_removed_hop(3),
            Err(TopologyError::BadMutation { .. })
        ));
    }

    #[test]
    fn mutations_preserve_invariants_under_composition() {
        let mut t = unmeshed();
        t = t.with_added_branch(1).unwrap();
        t = t.with_inserted_hop(3).unwrap();
        t = t.with_swapped_successors(1, 0, 2).unwrap();
        t = t.with_removed_branch(2, 0).unwrap();
        t = t.with_removed_hop(1).unwrap();
        // Every surviving vertex still reaches the destination: rebuilt()
        // validated connectivity, so reach probabilities sum to 1.
        let probs = t.reach_probabilities();
        let total: f64 = probs.last().unwrap().values().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
