//! Multipath topology model: hop-structured DAGs, diamonds and metrics.
//!
//! Per-flow load-balanced routes between a source and a destination form a
//! directed acyclic graph organised in *hops*: the set of interfaces that
//! answer probes at a given TTL. This crate provides:
//!
//! * [`graph`] — [`MultipathTopology`]: the hop-structured DAG itself, with
//!   a validating builder, successor/predecessor queries and
//!   reach-probability analysis under uniform load balancing.
//! * [`diamond`] — diamond extraction and every diamond metric the paper
//!   defines (Fig. 6): maximum width, maximum length, maximum width
//!   asymmetry, meshing of hop pairs and the ratio of meshed hops, plus
//!   uniformity analysis (Figs. 7–9).
//! * [`canonical`] — the specific topologies the paper uses in its worked
//!   examples and simulations (Fig. 1's unmeshed/meshed diamonds, the four
//!   Sec. 2.4.1 topologies, the simplest diamond of Sec. 3).
//! * [`router`] — router-level overlays: alias ground truth, collapsing an
//!   IP-level topology to the router level, as the multilevel tracer and
//!   the Sec. 5.2 survey do.
//!
//! A topology is *interface-level*: vertices are IPv4 addresses. The same
//! address may appear at several hops (this is how unequal-length paths
//! through a diamond manifest in hop-structured traces). Edges connect
//! adjacent hops only.

pub mod canonical;
pub mod diamond;
pub mod graph;
pub mod render;
pub mod router;

pub use diamond::{Diamond, DiamondKey, DiamondMetrics};
pub use graph::{MultipathTopology, TopologyBuilder, TopologyError};
pub use render::render_ascii;
pub use router::{RouterId, RouterMap};

use std::net::Ipv4Addr;

/// Reserved address prefix for non-responding ("star") hops: when a trace
/// cannot elicit any response at a TTL, the hop is represented by a star
/// placeholder so diamond accounting can distinguish star-delimited
/// diamonds, as the paper's survey does (Sec. 5).
pub const STAR_PREFIX: [u8; 2] = [255, 255];

/// Builds the star placeholder address for a given TTL.
pub fn star_address(ttl: u8) -> Ipv4Addr {
    Ipv4Addr::new(STAR_PREFIX[0], STAR_PREFIX[1], 255, ttl)
}

/// True if an address is a star placeholder.
pub fn is_star(addr: Ipv4Addr) -> bool {
    let o = addr.octets();
    o[0] == STAR_PREFIX[0] && o[1] == STAR_PREFIX[1] && o[2] == 255
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_addresses_are_stars() {
        for ttl in [0u8, 1, 30, 255] {
            assert!(is_star(star_address(ttl)));
        }
    }

    #[test]
    fn normal_addresses_are_not_stars() {
        assert!(!is_star(Ipv4Addr::new(10, 0, 0, 1)));
        assert!(!is_star(Ipv4Addr::new(255, 255, 0, 1)));
    }

    #[test]
    fn star_addresses_distinct_per_ttl() {
        assert_ne!(star_address(3), star_address(4));
    }
}
