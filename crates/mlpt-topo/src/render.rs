//! ASCII rendering of multipath topologies.
//!
//! A quick visual of a topology's shape — hop widths, diamond spans,
//! meshing and asymmetry annotations — for CLI output and examples:
//!
//! ```text
//! ttl  1  o                    divergence
//! ttl  2  o o o o              4 wide
//! ttl  3  o o                  2 wide  [meshed above]
//! ttl  4  o                    convergence (destination)
//! ```

use crate::diamond::{find_diamonds, hop_pair_meshed, hop_pair_width_asymmetry};
use crate::graph::MultipathTopology;
use crate::is_star;

/// Renders the topology as fixed-width ASCII art, one line per hop.
pub fn render_ascii(topology: &MultipathTopology) -> String {
    let diamonds = find_diamonds(topology);
    let mut out = String::new();
    let max_drawn = 24usize;

    for i in 0..topology.num_hops() {
        let hop = topology.hop(i);
        let width = hop.len();
        let stars = hop.iter().any(|&a| is_star(a));

        // Vertex dots, capped for very wide hops.
        let dots = if width <= max_drawn {
            let symbol = if stars { "*" } else { "o" };
            std::iter::repeat_n(symbol, width)
                .collect::<Vec<_>>()
                .join(" ")
        } else {
            format!("o x {width}")
        };

        // Annotations.
        let mut notes: Vec<String> = Vec::new();
        if i == 0 {
            notes.push("first hop".into());
        }
        if i == topology.num_hops() - 1 {
            notes.push("destination".into());
        }
        for d in &diamonds {
            if i == d.divergence_hop {
                notes.push("divergence".into());
            }
            if i == d.convergence_hop {
                notes.push("convergence".into());
            }
        }
        if width >= 2 {
            notes.push(format!("{width} wide"));
        }
        if i > 0 {
            if hop_pair_meshed(topology, i - 1) {
                notes.push("meshed above".into());
            }
            let asym = hop_pair_width_asymmetry(topology, i - 1);
            if asym > 0 {
                notes.push(format!("asymmetry {asym} above"));
            }
        }

        out.push_str(&format!(
            "ttl {:>3}  {:<width_col$}  {}\n",
            i + 1,
            dots,
            notes.join(", "),
            width_col = 2 * max_drawn.min(12) - 1,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical;

    #[test]
    fn renders_fig1_unmeshed() {
        let art = render_ascii(&canonical::fig1_unmeshed());
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("divergence"));
        assert!(lines[1].contains("o o o o"));
        assert!(lines[1].contains("4 wide"));
        assert!(lines[3].contains("destination"));
        assert!(lines[3].contains("convergence"));
        assert!(!art.contains("meshed"));
    }

    #[test]
    fn renders_meshing_annotation() {
        let art = render_ascii(&canonical::fig1_meshed());
        assert!(art.contains("meshed above"), "{art}");
    }

    #[test]
    fn renders_asymmetry_annotation() {
        let art = render_ascii(&canonical::asymmetric());
        assert!(art.contains("asymmetry 17 above"), "{art}");
    }

    #[test]
    fn wide_hops_capped() {
        let art = render_ascii(&canonical::max_length_2());
        assert!(art.contains("o x 28"), "{art}");
    }

    #[test]
    fn every_hop_rendered() {
        let topo = canonical::meshed();
        let art = render_ascii(&topo);
        assert_eq!(art.lines().count(), topo.num_hops());
        assert!(art.contains("ttl   1"));
    }
}
