//! Router-level overlays: alias ground truth and IP→router collapsing.
//!
//! "Multilevel" route tracing (Sec. 4) resolves the IP interfaces seen at a
//! hop into routers. [`RouterMap`] records which interfaces belong to which
//! router — produced either by the simulator (ground truth) or by the alias
//! resolver (inference) — and [`collapse`] rewrites an interface-level
//! topology into the router-level view: each vertex is replaced by its
//! router's representative address and duplicate vertices at a hop merge.
//! Diamonds re-extracted from the collapsed topology behave exactly as
//! Sec. 5.2 describes: they may stay intact, shrink, split into several
//! smaller diamonds, or disappear into a chain of routers (Table 3).

use crate::graph::{MultipathTopology, TopologyBuilder};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// Opaque router identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RouterId(pub u32);

/// A mapping from interface addresses to routers.
///
/// Addresses not present in the map are treated as routers of their own
/// (singleton alias sets) — exactly how a trace treats interfaces for which
/// alias resolution could not conclude anything.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouterMap {
    assignment: BTreeMap<Ipv4Addr, RouterId>,
}

impl RouterMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a map from explicit alias sets; each set becomes one router.
    pub fn from_alias_sets<I, S>(sets: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: IntoIterator<Item = Ipv4Addr>,
    {
        let mut map = Self::new();
        for (i, set) in sets.into_iter().enumerate() {
            let id = RouterId(i as u32);
            for addr in set {
                map.assign(addr, id);
            }
        }
        map
    }

    /// Assigns `addr` to `router`.
    pub fn assign(&mut self, addr: Ipv4Addr, router: RouterId) {
        self.assignment.insert(addr, router);
    }

    /// The router of `addr`, if assigned.
    pub fn router_of(&self, addr: Ipv4Addr) -> Option<RouterId> {
        self.assignment.get(&addr).copied()
    }

    /// True if two addresses are known aliases of the same router.
    pub fn are_aliases(&self, a: Ipv4Addr, b: Ipv4Addr) -> bool {
        match (self.router_of(a), self.router_of(b)) {
            (Some(ra), Some(rb)) => ra == rb,
            _ => false,
        }
    }

    /// Number of assigned interfaces.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// True if no interface is assigned.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Groups assigned interfaces by router: router → alias set.
    pub fn alias_sets(&self) -> BTreeMap<RouterId, BTreeSet<Ipv4Addr>> {
        let mut sets: BTreeMap<RouterId, BTreeSet<Ipv4Addr>> = BTreeMap::new();
        for (&addr, &router) in &self.assignment {
            sets.entry(router).or_default().insert(addr);
        }
        sets
    }

    /// The "size" of each router — the number of interfaces identified as
    /// belonging to it (the Fig. 12 metric).
    pub fn router_sizes(&self) -> Vec<usize> {
        self.alias_sets().values().map(BTreeSet::len).collect()
    }

    /// Representative address of each router (lowest alias address), used
    /// as the router's vertex identity in collapsed topologies.
    pub fn representatives(&self) -> BTreeMap<RouterId, Ipv4Addr> {
        let mut reps = BTreeMap::new();
        for (&addr, &router) in &self.assignment {
            reps.entry(router)
                .and_modify(|a: &mut Ipv4Addr| {
                    if addr < *a {
                        *a = addr;
                    }
                })
                .or_insert(addr);
        }
        reps
    }

    /// Representative address for one interface: the router representative
    /// if assigned, the address itself otherwise.
    pub fn representative_of(&self, addr: Ipv4Addr) -> Ipv4Addr {
        match self.router_of(addr) {
            Some(router) => self.representatives()[&router],
            None => addr,
        }
    }

    /// Merges two maps through transitive closure on shared addresses: if
    /// an address appears in both, its routers unify. This is the paper's
    /// "aggregated" router view of Fig. 12 (b), built across traces.
    pub fn aggregate(maps: &[RouterMap]) -> RouterMap {
        // Union-find over addresses.
        let mut addrs: BTreeSet<Ipv4Addr> = BTreeSet::new();
        for m in maps {
            addrs.extend(m.assignment.keys().copied());
        }
        let index: BTreeMap<Ipv4Addr, usize> =
            addrs.iter().enumerate().map(|(i, &a)| (a, i)).collect();
        let mut parent: Vec<usize> = (0..addrs.len()).collect();

        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }

        for m in maps {
            for set in m.alias_sets().values() {
                let mut iter = set.iter();
                if let Some(&first) = iter.next() {
                    let fi = index[&first];
                    for &other in iter {
                        let oi = index[&other];
                        let (ra, rb) = (find(&mut parent, fi), find(&mut parent, oi));
                        if ra != rb {
                            parent[ra] = rb;
                        }
                    }
                }
            }
        }

        let mut groups: BTreeMap<usize, BTreeSet<Ipv4Addr>> = BTreeMap::new();
        for (&addr, &i) in &index {
            let root = find(&mut parent, i);
            groups.entry(root).or_default().insert(addr);
        }
        RouterMap::from_alias_sets(groups.into_values())
    }
}

/// Collapses an interface-level topology to the router level.
///
/// Each vertex is replaced by its router representative; vertices at a hop
/// that share a router merge into one vertex, and their edges merge too.
pub fn collapse(topology: &MultipathTopology, routers: &RouterMap) -> MultipathTopology {
    let reps: BTreeMap<Ipv4Addr, Ipv4Addr> = topology
        .all_addresses()
        .into_iter()
        .map(|a| (a, routers.representative_of(a)))
        .collect();

    let mut b = TopologyBuilder::default();
    for i in 0..topology.num_hops() {
        // Preserve first-appearance order while deduplicating.
        let mut seen = BTreeSet::new();
        let mut hop_vertices = Vec::new();
        for &v in topology.hop(i) {
            let rep = reps[&v];
            if seen.insert(rep) {
                hop_vertices.push(rep);
            }
        }
        b.add_hop(hop_vertices);
    }
    for (hop, from, to) in topology.edges() {
        b.add_edge(hop, reps[&from], reps[&to]);
    }
    b.build()
        .expect("collapsing a valid topology preserves validity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diamond::{all_diamond_metrics, find_diamonds};
    use crate::graph::addr;

    #[test]
    fn alias_sets_and_sizes() {
        let map = RouterMap::from_alias_sets([
            vec![addr(1, 0), addr(1, 1)],
            vec![addr(2, 0), addr(2, 1), addr(2, 2)],
        ]);
        assert_eq!(map.len(), 5);
        assert!(map.are_aliases(addr(1, 0), addr(1, 1)));
        assert!(!map.are_aliases(addr(1, 0), addr(2, 0)));
        let mut sizes = map.router_sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 3]);
    }

    #[test]
    fn unassigned_addresses_are_singletons() {
        let map = RouterMap::new();
        assert_eq!(map.router_of(addr(9, 9)), None);
        assert_eq!(map.representative_of(addr(9, 9)), addr(9, 9));
        assert!(!map.are_aliases(addr(9, 9), addr(9, 9)));
    }

    #[test]
    fn representative_is_lowest_address() {
        let map = RouterMap::from_alias_sets([vec![addr(3, 5), addr(1, 2), addr(2, 9)]]);
        assert_eq!(map.representative_of(addr(3, 5)), addr(1, 2));
        assert_eq!(map.representative_of(addr(1, 2)), addr(1, 2));
    }

    /// A 1-2-1 diamond whose two middle interfaces belong to one router:
    /// collapsing must dissolve the diamond entirely (Table 3 case 4).
    #[test]
    fn collapse_dissolves_single_router_diamond() {
        let mut b = MultipathTopology::builder();
        b.add_hop([addr(0, 0)]);
        b.add_hop([addr(1, 0), addr(1, 1)]);
        b.add_hop([addr(2, 0)]);
        b.connect_unmeshed(0);
        b.connect_unmeshed(1);
        let t = b.build().unwrap();

        let routers = RouterMap::from_alias_sets([vec![addr(1, 0), addr(1, 1)]]);
        let collapsed = collapse(&t, &routers);
        assert_eq!(collapsed.hop(1).len(), 1);
        assert!(find_diamonds(&collapsed).is_empty());
    }

    /// A 1-4-1 diamond where two of four interfaces share a router:
    /// collapsing shrinks the diamond (Table 3 case 2).
    #[test]
    fn collapse_shrinks_diamond() {
        let mut b = MultipathTopology::builder();
        b.add_hop([addr(0, 0)]);
        b.add_hop([addr(1, 0), addr(1, 1), addr(1, 2), addr(1, 3)]);
        b.add_hop([addr(2, 0)]);
        b.connect_unmeshed(0);
        b.connect_unmeshed(1);
        let t = b.build().unwrap();

        let routers = RouterMap::from_alias_sets([vec![addr(1, 0), addr(1, 1)]]);
        let collapsed = collapse(&t, &routers);
        assert_eq!(collapsed.hop(1).len(), 3);
        let m = all_diamond_metrics(&collapsed).pop().unwrap();
        assert_eq!(m.max_width, 3);
    }

    /// A two-hop-wide diamond where collapsing the middle hop to one router
    /// splits one diamond into two smaller ones (Table 3 case 3).
    #[test]
    fn collapse_splits_diamond() {
        let mut b = MultipathTopology::builder();
        b.add_hop([addr(0, 0)]);
        b.add_hop([addr(1, 0), addr(1, 1)]);
        b.add_hop([addr(2, 0), addr(2, 1)]);
        b.add_hop([addr(3, 0), addr(3, 1)]);
        b.add_hop([addr(4, 0)]);
        for i in 0..4 {
            b.connect_unmeshed(i);
        }
        let t = b.build().unwrap();
        assert_eq!(find_diamonds(&t).len(), 1);

        // Middle hop (hop 2) collapses to a single router.
        let routers = RouterMap::from_alias_sets([vec![addr(2, 0), addr(2, 1)]]);
        let collapsed = collapse(&t, &routers);
        assert_eq!(collapsed.hop(2).len(), 1);
        assert_eq!(find_diamonds(&collapsed).len(), 2);
    }

    #[test]
    fn collapse_identity_without_aliases() {
        let mut b = MultipathTopology::builder();
        b.add_hop([addr(0, 0)]);
        b.add_hop([addr(1, 0), addr(1, 1)]);
        b.add_hop([addr(2, 0)]);
        b.connect_unmeshed(0);
        b.connect_unmeshed(1);
        let t = b.build().unwrap();
        let collapsed = collapse(&t, &RouterMap::new());
        assert_eq!(collapsed, t);
    }

    #[test]
    fn aggregate_transitive_closure() {
        // Trace 1 says {A, B}; trace 2 says {B, C}: aggregated router is
        // {A, B, C}.
        let a = addr(1, 0);
        let b_addr = addr(1, 1);
        let c = addr(1, 2);
        let m1 = RouterMap::from_alias_sets([vec![a, b_addr]]);
        let m2 = RouterMap::from_alias_sets([vec![b_addr, c]]);
        let merged = RouterMap::aggregate(&[m1, m2]);
        assert!(merged.are_aliases(a, c));
        assert_eq!(merged.router_sizes(), vec![3]);
    }

    #[test]
    fn aggregate_disjoint_sets_stay_disjoint() {
        let m1 = RouterMap::from_alias_sets([vec![addr(1, 0), addr(1, 1)]]);
        let m2 = RouterMap::from_alias_sets([vec![addr(2, 0), addr(2, 1)]]);
        let merged = RouterMap::aggregate(&[m1, m2]);
        assert!(!merged.are_aliases(addr(1, 0), addr(2, 0)));
        let mut sizes = merged.router_sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 2]);
    }
}
