//! Property tests on topology invariants and diamond metrics.

use mlpt_topo::diamond::{
    all_diamond_metrics, find_diamonds, hop_pair_meshed, hop_pair_width_asymmetry,
};
use mlpt_topo::graph::addr;
use mlpt_topo::router::collapse;
use mlpt_topo::{MultipathTopology, RouterMap, TopologyBuilder};
use proptest::prelude::*;

/// Strategy: a random valid hop-width profile (1, w1, ..., wn, 1) and a
/// wiring seed; builds the topology with even unmeshed wiring plus
/// seed-dependent extra edges.
fn arb_topology() -> impl Strategy<Value = MultipathTopology> {
    (proptest::collection::vec(1usize..=9, 1..8), any::<u64>()).prop_map(|(mut widths, seed)| {
        widths.insert(0, 1);
        widths.push(1);
        let mut b = TopologyBuilder::default();
        for (h, &w) in widths.iter().enumerate() {
            b.add_hop((0..w).map(|i| addr(h, i)));
        }
        for h in 0..widths.len() - 1 {
            b.connect_unmeshed(h);
            // Extra edges from the seed: maybe mesh this hop pair.
            let roll = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left(h as u32);
            if roll % 3 == 0 && widths[h] >= 2 && widths[h + 1] >= 2 {
                let from = addr(h, (roll % widths[h] as u64) as usize);
                let to = addr(h + 1, ((roll >> 8) % widths[h + 1] as u64) as usize);
                b.add_edge(h, from, to);
            }
        }
        b.build().expect("construction is valid")
    })
}

proptest! {
    /// Reach probabilities are a distribution at every hop.
    #[test]
    fn reach_probabilities_sum_to_one(topo in arb_topology()) {
        for layer in topo.reach_probabilities() {
            let sum: f64 = layer.values().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
            for &p in layer.values() {
                prop_assert!(p > 0.0 && p <= 1.0 + 1e-12);
            }
        }
    }

    /// Every non-final vertex has a successor; every non-first vertex has
    /// a predecessor (builder invariant re-checked through the API).
    #[test]
    fn connectivity_invariants(topo in arb_topology()) {
        for i in 0..topo.num_hops() {
            for &v in topo.hop(i) {
                if i + 1 < topo.num_hops() {
                    prop_assert!(topo.out_degree(i, v) >= 1);
                }
                if i > 0 {
                    prop_assert!(topo.in_degree(i, v) >= 1);
                }
            }
        }
    }

    /// Diamonds partition correctly: divergence/convergence hops are
    /// single-vertex, interiors are all multi-vertex.
    #[test]
    fn diamond_boundaries(topo in arb_topology()) {
        for d in find_diamonds(&topo) {
            prop_assert_eq!(topo.hop(d.divergence_hop).len(), 1);
            prop_assert_eq!(topo.hop(d.convergence_hop).len(), 1);
            for h in d.divergence_hop + 1..d.convergence_hop {
                prop_assert!(topo.hop(h).len() >= 2, "interior hop {h} single");
            }
        }
    }

    /// Metric sanity: width/length bounds, meshed-pair counts, asymmetry
    /// consistency with the pairwise functions.
    #[test]
    fn metric_bounds(topo in arb_topology()) {
        for (d, m) in find_diamonds(&topo).iter().zip(all_diamond_metrics(&topo)) {
            prop_assert_eq!(m.max_length, d.convergence_hop - d.divergence_hop);
            prop_assert!(m.min_length <= m.max_length);
            prop_assert!(m.max_width >= 2);
            prop_assert!(m.meshed_hop_pairs <= m.total_hop_pairs);
            prop_assert!(m.ratio_of_meshed_hops() <= 1.0);
            prop_assert!(m.max_probability_difference >= 0.0);
            prop_assert!(m.max_probability_difference < 1.0);
            let expected_meshed = (d.divergence_hop..d.convergence_hop)
                .filter(|&i| hop_pair_meshed(&topo, i))
                .count();
            prop_assert_eq!(m.meshed_hop_pairs, expected_meshed);
            let expected_asym = (d.divergence_hop..d.convergence_hop)
                .map(|i| hop_pair_width_asymmetry(&topo, i))
                .max()
                .unwrap_or(0);
            prop_assert_eq!(m.max_width_asymmetry, expected_asym);
        }
    }

    /// Zero width asymmetry implies uniform reach probabilities inside
    /// unmeshed diamonds (the MDA-Lite's working assumption).
    #[test]
    fn symmetric_unmeshed_is_uniform(topo in arb_topology()) {
        for m in all_diamond_metrics(&topo) {
            if m.is_width_symmetric() && !m.is_meshed() {
                prop_assert!(
                    m.max_probability_difference < 1e-9,
                    "asym 0, unmeshed, but probability spread {}",
                    m.max_probability_difference
                );
            }
        }
    }

    /// Collapsing with an empty router map is the identity; collapsing
    /// never increases any hop's width and preserves hop count.
    #[test]
    fn collapse_monotone(topo in arb_topology(), group_hop in 0usize..6) {
        prop_assert_eq!(collapse(&topo, &RouterMap::new()), topo.clone());

        // Group the first two vertices of some hop, if it has them.
        let h = group_hop % topo.num_hops();
        if topo.hop(h).len() >= 2 {
            let group = vec![topo.hop(h)[0], topo.hop(h)[1]];
            let map = RouterMap::from_alias_sets([group]);
            let collapsed = collapse(&topo, &map);
            prop_assert_eq!(collapsed.num_hops(), topo.num_hops());
            for i in 0..topo.num_hops() {
                prop_assert!(collapsed.hop(i).len() <= topo.hop(i).len());
            }
            prop_assert_eq!(collapsed.hop(h).len(), topo.hop(h).len() - 1);
        }
    }

    /// The meshing-miss probability (Eq. 1) is a probability and decreases
    /// with phi.
    #[test]
    fn meshing_miss_probability_monotone(topo in arb_topology()) {
        use mlpt_topo::diamond::meshing_miss_probability;
        for i in 0..topo.num_hops() - 1 {
            if topo.hop(i).len() >= 2 && topo.hop(i + 1).len() >= 2 {
                let p2 = meshing_miss_probability(&topo, i, 2);
                let p3 = meshing_miss_probability(&topo, i, 3);
                prop_assert!((0.0..=1.0).contains(&p2));
                prop_assert!(p3 <= p2 + 1e-12, "p3 {p3} > p2 {p2}");
                if hop_pair_meshed(&topo, i) {
                    prop_assert!(p2 < 1.0, "meshed pair must be detectable");
                }
            }
        }
    }
}
