//! The Internet checksum (RFC 1071).
//!
//! Used by the IPv4 header, UDP (over a pseudo-header) and ICMP. The
//! checksum is the 16-bit one's complement of the one's-complement sum of
//! the data viewed as big-endian 16-bit words, padding an odd trailing byte
//! with zero.

/// Incremental one's-complement sum accumulator.
///
/// Sections of a packet (pseudo-header, header, payload) can be fed
/// separately as long as each section has even length, which is how the
/// UDP checksum is computed here.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChecksumAccumulator {
    sum: u32,
}

impl ChecksumAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds bytes into the running sum. A trailing odd byte is padded with
    /// zero, so only the final section may have odd length.
    pub fn push(&mut self, data: &[u8]) {
        let mut chunks = data.chunks_exact(2);
        for chunk in &mut chunks {
            self.sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
        }
        if let [last] = chunks.remainder() {
            self.sum += u32::from(u16::from_be_bytes([*last, 0]));
        }
    }

    /// Feeds a single big-endian 16-bit word.
    pub fn push_u16(&mut self, word: u16) {
        self.sum += u32::from(word);
    }

    /// Finalises: folds carries and takes the one's complement.
    pub fn finish(self) -> u16 {
        let mut sum = self.sum;
        while sum > 0xFFFF {
            sum = (sum & 0xFFFF) + (sum >> 16);
        }
        !(sum as u16)
    }
}

/// One-shot Internet checksum over a byte slice.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut acc = ChecksumAccumulator::new();
    acc.push(data);
    acc.finish()
}

/// Verifies data that *includes* its checksum field: the one's-complement
/// sum over the whole structure must be zero (i.e. `internet_checksum`
/// over it returns 0), except that an all-zero stored checksum in UDP means
/// "no checksum" and is handled by the caller.
pub fn verify(data: &[u8]) -> bool {
    internet_checksum(data) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 1071 section 3 worked example.
    #[test]
    fn rfc1071_example() {
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        // Sum: 0001 + f203 + f4f5 + f6f7 = 2ddf0 -> fold: ddf0 + 2 = ddf2.
        // Checksum is complement: 0x220d.
        assert_eq!(internet_checksum(&data), 0x220d);
    }

    /// Classic IPv4 header example from Wikipedia / RFC 1071 discussions.
    #[test]
    fn ipv4_header_example() {
        let header = [
            0x45u8, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        assert_eq!(internet_checksum(&header), 0xb861);
        // Re-inserting the checksum must verify.
        let mut with = header;
        with[10] = 0xb8;
        with[11] = 0x61;
        assert!(verify(&with));
    }

    #[test]
    fn odd_length_pads_zero() {
        // [0xFF] is summed as 0xFF00.
        assert_eq!(internet_checksum(&[0xFF]), !0xFF00);
    }

    #[test]
    fn empty_is_all_ones() {
        assert_eq!(internet_checksum(&[]), 0xFFFF);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0u16..64).map(|x| (x * 7 % 251) as u8).collect();
        let oneshot = internet_checksum(&data);
        let mut acc = ChecksumAccumulator::new();
        acc.push(&data[..20]);
        acc.push(&data[20..48]);
        acc.push(&data[48..]);
        assert_eq!(acc.finish(), oneshot);
    }

    #[test]
    fn push_u16_matches_bytes() {
        let mut a = ChecksumAccumulator::new();
        a.push(&[0x12, 0x34, 0x56, 0x78]);
        let mut b = ChecksumAccumulator::new();
        b.push_u16(0x1234);
        b.push_u16(0x5678);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn carry_folding() {
        // Many 0xFFFF words force repeated carry folds.
        let data = [0xFFu8; 40];
        let c = internet_checksum(&data);
        // Sum of 20 x 0xFFFF = 0x13FFEC -> fold 0xFFEC + 0x13 = 0xFFFF;
        // complement = 0.
        assert_eq!(c, 0);
    }
}
