//! The Paris flow-identifier discipline.
//!
//! A per-flow load balancer classifies packets by the 5-tuple
//! `(src IP, dst IP, protocol, src port, dst port)`. Classic traceroute
//! varies the destination port per probe, so every probe takes a
//! potentially different path — the measurement artifact Paris Traceroute
//! was invented to fix. Paris Traceroute instead keeps the 5-tuple fixed
//! within a flow and *deliberately* varies exactly one field — here the UDP
//! source port — when the MDA wants to explore different load-balanced
//! paths.
//!
//! [`FlowId`] is the abstract flow identifier the algorithms reason about;
//! this module maps it to and from the wire fields.

use serde::{Deserialize, Serialize};

/// Fixed UDP destination port for probes (the traditional traceroute port).
pub const PARIS_DPORT: u16 = 33434;

/// Base source port: `FlowId(k)` is sent with source port `BASE + k`.
///
/// Chosen so the full 16-bit flow space stays within valid ephemeral ports
/// for reasonable `k` while avoiding well-known ports.
pub const PARIS_BASE_SPORT: u16 = 33434;

/// An abstract flow identifier, the unit the MDA and MDA-Lite manipulate.
///
/// Two probes with the same `FlowId` (and same addresses) traverse the same
/// sequence of per-flow load-balancer choices; probes with different
/// `FlowId`s are hashed independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowId(pub u16);

impl FlowId {
    /// The UDP source port that encodes this flow ID.
    pub fn source_port(self) -> u16 {
        PARIS_BASE_SPORT.wrapping_add(self.0)
    }

    /// Recovers the flow ID from a probe's UDP source port.
    ///
    /// Returns `None` if the port is outside the Paris range (i.e. not one
    /// of our probes).
    pub fn from_source_port(port: u16) -> Option<Self> {
        // Wrapping distance from base; accept the full u16 ring since the
        // mapping is a bijection, but reject the pathological zero port.
        if port == 0 {
            return None;
        }
        Some(FlowId(port.wrapping_sub(PARIS_BASE_SPORT)))
    }

    /// Raw value.
    pub fn value(self) -> u16 {
        self.0
    }
}

impl std::fmt::Display for FlowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "flow#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sport_roundtrip() {
        for k in [0u16, 1, 63, 1000, 40000, u16::MAX] {
            let flow = FlowId(k);
            let recovered = FlowId::from_source_port(flow.source_port()).unwrap();
            assert_eq!(recovered, flow);
        }
    }

    #[test]
    fn distinct_flows_distinct_ports() {
        let a = FlowId(1).source_port();
        let b = FlowId(2).source_port();
        assert_ne!(a, b);
    }

    #[test]
    fn base_flow_is_base_port() {
        assert_eq!(FlowId(0).source_port(), PARIS_BASE_SPORT);
    }

    #[test]
    fn zero_port_rejected() {
        assert_eq!(FlowId::from_source_port(0), None);
    }

    #[test]
    fn display() {
        assert_eq!(FlowId(7).to_string(), "flow#7");
    }
}
