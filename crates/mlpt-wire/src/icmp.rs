//! ICMPv4 messages (RFC 792) with multi-part extensions (RFC 4884) and
//! MPLS label-stack objects (RFC 4950).
//!
//! Route tracing lives on ICMP:
//!
//! * **Time Exceeded** (type 11) replies identify the router interface at
//!   each TTL, quote the offending probe (letting the tool recover its flow
//!   ID and sequence number), and — from MPLS LSRs — may carry an RFC 4884
//!   extension with the MPLS label stack, which the multilevel tracer uses
//!   for alias resolution (Sec. 4.1, "MPLS Labeling").
//! * **Destination Unreachable / Port Unreachable** (type 3 code 3) marks
//!   arrival at the destination of a UDP probe.
//! * **Echo / Echo Reply** (types 8 / 0) implement *direct probing* for the
//!   MIDAR-style comparison of Table 2 and Network Fingerprinting's
//!   ping-style probe.

use crate::checksum::internet_checksum;
use crate::{WireError, WireResult};

/// ICMP message types used by the tracer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IcmpType {
    /// Type 0: Echo Reply.
    EchoReply,
    /// Type 3: Destination Unreachable (code carried separately).
    DestinationUnreachable,
    /// Type 8: Echo Request.
    EchoRequest,
    /// Type 11: Time Exceeded.
    TimeExceeded,
}

impl IcmpType {
    /// Wire value of the type field.
    pub fn wire_value(self) -> u8 {
        match self {
            IcmpType::EchoReply => 0,
            IcmpType::DestinationUnreachable => 3,
            IcmpType::EchoRequest => 8,
            IcmpType::TimeExceeded => 11,
        }
    }

    /// Parses a wire type value.
    pub fn from_wire(value: u8) -> WireResult<Self> {
        match value {
            0 => Ok(IcmpType::EchoReply),
            3 => Ok(IcmpType::DestinationUnreachable),
            8 => Ok(IcmpType::EchoRequest),
            11 => Ok(IcmpType::TimeExceeded),
            other => Err(WireError::Unsupported {
                what: "ICMP type",
                value: u16::from(other),
            }),
        }
    }
}

/// Code for Port Unreachable within Destination Unreachable.
pub const CODE_PORT_UNREACHABLE: u8 = 3;
/// Code for TTL exceeded in transit within Time Exceeded.
pub const CODE_TTL_EXCEEDED: u8 = 0;

/// One entry of an MPLS label stack (RFC 4950 §2.2 / RFC 3032).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MplsLabelStackEntry {
    /// 20-bit label value.
    pub label: u32,
    /// 3-bit traffic class ("EXP") field.
    pub exp: u8,
    /// Bottom-of-stack flag.
    pub bottom_of_stack: bool,
    /// MPLS TTL.
    pub ttl: u8,
}

impl MplsLabelStackEntry {
    /// Creates an entry, masking the label to 20 bits and exp to 3 bits.
    pub fn new(label: u32, exp: u8, bottom_of_stack: bool, ttl: u8) -> Self {
        Self {
            label: label & 0x000F_FFFF,
            exp: exp & 0x07,
            bottom_of_stack,
            ttl,
        }
    }

    /// Emits the 4-byte wire form.
    pub fn emit(&self) -> [u8; 4] {
        let word = (self.label << 12)
            | (u32::from(self.exp) << 9)
            | (u32::from(self.bottom_of_stack) << 8)
            | u32::from(self.ttl);
        word.to_be_bytes()
    }

    /// Parses one 4-byte entry.
    pub fn parse(data: &[u8]) -> WireResult<Self> {
        if data.len() < 4 {
            return Err(WireError::Truncated {
                what: "MPLS label stack entry",
                needed: 4,
                got: data.len(),
            });
        }
        let word = u32::from_be_bytes([data[0], data[1], data[2], data[3]]);
        Ok(Self {
            label: word >> 12,
            exp: ((word >> 9) & 0x7) as u8,
            bottom_of_stack: (word >> 8) & 0x1 == 1,
            ttl: (word & 0xFF) as u8,
        })
    }
}

/// RFC 4884 extension structure carried by Time Exceeded / Destination
/// Unreachable. Only the MPLS label-stack object (class 1, c-type 1) is
/// modelled; unknown objects are preserved opaquely on parse.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IcmpExtensions {
    /// MPLS label stack, outermost first, if present.
    pub mpls_stack: Vec<MplsLabelStackEntry>,
}

impl IcmpExtensions {
    /// True if there is nothing to emit.
    pub fn is_empty(&self) -> bool {
        self.mpls_stack.is_empty()
    }

    /// Emits the extension structure (header + objects) with checksum.
    pub fn emit(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        emit_extensions_into(&self.mpls_stack, &mut buf);
        buf
    }

    /// Parses an extension structure, verifying version and checksum.
    pub fn parse(data: &[u8]) -> WireResult<Self> {
        if data.len() < 4 {
            return Err(WireError::Truncated {
                what: "ICMP extension header",
                needed: 4,
                got: data.len(),
            });
        }
        let version = data[0] >> 4;
        if version != 2 {
            return Err(WireError::Unsupported {
                what: "ICMP extension version",
                value: u16::from(version),
            });
        }
        if internet_checksum(data) != 0 {
            return Err(WireError::BadChecksum {
                what: "ICMP extension",
            });
        }
        let mut ext = IcmpExtensions::default();
        let mut offset = 4;
        while offset + 4 <= data.len() {
            let obj_len = usize::from(u16::from_be_bytes([data[offset], data[offset + 1]]));
            let class = data[offset + 2];
            let ctype = data[offset + 3];
            if obj_len < 4 || offset + obj_len > data.len() {
                return Err(WireError::BadLength {
                    what: "ICMP extension object",
                });
            }
            if class == 1 && ctype == 1 {
                let mut pos = offset + 4;
                while pos + 4 <= offset + obj_len {
                    ext.mpls_stack
                        .push(MplsLabelStackEntry::parse(&data[pos..])?);
                    pos += 4;
                }
            }
            offset += obj_len;
        }
        Ok(ext)
    }
}

/// Appends an RFC 4884 extension structure (header + MPLS object) to a
/// reusable buffer — the allocation-free sibling of
/// [`IcmpExtensions::emit`], taking the stack by slice.
pub fn emit_extensions_into(mpls_stack: &[MplsLabelStackEntry], out: &mut Vec<u8>) {
    let start = out.len();
    // Extension header: version 2 in the top nibble, reserved zero,
    // checksum placeholder.
    out.push(2 << 4);
    out.push(0);
    out.extend_from_slice(&[0, 0]);
    if !mpls_stack.is_empty() {
        let object_len = 4 + 4 * mpls_stack.len();
        out.extend_from_slice(&(object_len as u16).to_be_bytes());
        out.push(1); // class: MPLS Label Stack
        out.push(1); // c-type: incoming stack
        for entry in mpls_stack {
            out.extend_from_slice(&entry.emit());
        }
    }
    let csum = internet_checksum(&out[start..]);
    out[start + 2..start + 4].copy_from_slice(&csum.to_be_bytes());
}

/// Minimum length to which the quoted datagram is padded when RFC 4884
/// extensions follow it.
pub const RFC4884_QUOTE_LEN: usize = 128;

/// A parsed or buildable ICMP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IcmpMessage {
    /// Type 11 code 0: a router dropped the probe because TTL expired.
    TimeExceeded {
        /// The quoted offending datagram (IP header + ≥ 8 payload bytes).
        quoted: Vec<u8>,
        /// RFC 4884 extensions (MPLS stack), if any.
        extensions: IcmpExtensions,
    },
    /// Type 3: the probe reached a host/port that rejected it.
    DestinationUnreachable {
        /// Unreachable code (3 = port unreachable).
        code: u8,
        /// The quoted offending datagram.
        quoted: Vec<u8>,
        /// RFC 4884 extensions, if any.
        extensions: IcmpExtensions,
    },
    /// Type 8: direct probe.
    EchoRequest {
        /// Echo identifier (per-tool value).
        identifier: u16,
        /// Echo sequence number.
        sequence: u16,
        /// Optional payload.
        payload: Vec<u8>,
    },
    /// Type 0: direct probe response.
    EchoReply {
        /// Echo identifier, copied from the request.
        identifier: u16,
        /// Echo sequence, copied from the request.
        sequence: u16,
        /// Payload, copied from the request.
        payload: Vec<u8>,
    },
}

impl IcmpMessage {
    /// The message's ICMP type.
    pub fn icmp_type(&self) -> IcmpType {
        match self {
            IcmpMessage::TimeExceeded { .. } => IcmpType::TimeExceeded,
            IcmpMessage::DestinationUnreachable { .. } => IcmpType::DestinationUnreachable,
            IcmpMessage::EchoRequest { .. } => IcmpType::EchoRequest,
            IcmpMessage::EchoReply { .. } => IcmpType::EchoReply,
        }
    }

    /// Emits the complete ICMP message (header + body) with checksum.
    pub fn emit(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.emit_into(&mut buf);
        buf
    }

    /// Appends the complete ICMP message to a reusable buffer — the
    /// allocation-free path used by batched probe building and the
    /// simulator's reply assembly.
    pub fn emit_into(&self, out: &mut Vec<u8>) {
        match self {
            IcmpMessage::TimeExceeded { quoted, extensions } => {
                emit_error_into(
                    IcmpType::TimeExceeded,
                    CODE_TTL_EXCEEDED,
                    quoted,
                    &extensions.mpls_stack,
                    out,
                );
            }
            IcmpMessage::DestinationUnreachable {
                code,
                quoted,
                extensions,
            } => {
                emit_error_into(
                    IcmpType::DestinationUnreachable,
                    *code,
                    quoted,
                    &extensions.mpls_stack,
                    out,
                );
            }
            IcmpMessage::EchoRequest {
                identifier,
                sequence,
                payload,
            } => emit_echo_into(IcmpType::EchoRequest, *identifier, *sequence, payload, out),
            IcmpMessage::EchoReply {
                identifier,
                sequence,
                payload,
            } => emit_echo_into(IcmpType::EchoReply, *identifier, *sequence, payload, out),
        }
    }

    /// Parses a complete ICMP message, verifying its checksum.
    pub fn parse(data: &[u8]) -> WireResult<Self> {
        if data.len() < 8 {
            return Err(WireError::Truncated {
                what: "ICMP message",
                needed: 8,
                got: data.len(),
            });
        }
        if internet_checksum(data) != 0 {
            return Err(WireError::BadChecksum { what: "ICMP" });
        }
        let icmp_type = IcmpType::from_wire(data[0])?;
        let code = data[1];
        match icmp_type {
            IcmpType::TimeExceeded | IcmpType::DestinationUnreachable => {
                let length_words = usize::from(data[5]);
                let body = &data[8..];
                let (quoted, extensions) = if length_words > 0 {
                    let quote_len = length_words * 4;
                    if quote_len > body.len() {
                        return Err(WireError::BadLength {
                            what: "RFC 4884 length",
                        });
                    }
                    let ext = if body.len() > quote_len {
                        IcmpExtensions::parse(&body[quote_len..])?
                    } else {
                        IcmpExtensions::default()
                    };
                    (body[..quote_len].to_vec(), ext)
                } else {
                    (body.to_vec(), IcmpExtensions::default())
                };
                match icmp_type {
                    IcmpType::TimeExceeded => Ok(IcmpMessage::TimeExceeded { quoted, extensions }),
                    _ => Ok(IcmpMessage::DestinationUnreachable {
                        code,
                        quoted,
                        extensions,
                    }),
                }
            }
            IcmpType::EchoRequest | IcmpType::EchoReply => {
                let identifier = u16::from_be_bytes([data[4], data[5]]);
                let sequence = u16::from_be_bytes([data[6], data[7]]);
                let payload = data[8..].to_vec();
                match icmp_type {
                    IcmpType::EchoRequest => Ok(IcmpMessage::EchoRequest {
                        identifier,
                        sequence,
                        payload,
                    }),
                    _ => Ok(IcmpMessage::EchoReply {
                        identifier,
                        sequence,
                        payload,
                    }),
                }
            }
        }
    }

    /// Reads an Echo Request's fields without copying the payload — the
    /// allocation-free parse the simulator uses on its hot path.
    /// Verifies the checksum like [`IcmpMessage::parse`].
    pub fn parse_echo_request(data: &[u8]) -> WireResult<(u16, u16, &[u8])> {
        if data.len() < 8 {
            return Err(WireError::Truncated {
                what: "ICMP message",
                needed: 8,
                got: data.len(),
            });
        }
        if internet_checksum(data) != 0 {
            return Err(WireError::BadChecksum { what: "ICMP" });
        }
        if IcmpType::from_wire(data[0])? != IcmpType::EchoRequest {
            return Err(WireError::Unsupported {
                what: "ICMP type (expected echo request)",
                value: u16::from(data[0]),
            });
        }
        let identifier = u16::from_be_bytes([data[4], data[5]]);
        let sequence = u16::from_be_bytes([data[6], data[7]]);
        Ok((identifier, sequence, &data[8..]))
    }

    /// For error messages, the quoted datagram; None for echo messages.
    pub fn quoted(&self) -> Option<&[u8]> {
        match self {
            IcmpMessage::TimeExceeded { quoted, .. }
            | IcmpMessage::DestinationUnreachable { quoted, .. } => Some(quoted),
            _ => None,
        }
    }

    /// For error messages, the MPLS stack if one was attached.
    pub fn mpls_stack(&self) -> &[MplsLabelStackEntry] {
        match self {
            IcmpMessage::TimeExceeded { extensions, .. }
            | IcmpMessage::DestinationUnreachable { extensions, .. } => &extensions.mpls_stack,
            _ => &[],
        }
    }
}

/// Appends a complete ICMP error message (Time Exceeded or Destination
/// Unreachable) built from borrowed parts — no intermediate
/// [`IcmpMessage`] or quote buffer required.
pub fn emit_error_into(
    icmp_type: IcmpType,
    code: u8,
    quoted: &[u8],
    mpls_stack: &[MplsLabelStackEntry],
    out: &mut Vec<u8>,
) {
    debug_assert!(matches!(
        icmp_type,
        IcmpType::TimeExceeded | IcmpType::DestinationUnreachable
    ));
    let start = out.len();
    out.push(icmp_type.wire_value());
    out.push(code);
    out.extend_from_slice(&[0, 0]); // checksum placeholder
    if mpls_stack.is_empty() {
        out.extend_from_slice(&[0, 0, 0, 0]); // unused rest-of-header
        out.extend_from_slice(quoted);
    } else {
        // RFC 4884: the length field (in 32-bit words) sits in the
        // second byte of the rest-of-header for both type 3 and 11.
        let padded_len = quoted.len().max(RFC4884_QUOTE_LEN).div_ceil(4) * 4;
        out.push(0);
        out.push((padded_len / 4) as u8);
        out.extend_from_slice(&[0, 0]);
        out.extend_from_slice(quoted);
        let new_len = out.len() + (padded_len - quoted.len());
        out.resize(new_len, 0);
        emit_extensions_into(mpls_stack, out);
    }
    let csum = internet_checksum(&out[start..]);
    out[start + 2..start + 4].copy_from_slice(&csum.to_be_bytes());
}

/// Appends a complete ICMP echo message built from borrowed parts.
pub fn emit_echo_into(
    icmp_type: IcmpType,
    identifier: u16,
    sequence: u16,
    payload: &[u8],
    out: &mut Vec<u8>,
) {
    debug_assert!(matches!(
        icmp_type,
        IcmpType::EchoRequest | IcmpType::EchoReply
    ));
    let start = out.len();
    out.push(icmp_type.wire_value());
    out.push(0);
    out.extend_from_slice(&[0, 0]);
    out.extend_from_slice(&identifier.to_be_bytes());
    out.extend_from_slice(&sequence.to_be_bytes());
    out.extend_from_slice(payload);
    let csum = internet_checksum(&out[start..]);
    out[start + 2..start + 4].copy_from_slice(&csum.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_quote() -> Vec<u8> {
        // A stand-in for "IP header + first 8 bytes" (28 bytes).
        (0u8..28).collect()
    }

    #[test]
    fn time_exceeded_roundtrip_plain() {
        let msg = IcmpMessage::TimeExceeded {
            quoted: sample_quote(),
            extensions: IcmpExtensions::default(),
        };
        let bytes = msg.emit();
        assert_eq!(internet_checksum(&bytes), 0);
        let parsed = IcmpMessage::parse(&bytes).unwrap();
        assert_eq!(parsed, msg);
    }

    #[test]
    fn port_unreachable_roundtrip() {
        let msg = IcmpMessage::DestinationUnreachable {
            code: CODE_PORT_UNREACHABLE,
            quoted: sample_quote(),
            extensions: IcmpExtensions::default(),
        };
        let parsed = IcmpMessage::parse(&msg.emit()).unwrap();
        assert_eq!(parsed, msg);
    }

    #[test]
    fn echo_roundtrip() {
        let msg = IcmpMessage::EchoRequest {
            identifier: 0x1234,
            sequence: 7,
            payload: vec![9, 9, 9],
        };
        let parsed = IcmpMessage::parse(&msg.emit()).unwrap();
        assert_eq!(parsed, msg);
        let reply = IcmpMessage::EchoReply {
            identifier: 0x1234,
            sequence: 7,
            payload: vec![9, 9, 9],
        };
        let parsed = IcmpMessage::parse(&reply.emit()).unwrap();
        assert_eq!(parsed, reply);
    }

    #[test]
    fn mpls_entry_roundtrip() {
        let e = MplsLabelStackEntry::new(0xABCDE, 5, true, 64);
        let parsed = MplsLabelStackEntry::parse(&e.emit()).unwrap();
        assert_eq!(parsed, e);
    }

    #[test]
    fn mpls_entry_masks_oversized_fields() {
        let e = MplsLabelStackEntry::new(0xFFFF_FFFF, 0xFF, false, 1);
        assert_eq!(e.label, 0x000F_FFFF);
        assert_eq!(e.exp, 7);
    }

    #[test]
    fn time_exceeded_with_mpls_roundtrip() {
        let msg = IcmpMessage::TimeExceeded {
            quoted: sample_quote(),
            extensions: IcmpExtensions {
                mpls_stack: vec![
                    MplsLabelStackEntry::new(100, 0, false, 250),
                    MplsLabelStackEntry::new(200, 1, true, 249),
                ],
            },
        };
        let bytes = msg.emit();
        let parsed = IcmpMessage::parse(&bytes).unwrap();
        // The quote comes back padded to 128 bytes per RFC 4884; compare
        // prefix and stack.
        assert_eq!(&parsed.quoted().unwrap()[..28], &sample_quote()[..]);
        assert_eq!(parsed.quoted().unwrap().len(), RFC4884_QUOTE_LEN);
        assert_eq!(parsed.mpls_stack(), msg.mpls_stack());
    }

    #[test]
    fn corrupt_checksum_rejected() {
        let msg = IcmpMessage::EchoReply {
            identifier: 1,
            sequence: 2,
            payload: vec![],
        };
        let mut bytes = msg.emit();
        bytes[4] ^= 0xFF;
        assert!(matches!(
            IcmpMessage::parse(&bytes),
            Err(WireError::BadChecksum { .. })
        ));
    }

    #[test]
    fn extension_checksum_verified() {
        let ext = IcmpExtensions {
            mpls_stack: vec![MplsLabelStackEntry::new(7, 0, true, 255)],
        };
        let mut bytes = ext.emit();
        assert!(IcmpExtensions::parse(&bytes).is_ok());
        bytes[5] ^= 0x01;
        assert!(IcmpExtensions::parse(&bytes).is_err());
    }

    #[test]
    fn unknown_type_rejected() {
        // Type 42 with valid checksum.
        let mut bytes = vec![42u8, 0, 0, 0, 0, 0, 0, 0];
        let csum = internet_checksum(&bytes);
        bytes[2..4].copy_from_slice(&csum.to_be_bytes());
        assert!(matches!(
            IcmpMessage::parse(&bytes),
            Err(WireError::Unsupported { .. })
        ));
    }

    #[test]
    fn truncated_rejected() {
        assert!(matches!(
            IcmpMessage::parse(&[11, 0, 0]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn bad_rfc4884_length_rejected() {
        let msg = IcmpMessage::TimeExceeded {
            quoted: sample_quote(),
            extensions: IcmpExtensions::default(),
        };
        let mut bytes = msg.emit();
        // Claim a quote longer than the body.
        bytes[5] = 200;
        // Fix checksum.
        bytes[2] = 0;
        bytes[3] = 0;
        let csum = internet_checksum(&bytes);
        bytes[2..4].copy_from_slice(&csum.to_be_bytes());
        assert!(matches!(
            IcmpMessage::parse(&bytes),
            Err(WireError::BadLength { .. })
        ));
    }

    #[test]
    fn empty_extension_not_emitted() {
        let msg = IcmpMessage::TimeExceeded {
            quoted: vec![0; 28],
            extensions: IcmpExtensions::default(),
        };
        let bytes = msg.emit();
        // 8 header bytes + 28 quote, no padding, no extension.
        assert_eq!(bytes.len(), 36);
        assert_eq!(bytes[5], 0, "length field must be 0 without extensions");
    }
}
