//! The IPv4 header (RFC 791).
//!
//! Probes and replies in this workspace are plain 20-byte-header IPv4
//! datagrams. The fields the tracing algorithms care about are:
//!
//! * `ttl` — the probe's hop budget, which determines which router answers;
//! * `identification` — Paris Traceroute uses the IP ID of the *probe* to
//!   carry a sequence number (it is echoed back inside the ICMP quote), and
//!   reads the IP ID of *replies* as the router's IP-ID counter for the
//!   Monotonic Bounds Test;
//! * `protocol`, `source`, `destination` — three of the five flow-ID fields.
//!
//! Options are accepted on parse (skipped via IHL) but never emitted.

use crate::checksum::internet_checksum;
use crate::{WireError, WireResult};
use std::net::Ipv4Addr;

/// Protocol number for ICMP.
pub const PROTO_ICMP: u8 = 1;
/// Protocol number for UDP.
pub const PROTO_UDP: u8 = 17;

/// Length of a minimal (option-less) IPv4 header.
pub const MIN_HEADER_LEN: usize = 20;

/// A parsed/buildable IPv4 header. Fields not meaningful to route tracing
/// (DSCP/ECN, fragmentation) are carried but default to zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Differentiated services + ECN byte.
    pub dscp_ecn: u8,
    /// Total datagram length (header + payload) in bytes.
    pub total_length: u16,
    /// Identification field (probe sequence number / reply IP-ID counter).
    pub identification: u16,
    /// Flags (3 bits) and fragment offset (13 bits), packed as on the wire.
    pub flags_fragment: u16,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol (`PROTO_UDP`, `PROTO_ICMP`, ...).
    pub protocol: u8,
    /// Source address.
    pub source: Ipv4Addr,
    /// Destination address.
    pub destination: Ipv4Addr,
}

impl Ipv4Header {
    /// Creates a header for a datagram carrying `payload_len` bytes of the
    /// given protocol. Flags default to Don't Fragment, as Paris Traceroute
    /// probes set it to keep the flow ID stable across paths.
    pub fn new(
        source: Ipv4Addr,
        destination: Ipv4Addr,
        protocol: u8,
        ttl: u8,
        identification: u16,
        payload_len: usize,
    ) -> Self {
        Self {
            dscp_ecn: 0,
            total_length: (MIN_HEADER_LEN + payload_len) as u16,
            identification,
            flags_fragment: 0x4000, // DF
            ttl,
            protocol,
            source,
            destination,
        }
    }

    /// Payload length implied by `total_length`.
    pub fn payload_len(&self) -> usize {
        (self.total_length as usize).saturating_sub(MIN_HEADER_LEN)
    }

    /// Emits the 20-byte header with a correct header checksum.
    pub fn emit(&self) -> [u8; MIN_HEADER_LEN] {
        let mut buf = [0u8; MIN_HEADER_LEN];
        buf[0] = 0x45; // version 4, IHL 5
        buf[1] = self.dscp_ecn;
        buf[2..4].copy_from_slice(&self.total_length.to_be_bytes());
        buf[4..6].copy_from_slice(&self.identification.to_be_bytes());
        buf[6..8].copy_from_slice(&self.flags_fragment.to_be_bytes());
        buf[8] = self.ttl;
        buf[9] = self.protocol;
        // checksum at [10..12] computed over header with zero checksum
        buf[12..16].copy_from_slice(&self.source.octets());
        buf[16..20].copy_from_slice(&self.destination.octets());
        let csum = internet_checksum(&buf);
        buf[10..12].copy_from_slice(&csum.to_be_bytes());
        buf
    }

    /// Appends the 20-byte header to a reusable buffer — the
    /// allocation-free path used by batched probe building.
    pub fn emit_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.emit());
    }

    /// Parses a header from the front of `data`, verifying version and
    /// header checksum. Returns the header and its length in bytes (IHL×4),
    /// so callers can locate the payload even when options are present.
    pub fn parse(data: &[u8]) -> WireResult<(Self, usize)> {
        if data.len() < MIN_HEADER_LEN {
            return Err(WireError::Truncated {
                what: "IPv4 header",
                needed: MIN_HEADER_LEN,
                got: data.len(),
            });
        }
        let version = data[0] >> 4;
        if version != 4 {
            return Err(WireError::Unsupported {
                what: "IP version",
                value: u16::from(version),
            });
        }
        let ihl = usize::from(data[0] & 0x0F) * 4;
        if !(MIN_HEADER_LEN..=60).contains(&ihl) {
            return Err(WireError::BadLength { what: "IPv4 IHL" });
        }
        if data.len() < ihl {
            return Err(WireError::Truncated {
                what: "IPv4 header (options)",
                needed: ihl,
                got: data.len(),
            });
        }
        if internet_checksum(&data[..ihl]) != 0 {
            return Err(WireError::BadChecksum {
                what: "IPv4 header",
            });
        }
        let header = Self {
            dscp_ecn: data[1],
            total_length: u16::from_be_bytes([data[2], data[3]]),
            identification: u16::from_be_bytes([data[4], data[5]]),
            flags_fragment: u16::from_be_bytes([data[6], data[7]]),
            ttl: data[8],
            protocol: data[9],
            source: Ipv4Addr::new(data[12], data[13], data[14], data[15]),
            destination: Ipv4Addr::new(data[16], data[17], data[18], data[19]),
        };
        Ok((header, ihl))
    }

    /// Parses without verifying the checksum. ICMP error messages quote the
    /// offending datagram's header as the *router* saw it — with a
    /// decremented TTL the checksum may have been recomputed or left stale
    /// by sloppy implementations, so quotes are parsed leniently.
    pub fn parse_lenient(data: &[u8]) -> WireResult<(Self, usize)> {
        if data.len() < MIN_HEADER_LEN {
            return Err(WireError::Truncated {
                what: "quoted IPv4 header",
                needed: MIN_HEADER_LEN,
                got: data.len(),
            });
        }
        let version = data[0] >> 4;
        if version != 4 {
            return Err(WireError::Unsupported {
                what: "IP version",
                value: u16::from(version),
            });
        }
        let ihl = usize::from(data[0] & 0x0F) * 4;
        if !(MIN_HEADER_LEN..=60).contains(&ihl) || data.len() < ihl {
            return Err(WireError::BadLength { what: "IPv4 IHL" });
        }
        let header = Self {
            dscp_ecn: data[1],
            total_length: u16::from_be_bytes([data[2], data[3]]),
            identification: u16::from_be_bytes([data[4], data[5]]),
            flags_fragment: u16::from_be_bytes([data[6], data[7]]),
            ttl: data[8],
            protocol: data[9],
            source: Ipv4Addr::new(data[12], data[13], data[14], data[15]),
            destination: Ipv4Addr::new(data[16], data[17], data[18], data[19]),
        };
        Ok((header, ihl))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Header {
        Ipv4Header::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(192, 0, 2, 7),
            PROTO_UDP,
            12,
            0xBEEF,
            8,
        )
    }

    #[test]
    fn roundtrip() {
        let h = sample();
        let bytes = h.emit();
        let (parsed, len) = Ipv4Header::parse(&bytes).unwrap();
        assert_eq!(len, MIN_HEADER_LEN);
        assert_eq!(parsed, h);
    }

    #[test]
    fn checksum_is_valid_on_emit() {
        let bytes = sample().emit();
        assert_eq!(internet_checksum(&bytes), 0);
    }

    #[test]
    fn corrupt_checksum_rejected() {
        let mut bytes = sample().emit();
        bytes[10] ^= 0xFF;
        assert!(matches!(
            Ipv4Header::parse(&bytes),
            Err(WireError::BadChecksum { .. })
        ));
        // Lenient parse accepts it (quoted header case).
        assert!(Ipv4Header::parse_lenient(&bytes).is_ok());
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = sample().emit();
        bytes[0] = 0x65; // version 6
        assert!(matches!(
            Ipv4Header::parse(&bytes),
            Err(WireError::Unsupported { .. })
        ));
    }

    #[test]
    fn truncated_rejected() {
        let bytes = sample().emit();
        assert!(matches!(
            Ipv4Header::parse(&bytes[..10]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn total_length_and_payload() {
        let h = sample();
        assert_eq!(h.total_length, 28);
        assert_eq!(h.payload_len(), 8);
    }

    #[test]
    fn df_flag_set() {
        let h = sample();
        assert_eq!(h.flags_fragment & 0x4000, 0x4000);
    }

    #[test]
    fn parse_with_options() {
        // Build a 24-byte header (IHL=6) by hand: base + 4 option bytes.
        let h = sample();
        let base = h.emit();
        let mut buf = Vec::from(&base[..]);
        buf[0] = 0x46; // IHL 6
        buf.splice(20..20, [1u8, 1, 1, 1]); // NOP options
                                            // Fix the checksum over the widened header.
        buf[10] = 0;
        buf[11] = 0;
        let csum = internet_checksum(&buf[..24]);
        buf[10..12].copy_from_slice(&csum.to_be_bytes());
        let (parsed, len) = Ipv4Header::parse(&buf).unwrap();
        assert_eq!(len, 24);
        assert_eq!(parsed.source, h.source);
    }

    #[test]
    fn bad_ihl_rejected() {
        let mut bytes = sample().emit();
        bytes[0] = 0x44; // IHL 4 (< 5): invalid
        assert!(matches!(
            Ipv4Header::parse(&bytes),
            Err(WireError::BadLength { .. })
        ));
    }
}
