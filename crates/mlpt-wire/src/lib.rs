//! Wire-format substrate: the packets Paris Traceroute actually sends.
//!
//! Multipath route tracing works by crafting UDP probe packets whose
//! *flow identifier* (the 5-tuple a per-flow load balancer hashes) is under
//! the tool's control, and by parsing the ICMP error messages routers send
//! back. This crate implements those formats from scratch:
//!
//! * [`ipv4`] — the IPv4 header (RFC 791), including header checksum.
//! * [`udp`] — the UDP header (RFC 768) with pseudo-header checksum.
//! * [`icmp`] — ICMPv4 Time Exceeded, Destination Unreachable, Echo and
//!   Echo Reply (RFC 792), with RFC 4884 multi-part extensions carrying
//!   RFC 4950 MPLS label-stack objects (used by the multilevel tracer).
//! * [`checksum`] — the Internet checksum (RFC 1071).
//! * [`flow`] — the Paris flow-identifier discipline: how a flow ID maps to
//!   UDP header fields so that varying the flow ID changes the load-balancer
//!   hash while keeping probes identifiable.
//! * [`probe`] — assembling complete probe packets and parsing complete
//!   reply packets, the two operations every prober performs.
//!
//! Design follows the sans-IO style: all types parse from and emit to plain
//! byte slices, carry no sockets, and are usable both against a real raw
//! socket and against the in-process Fakeroute simulator (which is how the
//! rest of the workspace uses them).

pub mod checksum;
pub mod flow;
pub mod icmp;
pub mod ipv4;
pub mod probe;
pub mod transport;
pub mod udp;

pub use flow::{FlowId, PARIS_BASE_SPORT, PARIS_DPORT};
pub use icmp::{IcmpMessage, IcmpType, MplsLabelStackEntry};
pub use ipv4::Ipv4Header;
pub use probe::{
    build_echo_probe, build_echo_probe_into, build_udp_probe, build_udp_probe_into, parse_reply,
    ProbePacket, ReplyKind, ReplyPacket,
};
pub use transport::{
    BatchTransport, PacketBatch, PacketTransport, ReplyBatch, SplitTransport, Synchronous,
};
pub use udp::UdpHeader;

/// Errors arising while parsing or emitting packets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input shorter than the minimum for the structure being parsed.
    Truncated {
        /// What was being parsed.
        what: &'static str,
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// A version / type field had an unsupported value.
    Unsupported {
        /// What was being parsed.
        what: &'static str,
        /// The offending value.
        value: u16,
    },
    /// A checksum did not verify.
    BadChecksum {
        /// Which checksum failed.
        what: &'static str,
    },
    /// A length field is inconsistent with the buffer.
    BadLength {
        /// What was being parsed.
        what: &'static str,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { what, needed, got } => {
                write!(f, "truncated {what}: need {needed} bytes, got {got}")
            }
            WireError::Unsupported { what, value } => {
                write!(f, "unsupported {what}: {value}")
            }
            WireError::BadChecksum { what } => write!(f, "bad {what} checksum"),
            WireError::BadLength { what } => write!(f, "inconsistent length in {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Result alias for wire operations.
pub type WireResult<T> = Result<T, WireError>;
