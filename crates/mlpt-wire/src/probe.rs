//! Complete probe packets and reply parsing — the prober's two verbs.
//!
//! A probe is a full IPv4 datagram: for *indirect probing* (traceroute
//! style) an IPv4+UDP packet whose TTL selects the hop, whose UDP source
//! port carries the [`FlowId`], and whose IP ID carries a sequence number;
//! for *direct probing* (ping style, used by fingerprinting and the
//! MIDAR-style comparison) an IPv4+ICMP Echo Request.
//!
//! A reply is a full IPv4 datagram carrying ICMP. [`parse_reply`] decodes
//! it and — for error messages — digs the original flow ID, TTL and
//! sequence number out of the quoted datagram, exactly as a real tool must.

use crate::flow::{FlowId, PARIS_DPORT};
use crate::icmp::{IcmpMessage, MplsLabelStackEntry, CODE_PORT_UNREACHABLE};
use crate::ipv4::{Ipv4Header, PROTO_ICMP, PROTO_UDP};
use crate::udp::{self, UdpHeader};
use crate::{WireError, WireResult};
use std::net::Ipv4Addr;

/// Payload carried by UDP probes. Real Paris Traceroute carries a small
/// payload it can use to balance the UDP checksum; ours is a fixed tag that
/// also makes probe packets recognisable in hex dumps.
pub const PROBE_PAYLOAD: &[u8; 4] = b"MLPT";

/// A probe, described logically. The prober encodes this into bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbePacket {
    /// Source address the probe claims.
    pub source: Ipv4Addr,
    /// Destination being traced towards.
    pub destination: Ipv4Addr,
    /// Flow identifier (varies the load-balanced path).
    pub flow: FlowId,
    /// Probe TTL (selects the hop that answers).
    pub ttl: u8,
    /// Sequence number, carried in the probe's IP ID and echoed in quotes.
    pub sequence: u16,
}

/// Builds the wire bytes of a UDP probe.
pub fn build_udp_probe(probe: &ProbePacket) -> Vec<u8> {
    let mut packet = Vec::with_capacity(20 + 8 + PROBE_PAYLOAD.len());
    build_udp_probe_into(probe, &mut packet);
    packet
}

/// Appends the wire bytes of a UDP probe to a reusable buffer — the
/// allocation-free encoder the batched probe engine drives once per
/// probe, amortizing buffer growth across whole rounds.
pub fn build_udp_probe_into(probe: &ProbePacket, out: &mut Vec<u8>) {
    let udp = UdpHeader::new(probe.flow.source_port(), PARIS_DPORT, PROBE_PAYLOAD.len());
    let ip = Ipv4Header::new(
        probe.source,
        probe.destination,
        PROTO_UDP,
        probe.ttl,
        probe.sequence,
        udp::HEADER_LEN + PROBE_PAYLOAD.len(),
    );
    ip.emit_into(out);
    udp.emit_into(probe.source, probe.destination, PROBE_PAYLOAD, out);
}

/// Builds the wire bytes of an ICMP Echo Request (direct probe).
///
/// `identifier` distinguishes concurrent tools; `sequence` orders probes.
pub fn build_echo_probe(
    source: Ipv4Addr,
    destination: Ipv4Addr,
    identifier: u16,
    sequence: u16,
    ttl: u8,
) -> Vec<u8> {
    let mut packet = Vec::with_capacity(20 + 8 + PROBE_PAYLOAD.len());
    build_echo_probe_into(source, destination, identifier, sequence, ttl, &mut packet);
    packet
}

/// Appends the wire bytes of an ICMP Echo Request to a reusable buffer —
/// the allocation-free encoder behind [`build_echo_probe`].
pub fn build_echo_probe_into(
    source: Ipv4Addr,
    destination: Ipv4Addr,
    identifier: u16,
    sequence: u16,
    ttl: u8,
    out: &mut Vec<u8>,
) {
    let icmp_len = 8 + PROBE_PAYLOAD.len();
    let ip = Ipv4Header::new(source, destination, PROTO_ICMP, ttl, sequence, icmp_len);
    ip.emit_into(out);
    crate::icmp::emit_echo_into(
        crate::icmp::IcmpType::EchoRequest,
        identifier,
        sequence,
        PROBE_PAYLOAD,
        out,
    );
}

/// Parses the wire bytes of a UDP probe back into its logical form.
/// Used by the simulator (Fakeroute reads flow ID and TTL from the header
/// fields of packets it captures) and by tests.
pub fn parse_udp_probe(data: &[u8]) -> WireResult<ProbePacket> {
    let (ip, ihl) = Ipv4Header::parse(data)?;
    if ip.protocol != PROTO_UDP {
        return Err(WireError::Unsupported {
            what: "probe protocol",
            value: u16::from(ip.protocol),
        });
    }
    let udp = UdpHeader::parse(&data[ihl..])?;
    let flow = FlowId::from_source_port(udp.source_port).ok_or(WireError::Unsupported {
        what: "probe source port",
        value: udp.source_port,
    })?;
    Ok(ProbePacket {
        source: ip.source,
        destination: ip.destination,
        flow,
        ttl: ip.ttl,
        sequence: ip.identification,
    })
}

/// The kind of reply a probe elicited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplyKind {
    /// ICMP Time Exceeded: the responding interface is an intermediate hop.
    TimeExceeded,
    /// ICMP Port Unreachable: the probe reached the destination.
    PortUnreachable,
    /// ICMP Destination Unreachable with another code.
    OtherUnreachable(u8),
    /// ICMP Echo Reply (to a direct probe).
    EchoReply,
}

/// A parsed reply with everything the tracing algorithms consume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplyPacket {
    /// Interface address the reply came from (outer IP source).
    pub responder: Ipv4Addr,
    /// What the reply says happened.
    pub kind: ReplyKind,
    /// IP ID of the *reply* datagram: the responder's IP-ID counter sample
    /// used by the Monotonic Bounds Test.
    pub reply_ip_id: u16,
    /// TTL of the *reply* datagram as received: used by Network
    /// Fingerprinting to infer the responder's initial TTL.
    pub reply_ttl: u8,
    /// Flow ID recovered from the quoted probe (None for echo replies).
    pub probe_flow: Option<FlowId>,
    /// Destination of the quoted probe (None for echo replies). Together
    /// with `probe_flow` and `probe_sequence` this is the demultiplexing
    /// tag a concurrent sweep uses to hand a reply back to the session
    /// that sent the probe.
    pub probe_destination: Option<Ipv4Addr>,
    /// TTL of the probe as originally sent, recovered from the quote where
    /// possible (routers quote the datagram with TTL already expired, so
    /// this is the *sequence-correlated* value; see `probe_sequence`).
    pub quoted_ttl: Option<u8>,
    /// Sequence number recovered from the quoted probe's IP ID (None for
    /// echo replies, which echo the sequence in the ICMP header instead).
    pub probe_sequence: Option<u16>,
    /// Echo identifier/sequence for EchoReply messages. Together with
    /// [`responder`](Self::responder) (an Echo Reply comes from the
    /// pinged interface itself) this is the demultiplexing tag a
    /// concurrent sweep uses for direct probes — the Echo-Reply
    /// counterpart of the quoted-probe tag carried by error replies.
    pub echo: Option<(u16, u16)>,
    /// MPLS label stack attached via RFC 4884/4950, outermost first.
    pub mpls_stack: Vec<MplsLabelStackEntry>,
}

/// Parses a complete reply datagram (IPv4 + ICMP).
pub fn parse_reply(data: &[u8]) -> WireResult<ReplyPacket> {
    let (ip, ihl) = Ipv4Header::parse(data)?;
    if ip.protocol != PROTO_ICMP {
        return Err(WireError::Unsupported {
            what: "reply protocol",
            value: u16::from(ip.protocol),
        });
    }
    let icmp = IcmpMessage::parse(&data[ihl..])?;
    let mpls_stack = icmp.mpls_stack().to_vec();

    let (kind, probe_flow, probe_destination, quoted_ttl, probe_sequence, echo) = match &icmp {
        IcmpMessage::TimeExceeded { quoted, .. } => {
            let info = parse_quote(quoted);
            (
                ReplyKind::TimeExceeded,
                info.as_ref().and_then(|q| q.flow),
                info.as_ref().map(|q| q.destination),
                info.as_ref().map(|q| q.ttl),
                info.as_ref().map(|q| q.sequence),
                None,
            )
        }
        IcmpMessage::DestinationUnreachable { code, quoted, .. } => {
            let info = parse_quote(quoted);
            let kind = if *code == CODE_PORT_UNREACHABLE {
                ReplyKind::PortUnreachable
            } else {
                ReplyKind::OtherUnreachable(*code)
            };
            (
                kind,
                info.as_ref().and_then(|q| q.flow),
                info.as_ref().map(|q| q.destination),
                info.as_ref().map(|q| q.ttl),
                info.as_ref().map(|q| q.sequence),
                None,
            )
        }
        IcmpMessage::EchoReply {
            identifier,
            sequence,
            ..
        } => (
            ReplyKind::EchoReply,
            None,
            None,
            None,
            None,
            Some((*identifier, *sequence)),
        ),
        IcmpMessage::EchoRequest { .. } => {
            return Err(WireError::Unsupported {
                what: "reply ICMP type (echo request)",
                value: 8,
            })
        }
    };

    Ok(ReplyPacket {
        responder: ip.source,
        kind,
        reply_ip_id: ip.identification,
        reply_ttl: ip.ttl,
        probe_flow,
        probe_destination,
        quoted_ttl,
        probe_sequence,
        echo,
        mpls_stack,
    })
}

/// What we can recover from a quoted probe datagram.
struct QuoteInfo {
    flow: Option<FlowId>,
    destination: Ipv4Addr,
    ttl: u8,
    sequence: u16,
}

/// Parses the quoted (possibly truncated, possibly stale-checksummed)
/// original datagram inside an ICMP error.
fn parse_quote(quoted: &[u8]) -> Option<QuoteInfo> {
    let (ip, ihl) = Ipv4Header::parse_lenient(quoted).ok()?;
    let flow = if ip.protocol == PROTO_UDP && quoted.len() >= ihl + 4 {
        // Only the first 8 bytes of payload are guaranteed; the source port
        // is in the first 2.
        let sport = u16::from_be_bytes([quoted[ihl], quoted[ihl + 1]]);
        FlowId::from_source_port(sport)
    } else {
        None
    };
    Some(QuoteInfo {
        flow,
        destination: ip.destination,
        ttl: ip.ttl,
        sequence: ip.identification,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::icmp::IcmpExtensions;

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 9);
    const ROUTER: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 1);

    fn probe() -> ProbePacket {
        ProbePacket {
            source: SRC,
            destination: DST,
            flow: FlowId(12),
            ttl: 5,
            sequence: 777,
        }
    }

    /// Helper constructing a router reply quoting the given probe bytes.
    fn make_time_exceeded(probe_bytes: &[u8], mpls: Vec<MplsLabelStackEntry>) -> Vec<u8> {
        // Routers quote the IP header + at least 8 bytes of payload.
        let quote_len = 28.min(probe_bytes.len());
        let icmp = IcmpMessage::TimeExceeded {
            quoted: probe_bytes[..quote_len].to_vec(),
            extensions: IcmpExtensions { mpls_stack: mpls },
        };
        let icmp_bytes = icmp.emit();
        let ip = Ipv4Header::new(ROUTER, SRC, PROTO_ICMP, 61, 4242, icmp_bytes.len());
        let mut packet = Vec::new();
        packet.extend_from_slice(&ip.emit());
        packet.extend_from_slice(&icmp_bytes);
        packet
    }

    #[test]
    fn udp_probe_roundtrip() {
        let p = probe();
        let bytes = build_udp_probe(&p);
        let parsed = parse_udp_probe(&bytes).unwrap();
        assert_eq!(parsed, p);
    }

    #[test]
    fn udp_probe_checksum_valid() {
        let bytes = build_udp_probe(&probe());
        assert!(UdpHeader::verify_checksum(SRC, DST, &bytes[20..]));
    }

    #[test]
    fn time_exceeded_reply_recovers_probe_fields() {
        let p = probe();
        let probe_bytes = build_udp_probe(&p);
        let reply_bytes = make_time_exceeded(&probe_bytes, vec![]);
        let reply = parse_reply(&reply_bytes).unwrap();
        assert_eq!(reply.responder, ROUTER);
        assert_eq!(reply.kind, ReplyKind::TimeExceeded);
        assert_eq!(reply.probe_flow, Some(FlowId(12)));
        assert_eq!(reply.probe_destination, Some(DST), "demux tag recovered");
        assert_eq!(reply.probe_sequence, Some(777));
        assert_eq!(reply.reply_ip_id, 4242);
        assert_eq!(reply.reply_ttl, 61);
        assert!(reply.mpls_stack.is_empty());
    }

    #[test]
    fn reply_with_mpls_stack() {
        let p = probe();
        let probe_bytes = build_udp_probe(&p);
        let stack = vec![MplsLabelStackEntry::new(16001, 0, true, 254)];
        let reply_bytes = make_time_exceeded(&probe_bytes, stack.clone());
        let reply = parse_reply(&reply_bytes).unwrap();
        assert_eq!(reply.mpls_stack, stack);
        // Flow recovery still works through the padded quote.
        assert_eq!(reply.probe_flow, Some(FlowId(12)));
    }

    #[test]
    fn port_unreachable_reply() {
        let p = probe();
        let probe_bytes = build_udp_probe(&p);
        let icmp = IcmpMessage::DestinationUnreachable {
            code: CODE_PORT_UNREACHABLE,
            quoted: probe_bytes[..28].to_vec(),
            extensions: IcmpExtensions::default(),
        };
        let icmp_bytes = icmp.emit();
        let ip = Ipv4Header::new(DST, SRC, PROTO_ICMP, 60, 1, icmp_bytes.len());
        let mut packet = Vec::new();
        packet.extend_from_slice(&ip.emit());
        packet.extend_from_slice(&icmp_bytes);

        let reply = parse_reply(&packet).unwrap();
        assert_eq!(reply.kind, ReplyKind::PortUnreachable);
        assert_eq!(reply.responder, DST);
        assert_eq!(reply.probe_flow, Some(FlowId(12)));
    }

    #[test]
    fn echo_probe_and_reply() {
        let req = build_echo_probe(SRC, ROUTER, 0xCAFE, 3, 64);
        // Parse the request side as IP+ICMP to simulate the responder.
        let (ip, ihl) = Ipv4Header::parse(&req).unwrap();
        assert_eq!(ip.protocol, PROTO_ICMP);
        let msg = IcmpMessage::parse(&req[ihl..]).unwrap();
        let IcmpMessage::EchoRequest {
            identifier,
            sequence,
            payload,
        } = msg
        else {
            panic!("expected echo request");
        };
        // Build the reply.
        let reply_icmp = IcmpMessage::EchoReply {
            identifier,
            sequence,
            payload,
        }
        .emit();
        let reply_ip = Ipv4Header::new(ROUTER, SRC, PROTO_ICMP, 61, 999, reply_icmp.len());
        let mut packet = Vec::new();
        packet.extend_from_slice(&reply_ip.emit());
        packet.extend_from_slice(&reply_icmp);

        let reply = parse_reply(&packet).unwrap();
        assert_eq!(reply.kind, ReplyKind::EchoReply);
        assert_eq!(reply.echo, Some((0xCAFE, 3)));
        assert_eq!(reply.reply_ip_id, 999);
    }

    /// The Echo-Reply demux contract: the identifier/sequence stamped on
    /// an allocation-free-encoded request survive the responder's echo
    /// untouched, and the reply's source is the pinged interface — so
    /// (responder, sequence) uniquely tags the probe for a concurrent
    /// sweep, with the identifier telling foreign ping traffic apart.
    #[test]
    fn echo_reply_tag_round_trips_for_demux() {
        let mut req = Vec::new();
        build_echo_probe_into(SRC, ROUTER, 0x4D4C, 0xBEEF, 64, &mut req);
        assert_eq!(req, build_echo_probe(SRC, ROUTER, 0x4D4C, 0xBEEF, 64));
        let (ip, ihl) = Ipv4Header::parse(&req).unwrap();
        let IcmpMessage::EchoRequest {
            identifier,
            sequence,
            payload,
        } = IcmpMessage::parse(&req[ihl..]).unwrap()
        else {
            panic!("expected echo request");
        };
        // The probe's IP ID also carries the sequence (fingerprinting
        // needs it to detect id-echoing routers).
        assert_eq!(ip.identification, 0xBEEF);

        let reply_icmp = IcmpMessage::EchoReply {
            identifier,
            sequence,
            payload,
        }
        .emit();
        let reply_ip = Ipv4Header::new(ROUTER, SRC, PROTO_ICMP, 60, 7, reply_icmp.len());
        let mut packet = reply_ip.emit().to_vec();
        packet.extend_from_slice(&reply_icmp);

        let parsed = parse_reply(&packet).unwrap();
        assert_eq!(parsed.kind, ReplyKind::EchoReply);
        assert_eq!(parsed.responder, ROUTER, "tag half 1: the pinged interface");
        assert_eq!(
            parsed.echo,
            Some((0x4D4C, 0xBEEF)),
            "tag half 2: echoed seq"
        );
        // Echo replies carry no quote: the UDP-style tags stay empty.
        assert_eq!(parsed.probe_destination, None);
        assert_eq!(parsed.probe_sequence, None);
        assert_eq!(parsed.probe_flow, None);
    }

    #[test]
    fn non_icmp_reply_rejected() {
        let bytes = build_udp_probe(&probe());
        assert!(matches!(
            parse_reply(&bytes),
            Err(WireError::Unsupported { .. })
        ));
    }

    #[test]
    fn quote_with_stale_checksum_still_parses() {
        // Simulate a router that decremented TTL without fixing the quoted
        // header checksum.
        let p = probe();
        let mut probe_bytes = build_udp_probe(&p);
        probe_bytes[8] = 0; // TTL expired at the router
        let reply_bytes = make_time_exceeded(&probe_bytes, vec![]);
        let reply = parse_reply(&reply_bytes).unwrap();
        assert_eq!(reply.probe_flow, Some(FlowId(12)));
        assert_eq!(reply.quoted_ttl, Some(0));
    }
}
