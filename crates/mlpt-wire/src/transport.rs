//! The byte-level transport boundary.
//!
//! Tracing algorithms are written against [`PacketTransport`]: write a
//! complete IPv4 probe datagram, receive the complete IPv4 reply datagram
//! or `None` (loss, rate limiting, unresponsive target — the synchronous
//! analogue of a raw-socket timeout). The Fakeroute simulator implements
//! this trait in-process; a raw-socket implementation would carry the same
//! algorithms onto a real network, which is the sans-IO design goal.

/// A synchronous request/reply packet channel.
pub trait PacketTransport {
    /// Sends one probe datagram; returns the reply datagram, if any.
    fn send_packet(&mut self, packet: &[u8]) -> Option<Vec<u8>>;

    /// Current transport time in ticks. Reply timestamps feed the
    /// Monotonic Bounds Test's time series.
    fn now(&self) -> u64;
}

/// Blanket implementation so `&mut T` can be passed where a transport is
/// consumed by value.
impl<T: PacketTransport + ?Sized> PacketTransport for &mut T {
    fn send_packet(&mut self, packet: &[u8]) -> Option<Vec<u8>> {
        (**self).send_packet(packet)
    }
    fn now(&self) -> u64 {
        (**self).now()
    }
}
