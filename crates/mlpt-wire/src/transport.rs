//! The byte-level transport boundary.
//!
//! Tracing algorithms are written against [`PacketTransport`]: write a
//! complete IPv4 probe datagram, receive the complete IPv4 reply datagram
//! or `None` (loss, rate limiting, unresponsive target — the synchronous
//! analogue of a raw-socket timeout). The Fakeroute simulator implements
//! this trait in-process; a raw-socket implementation would carry the same
//! algorithms onto a real network, which is the sans-IO design goal.
//!
//! Two dispatch shapes exist:
//!
//! * the classic one-probe verb [`PacketTransport::send_packet`], plus its
//!   allocation-free variant [`PacketTransport::send_packet_into`] that
//!   writes the reply into a caller-owned buffer;
//! * the vectorized verb [`BatchTransport::send_batch`], which moves a
//!   whole round of probes across the boundary in one call using packed
//!   [`PacketBatch`]/[`ReplyBatch`] buffers whose allocations amortize to
//!   zero across rounds.
//!
//! `send_batch` has a default implementation over `send_packet_into`, so
//! any single-probe transport joins the batched world with an empty
//! `impl BatchTransport for T {}`. Transports with a real vectorized path
//! (io_uring, sendmmsg, a simulator that pipelines parsing) override it.

/// A packed sequence of probe datagrams awaiting dispatch.
///
/// Packets are stored back to back in one buffer with an offset table, so
/// building a round of probes costs no per-packet allocations once the
/// buffers have warmed up.
#[derive(Debug, Clone, Default)]
pub struct PacketBatch {
    bytes: Vec<u8>,
    /// End offset of each packet in `bytes`.
    bounds: Vec<usize>,
}

impl PacketBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the batch, retaining capacity.
    pub fn clear(&mut self) {
        self.bytes.clear();
        self.bounds.clear();
    }

    /// Number of packets queued.
    pub fn len(&self) -> usize {
        self.bounds.len()
    }

    /// True if no packets are queued.
    pub fn is_empty(&self) -> bool {
        self.bounds.is_empty()
    }

    /// Appends one packet by letting `build` write its bytes into the
    /// backing buffer (e.g. [`crate::probe::build_udp_probe_into`]).
    pub fn push_with<F: FnOnce(&mut Vec<u8>)>(&mut self, build: F) {
        build(&mut self.bytes);
        self.bounds.push(self.bytes.len());
    }

    /// Appends one packet by copying existing bytes.
    pub fn push(&mut self, packet: &[u8]) {
        self.push_with(|buf| buf.extend_from_slice(packet));
    }

    /// The bytes of packet `index`.
    pub fn get(&self, index: usize) -> &[u8] {
        let start = if index == 0 {
            0
        } else {
            self.bounds[index - 1]
        };
        &self.bytes[start..self.bounds[index]]
    }

    /// Iterates packets in queue order.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> {
        (0..self.len()).map(|i| self.get(i))
    }
}

/// The packed replies of one dispatched batch: per probe, either the
/// reply datagram bytes or nothing (loss / rate limit / no responder),
/// plus the transport timestamp observed right after each send.
#[derive(Debug, Clone, Default)]
pub struct ReplyBatch {
    bytes: Vec<u8>,
    /// End offset per slot; `answered[i]` distinguishes an empty slot.
    bounds: Vec<usize>,
    answered: Vec<bool>,
    timestamps: Vec<u64>,
}

impl ReplyBatch {
    /// An empty reply set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears all slots, retaining capacity.
    pub fn clear(&mut self) {
        self.bytes.clear();
        self.bounds.clear();
        self.answered.clear();
        self.timestamps.clear();
    }

    /// Number of slots (equals the dispatched batch's packet count).
    pub fn len(&self) -> usize {
        self.bounds.len()
    }

    /// True if no slots are recorded.
    pub fn is_empty(&self) -> bool {
        self.bounds.is_empty()
    }

    /// Appends one slot. `fill` writes the reply bytes into the backing
    /// buffer and returns whether a reply arrived; `timestamp` is the
    /// transport clock right after the send.
    pub fn push_with<F: FnOnce(&mut Vec<u8>) -> bool>(&mut self, timestamp: u64, fill: F) {
        let start = self.bytes.len();
        let ok = fill(&mut self.bytes);
        if !ok {
            self.bytes.truncate(start);
        }
        self.bounds.push(self.bytes.len());
        self.answered.push(ok);
        self.timestamps.push(timestamp);
    }

    /// The reply bytes of slot `index`, if that probe was answered.
    pub fn get(&self, index: usize) -> Option<&[u8]> {
        if !self.answered[index] {
            return None;
        }
        let start = if index == 0 {
            0
        } else {
            self.bounds[index - 1]
        };
        Some(&self.bytes[start..self.bounds[index]])
    }

    /// Transport timestamp recorded for slot `index`.
    pub fn timestamp(&self, index: usize) -> u64 {
        self.timestamps[index]
    }

    /// Iterates slots in order as `(reply, timestamp)`.
    pub fn iter(&self) -> impl Iterator<Item = (Option<&[u8]>, u64)> {
        (0..self.len()).map(|i| (self.get(i), self.timestamp(i)))
    }
}

/// A synchronous request/reply packet channel.
pub trait PacketTransport {
    /// Sends one probe datagram; returns the reply datagram, if any.
    fn send_packet(&mut self, packet: &[u8]) -> Option<Vec<u8>>;

    /// Allocation-free variant: appends the reply to `reply` and returns
    /// true, or returns false leaving `reply` untouched. Transports with
    /// an internally allocation-free reply path override this; the
    /// default adapts [`PacketTransport::send_packet`].
    fn send_packet_into(&mut self, packet: &[u8], reply: &mut Vec<u8>) -> bool {
        match self.send_packet(packet) {
            Some(bytes) => {
                reply.extend_from_slice(&bytes);
                true
            }
            None => false,
        }
    }

    /// Current transport time in ticks. Reply timestamps feed the
    /// Monotonic Bounds Test's time series.
    fn now(&self) -> u64;
}

/// Vectorized dispatch over a [`PacketTransport`].
pub trait BatchTransport: PacketTransport {
    /// Sends every packet of `probes` in order, recording each reply (or
    /// its absence) and the post-send transport timestamp into `replies`.
    /// `replies` is cleared first.
    ///
    /// The default shim dispatches sequentially through
    /// [`PacketTransport::send_packet_into`], which preserves single-probe
    /// semantics exactly (same packet order, same clock progression).
    fn send_batch(&mut self, probes: &PacketBatch, replies: &mut ReplyBatch) {
        replies.clear();
        for packet in probes.iter() {
            // Split-borrow dance: `self` is needed both to send and for
            // the timestamp, so send first into a detached closure.
            let mut sent = false;
            let this = &mut *self;
            replies.push_with(0, |buf| {
                sent = this.send_packet_into(packet, buf);
                sent
            });
            let t = self.now();
            replies.set_last_timestamp(t);
        }
    }
}

impl ReplyBatch {
    /// Overwrites the most recent slot's timestamp (used by the default
    /// `send_batch` shim, which learns the time only after sending).
    pub fn set_last_timestamp(&mut self, timestamp: u64) {
        if let Some(last) = self.timestamps.last_mut() {
            *last = timestamp;
        }
    }
}

/// The split (asynchronous-shaped) transport contract: **send** and
/// **receive** are separate verbs, with a per-probe timeout deadline
/// carried across the boundary.
///
/// [`BatchTransport::send_batch`] bakes in the synchronous fiction that
/// every probe resolves before the call returns — which leaves a caller
/// no way to express "give up on this probe after N ticks". The split
/// contract fixes that: [`send_probes`](Self::send_probes) dispatches a
/// batch where probe *i* carries a timeout of `timeouts[i]` transport
/// ticks measured from its own send instant (its **deadline** is
/// `send_tick + timeouts[i]` on the transport's virtual clock), and
/// [`recv_replies`](Self::recv_replies) later resolves every probe of
/// that batch exactly once: either the reply that arrived by the
/// deadline, or an unanswered slot — the reply never came, or came too
/// late (the caller's pending table turns that into a typed timeout).
///
/// Contract invariants:
///
/// * Every `send_probes` must be followed by exactly one `recv_replies`
///   before the next `send_probes`; the reply batch has one slot per
///   probe, in probe order.
/// * A slot is answered **iff** its reply arrived at or before its
///   deadline. Answered slots carry the reply's arrival tick as their
///   timestamp; unanswered slots resolve at their deadline.
/// * Waiting out a deadline costs no transport ticks of its own: the
///   virtual clock is driven by packets (and by explicit clock advances
///   a simulator applies), so deadlines are bookkeeping on the same
///   tick axis the replies are stamped with. A real-socket backend
///   instead blocks in `recv_replies` until the last deadline expires.
///
/// The simulator implements this natively (impairment schedules can
/// delay replies past their deadlines); [`Synchronous`] adapts any
/// [`BatchTransport`] whose replies resolve instantly.
pub trait SplitTransport: PacketTransport {
    /// Send half: dispatches every probe of `probes`, recording for each
    /// the deadline `send_tick + timeouts[i]`. `timeouts.len()` must
    /// equal `probes.len()`.
    fn send_probes(&mut self, probes: &PacketBatch, timeouts: &[u64]);

    /// Recv half: resolves the batch most recently sent (see the trait
    /// docs for the slot semantics). `replies` is cleared first.
    fn recv_replies(&mut self, replies: &mut ReplyBatch);
}

/// Adapter implementing [`SplitTransport`] over any [`BatchTransport`].
///
/// A synchronous transport's replies resolve on the send tick itself, so
/// no reply can ever miss its deadline: `send_probes` runs the whole
/// batch through [`BatchTransport::send_batch`] into an internal buffer
/// and `recv_replies` hands the buffer out. Timeouts are accepted (the
/// contract requires them) but unobservable.
#[derive(Debug, Default)]
pub struct Synchronous<T: BatchTransport> {
    inner: T,
    buffered: ReplyBatch,
}

impl<T: BatchTransport> Synchronous<T> {
    /// Wraps a synchronous batch transport.
    pub fn new(inner: T) -> Self {
        Self {
            inner,
            buffered: ReplyBatch::new(),
        }
    }

    /// Consumes the adapter, returning the wrapped transport.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Mutable access to the wrapped transport.
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: BatchTransport> PacketTransport for Synchronous<T> {
    fn send_packet(&mut self, packet: &[u8]) -> Option<Vec<u8>> {
        self.inner.send_packet(packet)
    }
    fn send_packet_into(&mut self, packet: &[u8], reply: &mut Vec<u8>) -> bool {
        self.inner.send_packet_into(packet, reply)
    }
    fn now(&self) -> u64 {
        self.inner.now()
    }
}

impl<T: BatchTransport> BatchTransport for Synchronous<T> {
    fn send_batch(&mut self, probes: &PacketBatch, replies: &mut ReplyBatch) {
        self.inner.send_batch(probes, replies);
    }
}

impl<T: BatchTransport> SplitTransport for Synchronous<T> {
    fn send_probes(&mut self, probes: &PacketBatch, timeouts: &[u64]) {
        debug_assert_eq!(probes.len(), timeouts.len(), "one timeout per probe");
        self.inner.send_batch(probes, &mut self.buffered);
    }

    fn recv_replies(&mut self, replies: &mut ReplyBatch) {
        std::mem::swap(replies, &mut self.buffered);
        self.buffered.clear();
    }
}

/// Blanket implementation so `&mut T` can be passed where a transport is
/// consumed by value.
impl<T: PacketTransport + ?Sized> PacketTransport for &mut T {
    fn send_packet(&mut self, packet: &[u8]) -> Option<Vec<u8>> {
        (**self).send_packet(packet)
    }
    fn send_packet_into(&mut self, packet: &[u8], reply: &mut Vec<u8>) -> bool {
        (**self).send_packet_into(packet, reply)
    }
    fn now(&self) -> u64 {
        (**self).now()
    }
}

impl<T: BatchTransport + ?Sized> BatchTransport for &mut T {
    fn send_batch(&mut self, probes: &PacketBatch, replies: &mut ReplyBatch) {
        (**self).send_batch(probes, replies)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echoes every packet back with a byte appended; drops every third.
    struct Echo {
        clock: u64,
    }

    impl PacketTransport for Echo {
        fn send_packet(&mut self, packet: &[u8]) -> Option<Vec<u8>> {
            let mut reply = Vec::new();
            if self.send_packet_into(packet, &mut reply) {
                Some(reply)
            } else {
                None
            }
        }
        fn send_packet_into(&mut self, packet: &[u8], reply: &mut Vec<u8>) -> bool {
            self.clock += 1;
            if self.clock.is_multiple_of(3) {
                return false;
            }
            reply.extend_from_slice(packet);
            reply.push(0xEE);
            true
        }
        fn now(&self) -> u64 {
            self.clock
        }
    }

    impl BatchTransport for Echo {}

    #[test]
    fn packet_batch_packs_and_iterates() {
        let mut batch = PacketBatch::new();
        batch.push(&[1, 2, 3]);
        batch.push_with(|buf| buf.extend_from_slice(&[4, 5]));
        batch.push(&[]);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.get(0), &[1, 2, 3]);
        assert_eq!(batch.get(1), &[4, 5]);
        assert_eq!(batch.get(2), &[] as &[u8]);
        let collected: Vec<&[u8]> = batch.iter().collect();
        assert_eq!(collected.len(), 3);
        batch.clear();
        assert!(batch.is_empty());
    }

    #[test]
    fn default_send_batch_matches_sequential() {
        let mut batch = PacketBatch::new();
        for i in 0..6u8 {
            batch.push(&[i; 4]);
        }
        let mut replies = ReplyBatch::new();
        let mut a = Echo { clock: 0 };
        a.send_batch(&batch, &mut replies);

        let mut b = Echo { clock: 0 };
        for (i, packet) in batch.iter().enumerate() {
            let expected = b.send_packet(packet);
            assert_eq!(replies.get(i).map(<[u8]>::to_vec), expected, "slot {i}");
            assert_eq!(replies.timestamp(i), b.now());
        }
    }

    #[test]
    fn synchronous_adapter_matches_send_batch() {
        let mut batch = PacketBatch::new();
        for i in 0..6u8 {
            batch.push(&[i; 4]);
        }
        let mut expected = ReplyBatch::new();
        let mut plain = Echo { clock: 0 };
        plain.send_batch(&batch, &mut expected);

        let mut split = Synchronous::new(Echo { clock: 0 });
        // Timeouts are unobservable on a synchronous transport: replies
        // resolve on the send tick, so even a zero deadline is met.
        split.send_probes(&batch, &[0; 6]);
        let mut got = ReplyBatch::new();
        split.recv_replies(&mut got);
        assert_eq!(got.len(), expected.len());
        for i in 0..expected.len() {
            assert_eq!(got.get(i), expected.get(i), "slot {i}");
            assert_eq!(got.timestamp(i), expected.timestamp(i), "slot {i}");
        }
        assert_eq!(split.now(), plain.now());
        // A second recv yields the (empty) internal buffer, not stale data.
        let mut again = ReplyBatch::new();
        split.recv_replies(&mut again);
        assert!(again.is_empty());
    }

    #[test]
    fn reply_batch_roll_back_on_loss() {
        let mut replies = ReplyBatch::new();
        replies.push_with(1, |buf| {
            buf.extend_from_slice(&[9, 9]);
            true
        });
        replies.push_with(2, |buf| {
            buf.extend_from_slice(&[7]); // written, then rolled back
            false
        });
        replies.push_with(3, |buf| {
            buf.extend_from_slice(&[5]);
            true
        });
        assert_eq!(replies.get(0), Some(&[9u8, 9][..]));
        assert_eq!(replies.get(1), None);
        assert_eq!(replies.get(2), Some(&[5u8][..]));
        assert_eq!(replies.timestamp(2), 3);
    }
}
