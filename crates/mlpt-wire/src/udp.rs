//! The UDP header (RFC 768).
//!
//! Paris Traceroute sends UDP probes (the paper cites Luckie et al., ref. \[36\]:
//! UDP probes discover the most load-balanced paths). The UDP *source port*
//! carries the flow identifier; the *destination port* stays fixed so that
//! every probe in a trace differs only in the fields the tool intends to
//! vary. The checksum is computed over the IPv4 pseudo-header as required,
//! because per-flow load balancers and NATs may verify it.

use crate::checksum::ChecksumAccumulator;
use crate::ipv4::PROTO_UDP;
use crate::{WireError, WireResult};
use std::net::Ipv4Addr;

/// Length of the UDP header in bytes.
pub const HEADER_LEN: usize = 8;

/// A UDP header plus knowledge of its payload length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port (Paris: encodes the flow identifier).
    pub source_port: u16,
    /// Destination port (Paris: fixed traceroute port).
    pub destination_port: u16,
    /// Length field: header + payload bytes.
    pub length: u16,
    /// Checksum as seen on the wire (0 means "not computed").
    pub checksum: u16,
}

impl UdpHeader {
    /// Creates a header for `payload_len` bytes of payload. The checksum is
    /// left zero until [`UdpHeader::emit`] computes it.
    pub fn new(source_port: u16, destination_port: u16, payload_len: usize) -> Self {
        Self {
            source_port,
            destination_port,
            length: (HEADER_LEN + payload_len) as u16,
            checksum: 0,
        }
    }

    /// Emits header + payload with a correct pseudo-header checksum.
    pub fn emit(&self, src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
        self.emit_into(src, dst, payload, &mut buf);
        buf
    }

    /// Appends header + payload to a reusable buffer with a correct
    /// pseudo-header checksum — the allocation-free path used by batched
    /// probe building.
    pub fn emit_into(&self, src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8], out: &mut Vec<u8>) {
        debug_assert_eq!(self.length as usize, HEADER_LEN + payload.len());
        let start = out.len();
        out.extend_from_slice(&self.source_port.to_be_bytes());
        out.extend_from_slice(&self.destination_port.to_be_bytes());
        out.extend_from_slice(&self.length.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(payload);

        let csum = Self::compute_checksum(src, dst, &out[start..]);
        // RFC 768: an all-zero computed checksum is transmitted as 0xFFFF.
        let csum = if csum == 0 { 0xFFFF } else { csum };
        out[start + 6..start + 8].copy_from_slice(&csum.to_be_bytes());
    }

    /// Computes the UDP checksum over pseudo-header + datagram (whose
    /// checksum field must be zeroed).
    pub fn compute_checksum(src: Ipv4Addr, dst: Ipv4Addr, datagram: &[u8]) -> u16 {
        let mut acc = ChecksumAccumulator::new();
        acc.push(&src.octets());
        acc.push(&dst.octets());
        acc.push_u16(u16::from(PROTO_UDP));
        acc.push_u16(datagram.len() as u16);
        acc.push(datagram);
        acc.finish()
    }

    /// Parses a UDP header from the front of `data`. Does not verify the
    /// checksum (use [`UdpHeader::verify_checksum`]), because ICMP quotes
    /// may truncate the payload the checksum covers.
    pub fn parse(data: &[u8]) -> WireResult<Self> {
        if data.len() < HEADER_LEN {
            return Err(WireError::Truncated {
                what: "UDP header",
                needed: HEADER_LEN,
                got: data.len(),
            });
        }
        Ok(Self {
            source_port: u16::from_be_bytes([data[0], data[1]]),
            destination_port: u16::from_be_bytes([data[2], data[3]]),
            length: u16::from_be_bytes([data[4], data[5]]),
            checksum: u16::from_be_bytes([data[6], data[7]]),
        })
    }

    /// Verifies the checksum of a complete UDP datagram.
    pub fn verify_checksum(src: Ipv4Addr, dst: Ipv4Addr, datagram: &[u8]) -> bool {
        if datagram.len() < HEADER_LEN {
            return false;
        }
        let stored = u16::from_be_bytes([datagram[6], datagram[7]]);
        if stored == 0 {
            return true; // checksum not computed by sender
        }
        let mut zeroed = datagram.to_vec();
        zeroed[6] = 0;
        zeroed[7] = 0;
        let computed = Self::compute_checksum(src, dst, &zeroed);
        let computed = if computed == 0 { 0xFFFF } else { computed };
        computed == stored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 7);

    #[test]
    fn roundtrip() {
        let h = UdpHeader::new(33000, 33434, 4);
        let bytes = h.emit(SRC, DST, &[1, 2, 3, 4]);
        assert_eq!(bytes.len(), 12);
        let parsed = UdpHeader::parse(&bytes).unwrap();
        assert_eq!(parsed.source_port, 33000);
        assert_eq!(parsed.destination_port, 33434);
        assert_eq!(parsed.length, 12);
        assert_ne!(parsed.checksum, 0);
    }

    #[test]
    fn emitted_checksum_verifies() {
        let h = UdpHeader::new(40000, 33434, 6);
        let bytes = h.emit(SRC, DST, b"probe!");
        assert!(UdpHeader::verify_checksum(SRC, DST, &bytes));
    }

    #[test]
    fn corrupted_payload_fails_verification() {
        let h = UdpHeader::new(40000, 33434, 6);
        let mut bytes = h.emit(SRC, DST, b"probe!");
        bytes[10] ^= 0x01;
        assert!(!UdpHeader::verify_checksum(SRC, DST, &bytes));
    }

    #[test]
    fn wrong_pseudo_header_fails_verification() {
        let h = UdpHeader::new(40000, 33434, 6);
        let bytes = h.emit(SRC, DST, b"probe!");
        let other = Ipv4Addr::new(10, 0, 0, 2);
        assert!(!UdpHeader::verify_checksum(other, DST, &bytes));
    }

    #[test]
    fn zero_checksum_accepted() {
        let h = UdpHeader::new(1, 2, 0);
        let mut bytes = h.emit(SRC, DST, &[]);
        bytes[6] = 0;
        bytes[7] = 0;
        assert!(UdpHeader::verify_checksum(SRC, DST, &bytes));
    }

    #[test]
    fn truncated_rejected() {
        assert!(matches!(
            UdpHeader::parse(&[0u8; 7]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn different_sports_different_checksums() {
        // Changing the flow ID (source port) must change the checksum: this
        // is exactly what makes the 5-tuple vary for load balancers that
        // hash the checksum too.
        let a = UdpHeader::new(33001, 33434, 2).emit(SRC, DST, &[0, 0]);
        let b = UdpHeader::new(33002, 33434, 2).emit(SRC, DST, &[0, 0]);
        assert_ne!(a[6..8], b[6..8]);
    }
}
