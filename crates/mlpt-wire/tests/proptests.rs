//! Property tests for the wire substrate: round-trips and checksum
//! invariants over the whole field space.

use mlpt_wire::checksum::internet_checksum;
use mlpt_wire::icmp::{IcmpExtensions, IcmpMessage, MplsLabelStackEntry};
use mlpt_wire::ipv4::{Ipv4Header, PROTO_UDP};
use mlpt_wire::probe::{build_udp_probe, parse_reply, parse_udp_probe, ProbePacket};
use mlpt_wire::udp::UdpHeader;
use mlpt_wire::FlowId;
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_addr() -> impl Strategy<Value = Ipv4Addr> {
    (1u8..=254, any::<u8>(), any::<u8>(), 1u8..=254)
        .prop_map(|(a, b, c, d)| Ipv4Addr::new(a, b, c, d))
}

proptest! {
    #[test]
    fn ipv4_header_roundtrip(
        src in arb_addr(),
        dst in arb_addr(),
        ttl in 1u8..=255,
        ident in any::<u16>(),
        payload_len in 0usize..1400,
    ) {
        let h = Ipv4Header::new(src, dst, PROTO_UDP, ttl, ident, payload_len);
        let bytes = h.emit();
        let (parsed, len) = Ipv4Header::parse(&bytes).unwrap();
        prop_assert_eq!(len, 20);
        prop_assert_eq!(parsed, h);
        // Emitted checksum always verifies.
        prop_assert_eq!(internet_checksum(&bytes), 0);
    }

    #[test]
    fn ipv4_single_bit_flip_detected_or_benign(
        src in arb_addr(),
        dst in arb_addr(),
        ttl in 1u8..=255,
        ident in any::<u16>(),
        byte in 0usize..20,
        bit in 0u8..8,
    ) {
        let h = Ipv4Header::new(src, dst, PROTO_UDP, ttl, ident, 8);
        let mut bytes = h.emit();
        bytes[byte] ^= 1 << bit;
        if let Ok((parsed, _)) = Ipv4Header::parse(&bytes) {
            // The Internet checksum cannot produce a false "ok" for any
            // single-bit flip.
            prop_assert_eq!(parsed, h);
        }
    }

    #[test]
    fn udp_emit_always_verifies(
        src in arb_addr(),
        dst in arb_addr(),
        sport in 1u16..=u16::MAX,
        dport in 1u16..=u16::MAX,
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let h = UdpHeader::new(sport, dport, payload.len());
        let bytes = h.emit(src, dst, &payload);
        prop_assert!(UdpHeader::verify_checksum(src, dst, &bytes));
        let parsed = UdpHeader::parse(&bytes).unwrap();
        prop_assert_eq!(parsed.source_port, sport);
        prop_assert_eq!(parsed.destination_port, dport);
        prop_assert_eq!(parsed.length as usize, 8 + payload.len());
    }

    #[test]
    fn flow_id_sport_bijection(k in any::<u16>()) {
        let flow = FlowId(k);
        prop_assert_eq!(FlowId::from_source_port(flow.source_port()), Some(flow));
    }

    #[test]
    fn mpls_entry_roundtrip(label in 0u32..(1 << 20), exp in 0u8..8, s in any::<bool>(), ttl in any::<u8>()) {
        let e = MplsLabelStackEntry::new(label, exp, s, ttl);
        let parsed = MplsLabelStackEntry::parse(&e.emit()).unwrap();
        prop_assert_eq!(parsed, e);
    }

    #[test]
    fn probe_roundtrip(
        src in arb_addr(),
        dst in arb_addr(),
        flow in any::<u16>(),
        ttl in 1u8..=64,
        seq in any::<u16>(),
    ) {
        let p = ProbePacket { source: src, destination: dst, flow: FlowId(flow), ttl, sequence: seq };
        let bytes = build_udp_probe(&p);
        let parsed = parse_udp_probe(&bytes).unwrap();
        prop_assert_eq!(parsed, p);
    }

    #[test]
    fn full_reply_path_recovers_probe(
        src in arb_addr(),
        dst in arb_addr(),
        router in arb_addr(),
        flow in any::<u16>(),
        ttl in 1u8..=64,
        seq in any::<u16>(),
        reply_id in any::<u16>(),
        reply_ttl in 1u8..=255,
        labels in proptest::collection::vec((0u32..(1<<20), 0u8..8, any::<u8>()), 0..4),
    ) {
        // End-to-end: build probe bytes, have a "router" quote them into a
        // Time Exceeded with optional MPLS stack, parse the reply.
        let p = ProbePacket { source: src, destination: dst, flow: FlowId(flow), ttl, sequence: seq };
        let probe_bytes = build_udp_probe(&p);

        let n = labels.len();
        let stack: Vec<MplsLabelStackEntry> = labels
            .into_iter()
            .enumerate()
            .map(|(i, (l, e, t))| MplsLabelStackEntry::new(l, e, i + 1 == n, t))
            .collect();
        let icmp = IcmpMessage::TimeExceeded {
            quoted: probe_bytes[..28].to_vec(),
            extensions: IcmpExtensions { mpls_stack: stack.clone() },
        };
        let icmp_bytes = icmp.emit();
        let ip = Ipv4Header::new(router, src, 1, reply_ttl, reply_id, icmp_bytes.len());
        let mut packet = Vec::new();
        packet.extend_from_slice(&ip.emit());
        packet.extend_from_slice(&icmp_bytes);

        let reply = parse_reply(&packet).unwrap();
        prop_assert_eq!(reply.responder, router);
        prop_assert_eq!(reply.probe_flow, Some(FlowId(flow)));
        prop_assert_eq!(reply.probe_sequence, Some(seq));
        prop_assert_eq!(reply.reply_ip_id, reply_id);
        prop_assert_eq!(reply.reply_ttl, reply_ttl);
        prop_assert_eq!(reply.mpls_stack, stack);
    }

    #[test]
    fn checksum_order_sensitivity(words in proptest::collection::vec(any::<u16>(), 1..50)) {
        // One's-complement addition is commutative: permuting 16-bit words
        // must not change the checksum. (This is why incremental updates
        // like TTL decrement can be patched in-place by routers.)
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_be_bytes()).collect();
        let mut reversed_words = words.clone();
        reversed_words.reverse();
        let rev_bytes: Vec<u8> = reversed_words.iter().flat_map(|w| w.to_be_bytes()).collect();
        prop_assert_eq!(internet_checksum(&bytes), internet_checksum(&rev_bytes));
    }
}
