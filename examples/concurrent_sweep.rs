//! Concurrent multi-destination sweep, library edition.
//!
//! Shows the full sweep stack end to end:
//!
//! 1. build one simulated network **lane** per destination (here:
//!    synthetic-Internet scenarios, as a survey would trace);
//! 2. wrap the lanes in a [`MultiNetwork`] — one shared transport that
//!    routes probes by destination while keeping per-lane RNG streams and
//!    clocks deterministic;
//! 3. stream one sans-IO [`TraceSession`] per destination into the
//!    [`SweepEngine`], which admits sessions as in-flight tokens free up
//!    and merges every live session's probe rounds into large
//!    cross-destination batches;
//! 4. run the sweep, then verify the headline invariant: every trace is
//!    **bit-identical** to running the same destination sequentially on
//!    its own simulator.
//!
//! Run with: `cargo run --example concurrent_sweep`

use mlpt::prelude::*;
use mlpt::sim::MultiNetwork;
use mlpt::survey::{InternetConfig, SyntheticInternet};

fn main() {
    let destinations = 16usize;
    let internet = SyntheticInternet::new(InternetConfig::with_seed(42));
    let seed_of = |id: usize| 0xA11Au64 ^ (id as u64).wrapping_mul(0x9E37_79B9);

    // 1. One SimNetwork lane per destination.
    let lanes: Vec<mlpt::sim::SimNetwork> = (0..destinations)
        .map(|id| internet.scenario(id).build_network(seed_of(id)))
        .collect();

    // 2. One shared transport over all lanes.
    let net = MultiNetwork::new(lanes).expect("scenario destinations are unique");
    let source = internet.scenario(0).source;

    // 3. One MDA session per destination, streamed into the engine: new
    //    sessions are admitted as the in-flight budget frees up, so the
    //    cross-destination batches stay full until the list runs dry.
    let mut engine = SweepEngine::new(net, source).with_config(SweepConfig {
        max_in_flight: 64,
        admission: Admission::Streaming,
        ..SweepConfig::default()
    });
    let sessions = (0..destinations).map(|id| {
        let destination = internet.scenario(id).topology.destination();
        Box::new(MdaSession::new(destination, TraceConfig::new(seed_of(id))))
            as Box<dyn TraceSession>
    });

    // 4. Run the sweep.
    let traces = engine.run_stream(sessions);
    let stats = *engine.stats();

    println!("swept {destinations} destinations concurrently:");
    for trace in &traces {
        println!(
            "  {}  {} probes, {} vertices, {} edges",
            trace.destination,
            trace.probes_sent,
            trace.total_vertices(),
            trace.total_edges()
        );
    }
    println!(
        "\n{} probes crossed the transport in {} dispatches \
         ({:.1} probes per dispatch; a sequential loop pays one dispatch \
         per per-trace round instead)",
        stats.probes_sent,
        stats.dispatch_cycles,
        stats.probes_per_dispatch(),
    );

    // The invariant that makes the engine trustworthy: a sweep changes
    // scheduling, never results.
    for (id, sweep_trace) in traces.iter().enumerate() {
        let scenario = internet.scenario(id);
        let mut prober = TransportProber::new(
            scenario.build_network(seed_of(id)),
            scenario.source,
            scenario.topology.destination(),
        );
        let sequential = trace_mda(&mut prober, &TraceConfig::new(seed_of(id)));
        assert_eq!(
            sweep_trace, &sequential,
            "sweep and sequential traces must be bit-identical"
        );
    }
    println!("verified: all {destinations} traces bit-identical to sequential runs");
}
