//! Statistical validation of a tracing tool against its analytic bound
//! (the paper's Sec. 3 experiment).
//!
//! For the simplest diamond and the 95 % stopping points, the MDA's
//! failure probability is exactly (1/2)^(n₁-1) = 0.03125. Fakeroute runs
//! the real implementation many times and checks that the empirical
//! failure rate matches — "not more, not less". Try breaking the tool
//! (e.g. fewer probes) and watch the validation fail.
//!
//! ```text
//! cargo run --release --example fakeroute_validation
//! ```

use mlpt::prelude::*;
use mlpt::sim::validate_tool;
use mlpt::topo::canonical;

fn main() {
    let topology = canonical::simplest_diamond();
    let stopping = StoppingPoints::mda95();
    let nks = stopping.as_slice().to_vec();

    println!("topology: simplest diamond (1-2-1)");
    println!(
        "analytic MDA failure probability: {:.5}\n",
        mlpt::sim::mda_failure_probability(&topology, &nks)
    );

    // Validate the real MDA implementation: 20 samples x 500 runs.
    println!("validating the real MDA (20 samples x 500 runs) ...");
    let report = validate_tool(&topology, &nks, 20, 500, 42, 0.95, |net, seed| {
        let destination = net.topology().destination();
        let want_vertices = net.topology().total_vertices();
        let mut prober = TransportProber::new(net, "192.0.2.1".parse().unwrap(), destination);
        let trace = trace_mda(&mut prober, &TraceConfig::new(seed));
        trace.total_vertices() == want_vertices
    });
    println!(
        "  empirical failure: {:.5}  CI: [{:.5}, {:.5}]  analytic inside: {}",
        report.interval.mean,
        report.interval.low(),
        report.interval.high(),
        report.analytic_within_interval()
    );

    // Now a deliberately broken tool: a "traceroute -m" style prober that
    // sends only 3 probes per hop. It must fail far above the bound.
    println!("\nvalidating a broken tool (3 probes per hop) ...");
    let broken = validate_tool(&topology, &nks, 20, 500, 42, 0.95, |net, seed| {
        let destination = net.topology().destination();
        let want = net.topology().total_vertices();
        let mut prober = TransportProber::new(net, "192.0.2.1".parse().unwrap(), destination);
        let mut found = std::collections::BTreeSet::new();
        for s in 0..3u16 {
            for ttl in 1..=3u8 {
                if let Some(obs) =
                    prober.probe(FlowId(seed as u16 ^ (s * 64 + u16::from(ttl))), ttl)
                {
                    found.insert((ttl, obs.responder));
                }
            }
        }
        found.len() == want
    });
    println!(
        "  empirical failure: {:.5}  CI: [{:.5}, {:.5}]  analytic inside: {}",
        broken.interval.mean,
        broken.interval.low(),
        broken.interval.high(),
        broken.analytic_within_interval()
    );
    println!("\nverdict: the MDA respects its bound; the under-probing tool does not.");
}
