//! Multilevel route tracing: from interfaces to routers.
//!
//! Reproduces the paper's headline scenario (Sec. 4): a trace shows four
//! parallel interfaces at a hop — are they four routers, or fewer? The
//! multilevel tracer answers *during* the trace, using the Monotonic
//! Bounds Test on IP-ID series, initial-TTL fingerprints and MPLS labels,
//! then collapses the IP-level diamond to the router level.
//!
//! ```text
//! cargo run --example multilevel
//! ```

use mlpt::alias::rounds::RoundsConfig;
use mlpt::prelude::*;
use mlpt::sim::{IpIdProfile, RouterProfile};
use mlpt::topo::diamond::all_diamond_metrics;
use mlpt::topo::graph::addr;
use mlpt::topo::RouterId;

fn main() {
    // Ground truth: a 1-4-1 diamond whose four middle interfaces belong
    // to two routers (A: interfaces 0&1, B: interfaces 2&3).
    let mut b = MultipathTopology::builder();
    b.add_hop([addr(0, 0)]);
    b.add_hop([addr(1, 0), addr(1, 1), addr(1, 2), addr(1, 3)]);
    b.add_hop([addr(2, 0)]);
    b.connect_unmeshed(0);
    b.connect_unmeshed(1);
    let topology = b.build().expect("valid");
    let truth =
        RouterMap::from_alias_sets([vec![addr(1, 0), addr(1, 1)], vec![addr(1, 2), addr(1, 3)]]);

    // Router A keeps one shared IP-ID counter (MBT-resolvable);
    // router B stamps per-interface counters for ICMP errors — the case
    // the paper's Table 2 shows indirect probing cannot confirm.
    let network = SimNetwork::builder(topology.clone())
        .routers(truth.clone())
        .profile(RouterId(0), RouterProfile::well_behaved())
        .profile(
            RouterId(1),
            RouterProfile {
                ipid: IpIdProfile::per_interface_indirect(2, 3),
                ..RouterProfile::well_behaved()
            },
        )
        .seed(99)
        .build();

    let mut prober = TransportProber::new(
        network,
        "192.0.2.1".parse().unwrap(),
        topology.destination(),
    );
    let config = MultilevelConfig {
        trace: TraceConfig::new(5),
        rounds: RoundsConfig::default(),
    };
    let result = trace_multilevel(&mut prober, &config);

    println!("IP-level view (what classic MDA-Lite reports):");
    let ip = result.ip_topology.as_ref().expect("destination reached");
    for (i, hop) in ip.hops().iter().enumerate() {
        let labels: Vec<String> = hop.iter().map(|v| v.to_string()).collect();
        println!("  hop {:>2}  {}", i + 1, labels.join("  "));
    }
    let m = all_diamond_metrics(ip).pop().expect("one diamond");
    println!("  diamond max width: {}\n", m.max_width);

    println!("alias sets inferred while tracing:");
    for (router, set) in result.router_map.alias_sets() {
        let labels: Vec<String> = set.iter().map(|v| v.to_string()).collect();
        println!("  router {:?}: {}", router, labels.join("  "));
    }

    println!("\nrouter-level view:");
    let router = result.router_topology.as_ref().expect("collapsed");
    for (i, hop) in router.hops().iter().enumerate() {
        let labels: Vec<String> = hop.iter().map(|v| v.to_string()).collect();
        println!("  hop {:>2}  {}", i + 1, labels.join("  "));
    }
    if let Some(m) = all_diamond_metrics(router).pop() {
        println!("  diamond max width: {}", m.max_width);
    }

    println!(
        "\ntrace probes: {}   alias-resolution probes: {}",
        result.trace.probes_sent, result.alias_probes
    );
    println!(
        "router A resolved: {} (shared counter — MBT confirms)",
        result.router_map.are_aliases(addr(1, 0), addr(1, 1))
    );
    println!(
        "router B resolved: {} (per-interface counters — indirect MBT cannot confirm, as in Table 2)",
        result.router_map.are_aliases(addr(1, 2), addr(1, 3))
    );
}
