//! Quickstart: trace a load-balanced topology with MDA-Lite.
//!
//! Builds the paper's Fig. 1 unmeshed diamond, serves it through the
//! Fakeroute simulator, traces it with MDA-Lite, and prints the
//! discovered hop-by-hop view alongside the probe bill — the basic
//! workflow every other example elaborates.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mlpt::prelude::*;

fn main() {
    // The topology under test: divergence → 4 interfaces → 2 → convergence.
    let topology = mlpt::topo::canonical::fig1_unmeshed();
    let destination = topology.destination();
    println!(
        "ground truth: {} hops, {} vertices, {} edges, destination {destination}\n",
        topology.num_hops(),
        topology.total_vertices(),
        topology.total_edges()
    );

    // Fakeroute serves real ICMP replies for real UDP probes.
    let network = SimNetwork::new(topology.clone(), 2026);
    let mut prober = TransportProber::new(network, "192.0.2.1".parse().unwrap(), destination);

    // Trace with MDA-Lite (95 % stopping points, phi = 2).
    let config = TraceConfig::new(7);
    let trace = trace_mda_lite(&mut prober, &config);

    println!("MDA-Lite trace to {destination}:");
    for ttl in 1..=trace.destination_ttl().unwrap_or(0) {
        let vertices = trace.vertices_at(ttl);
        let labels: Vec<String> = vertices.iter().map(|v| v.to_string()).collect();
        println!("  ttl {ttl:>2}  {}", labels.join("  "));
    }
    println!("\nprobes sent          : {}", trace.probes_sent);
    println!("switched to full MDA : {:?}", trace.switched);
    println!(
        "discovery complete   : {}",
        trace.total_vertices() == topology.total_vertices()
    );

    // Compare with the full MDA on the same network conditions.
    let network = SimNetwork::new(topology.clone(), 2026);
    let mut prober = TransportProber::new(network, "192.0.2.1".parse().unwrap(), destination);
    let mda = trace_mda(&mut prober, &config);
    println!(
        "\nfull MDA on the same topology: {} probes ({}% more than MDA-Lite)",
        mda.probes_sent,
        100 * (mda.probes_sent.saturating_sub(trace.probes_sent)) / trace.probes_sent.max(1)
    );
}
