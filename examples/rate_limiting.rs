//! Probing under ICMP rate limiting — the paper's future-work item 2.
//!
//! "Some assumptions, such as that every probe will receive a reply,
//! often do not hold in practice. Indeed, ICMP rate limiting is one
//! common cause of a lack of replies, and a simulator that takes rate
//! limiting into account could help in designing an algorithm to probe in
//! ways less likely to trigger rate limiting." This example does exactly
//! that: it sweeps token-bucket rates on a wide diamond and shows how
//! discovery degrades, and how retries buy some of it back.
//!
//! ```text
//! cargo run --release --example rate_limiting
//! ```

use mlpt::prelude::*;
use mlpt::topo::canonical;

fn main() {
    let topology = canonical::max_length_2(); // 28-wide single hop
    let truth = topology.total_vertices() as f64;
    println!("topology: max-length-2 diamond, 28 interfaces at the wide hop\n");
    println!(
        "{:<28} {:>8} {:>16} {:>12}",
        "ICMP rate limit", "retries", "vertices found", "probes sent"
    );

    let cases: [(&str, Option<(u32, f64)>); 4] = [
        ("unlimited", None),
        ("bucket 16, refill 1.0/tick", Some((16, 1.0))),
        ("bucket 8, refill 0.5/tick", Some((8, 0.5))),
        ("bucket 4, refill 0.25/tick", Some((4, 0.25))),
    ];
    for (label, limit) in cases {
        for retries in [0u8, 3] {
            let runs = 20;
            let mut vertices = 0.0;
            let mut probes = 0u64;
            for seed in 0..runs {
                let faults = match limit {
                    None => FaultPlan::none(),
                    Some((capacity, rate)) => FaultPlan::with_rate_limit(capacity, rate),
                };
                let net = SimNetwork::builder(topology.clone())
                    .faults(faults)
                    .seed(seed)
                    .build();
                let mut prober =
                    TransportProber::new(net, "192.0.2.1".parse().unwrap(), topology.destination())
                        .with_retries(retries);
                let trace = trace_mda_lite(&mut prober, &TraceConfig::new(seed));
                vertices += trace.total_vertices() as f64 / truth;
                probes += trace.probes_sent;
            }
            println!(
                "{:<28} {:>8} {:>15.1}% {:>12.1}",
                label,
                retries,
                100.0 * vertices / runs as f64,
                probes as f64 / runs as f64
            );
        }
    }
    println!(
        "\nRate limiting suppresses Time Exceeded replies mid-burst; retries recover\n\
         discovery at the cost of extra probes — the tradeoff the paper's future\n\
         work asks a simulator to expose."
    );
}
