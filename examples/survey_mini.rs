//! A miniature IP-level survey (Sec. 5.1) over the synthetic Internet.
//!
//! Traces a few hundred source→destination scenarios with the full MDA,
//! extracts every diamond, and prints the population statistics the
//! paper's Figs. 7, 9 and 10 report: how long and wide diamonds are, how
//! often they are width-asymmetric, and how often meshed.
//!
//! ```text
//! cargo run --release --example survey_mini
//! ```

use mlpt::survey::{run_ip_survey, InternetConfig, IpSurveyConfig, SyntheticInternet};

fn main() {
    let internet = SyntheticInternet::new(InternetConfig::default());
    let config = IpSurveyConfig {
        scenarios: 400,
        ..IpSurveyConfig::default()
    };
    println!(
        "tracing {} scenarios with the full MDA ...",
        config.scenarios
    );
    let report = run_ip_survey(&internet, &config);

    println!(
        "\nexploitable traces      : {} / {}",
        report.exploitable, report.traces
    );
    println!(
        "load-balanced traces    : {} ({:.1}%; paper: 52.6%)",
        report.load_balanced,
        100.0 * report.load_balanced as f64 / report.exploitable.max(1) as f64
    );
    println!(
        "measured diamonds       : {}",
        report.diamonds.measured_count()
    );
    println!(
        "distinct diamonds       : {}",
        report.diamonds.distinct_count()
    );

    let (ml, _dl, mw, _dw) = report.length_width_histograms();
    println!(
        "\nmax length = 2          : {:.1}% of measured diamonds (paper: ~48%)",
        100.0 * ml.portion(2)
    );
    println!(
        "widest diamond          : {} interfaces (paper: 96)",
        mw.max_value().unwrap_or(0)
    );

    let (zero_m, zero_d) = report.zero_asymmetry_share();
    println!(
        "zero width asymmetry    : measured {:.1}% / distinct {:.1}% (paper: 89%)",
        100.0 * zero_m,
        100.0 * zero_d
    );

    let meshed = report
        .diamonds
        .measured()
        .iter()
        .filter(|o| o.metrics.is_meshed())
        .count();
    println!(
        "meshed diamonds         : {:.1}% of measured (paper: 14.7%)",
        100.0 * meshed as f64 / report.diamonds.measured_count().max(1) as f64
    );

    println!("\nmax-width histogram (portion of measured diamonds):");
    for (value, _) in [(2u64, ()), (4, ()), (8, ()), (16, ()), (48, ()), (56, ())] {
        let share = mw.portion(value);
        let bar = "#".repeat((share * 200.0).round() as usize);
        println!("  W={value:<3} {share:>7.4} {bar}");
    }
}
