//! `mlpt` — Multilevel MDA-Lite Paris Traceroute, command-line edition.
//!
//! The paper's deliverable is a command-line traceroute with multipath
//! discovery and an option for a router-level view. This binary is that
//! tool, pointed at the Fakeroute simulator (no raw sockets are available
//! in this environment; the tracing stack is transport-agnostic).
//!
//! ```text
//! mlpt trace  [--topology NAME | --scenario N] [--algo mda|lite|single]
//!             [--stopping 95|99|veitch] [--phi K] [--seed S] [--loss P]
//!             [--json] [--pcap FILE]
//! mlpt multilevel [--topology NAME | --scenario N] [--rounds R] [--seed S]
//! mlpt topologies
//! ```

use mlpt::alias::rounds::RoundsConfig;
use mlpt::prelude::*;
use mlpt::sim::FaultPlan;
use mlpt::survey::{InternetConfig, SyntheticInternet};
use mlpt::topo::{canonical, is_star};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage();
        exit(2);
    };
    match command.as_str() {
        "trace" => cmd_trace(&args[1..]),
        "multilevel" => cmd_multilevel(&args[1..]),
        "topologies" => cmd_topologies(),
        "-h" | "--help" | "help" => usage(),
        other => {
            eprintln!("unknown command: {other}");
            usage();
            exit(2);
        }
    }
}

fn usage() {
    eprintln!(
        "mlpt — Multilevel MDA-Lite Paris Traceroute (over the Fakeroute simulator)

commands:
  trace        multipath trace at the IP level
               --topology NAME   canonical topology (see `mlpt topologies`)
               --scenario N      synthetic-Internet scenario number
               --algo ALGO       mda | lite (default) | single
               --stopping TABLE  95 (default) | 99 | veitch
               --phi K           MDA-Lite meshing effort (default 2)
               --seed S          trace seed (default 1)
               --loss P          inject reply loss probability
               --json            emit a machine-readable trace report
               --pcap FILE       write all probe/reply packets as pcap
               --draw            append an ASCII sketch of the topology
  multilevel   MDA-Lite trace + in-trace alias resolution (router view)
               --rounds R        alias-resolution rounds (default 10)
               (accepts the trace options above)
  topologies   list canonical topologies"
    );
}

struct Options {
    topology: Option<String>,
    scenario: Option<usize>,
    algo: String,
    stopping: String,
    phi: u32,
    seed: u64,
    loss: f64,
    rounds: u32,
    json: bool,
    pcap: Option<String>,
    draw: bool,
}

fn parse_options(args: &[String]) -> Options {
    let mut opts = Options {
        topology: None,
        scenario: None,
        algo: "lite".into(),
        stopping: "95".into(),
        phi: 2,
        seed: 1,
        loss: 0.0,
        rounds: 10,
        json: false,
        pcap: None,
        draw: false,
    };
    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| -> &String {
            args.get(i + 1).unwrap_or_else(|| {
                eprintln!("{} needs a value", args[i]);
                exit(2);
            })
        };
        match args[i].as_str() {
            "--topology" => opts.topology = Some(need(i).clone()),
            "--scenario" => {
                opts.scenario = Some(need(i).parse().unwrap_or_else(|_| {
                    eprintln!("--scenario needs a number");
                    exit(2);
                }))
            }
            "--algo" => opts.algo = need(i).clone(),
            "--stopping" => opts.stopping = need(i).clone(),
            "--phi" => opts.phi = need(i).parse().unwrap_or(2),
            "--seed" => opts.seed = need(i).parse().unwrap_or(1),
            "--loss" => opts.loss = need(i).parse().unwrap_or(0.0),
            "--rounds" => opts.rounds = need(i).parse().unwrap_or(10),
            "--json" => {
                opts.json = true;
                i += 1;
                continue;
            }
            "--draw" => {
                opts.draw = true;
                i += 1;
                continue;
            }
            "--pcap" => opts.pcap = Some(need(i).clone()),
            other => {
                eprintln!("unknown option: {other}");
                exit(2);
            }
        }
        i += 2;
    }
    opts
}

/// Resolves the target: a canonical topology or a synthetic scenario.
fn build_network(opts: &Options) -> (SimNetwork, Ipv4Addr, Ipv4Addr, Option<RouterMap>) {
    let source: Ipv4Addr = "192.0.2.1".parse().expect("static");
    if let Some(n) = opts.scenario {
        let internet = SyntheticInternet::new(InternetConfig::default());
        let scenario = internet.scenario(n);
        let destination = scenario.topology.destination();
        let truth = scenario.routers.clone();
        let net = scenario.build_network(opts.seed);
        return (net, source, destination, Some(truth));
    }
    let name = opts.topology.as_deref().unwrap_or("fig1-unmeshed");
    let topology = match name {
        "simplest" => canonical::simplest_diamond(),
        "fig1-unmeshed" => canonical::fig1_unmeshed(),
        "fig1-meshed" => canonical::fig1_meshed(),
        "max-length-2" => canonical::max_length_2(),
        "symmetric" => canonical::symmetric(),
        "asymmetric" => canonical::asymmetric(),
        "meshed" => canonical::meshed(),
        other => {
            eprintln!("unknown topology {other}; see `mlpt topologies`");
            exit(2);
        }
    };
    let destination = topology.destination();
    let net = SimNetwork::builder(topology)
        .faults(if opts.loss > 0.0 {
            FaultPlan::with_loss(0.0, opts.loss)
        } else {
            FaultPlan::none()
        })
        .seed(opts.seed)
        .build();
    (net, source, destination, None)
}

fn stopping_points(name: &str) -> StoppingPoints {
    match name {
        "95" => StoppingPoints::mda95(),
        "99" => StoppingPoints::mda99(),
        "veitch" => StoppingPoints::veitch_table1(),
        other => {
            eprintln!("unknown stopping table {other} (95|99|veitch)");
            exit(2);
        }
    }
}

fn cmd_topologies() {
    println!("canonical topologies (from the paper):");
    println!("  simplest       1-2-1: the Sec. 3 validation diamond");
    println!("  fig1-unmeshed  1-4-2-1, single successors (Fig. 1 left)");
    println!("  fig1-meshed    1-4-2-1, full mesh between hops 2-3 (Fig. 1 right)");
    println!("  max-length-2   divergence, 28-interface hop, convergence (Sec. 2.4.1)");
    println!("  symmetric      1-5-10-5-1, uniform and unmeshed (Sec. 2.4.1)");
    println!("  asymmetric     width asymmetry 17; forces an MDA switch (Sec. 2.4.1)");
    println!("  meshed         five multi-vertex hops, 48 wide, meshed (Sec. 2.4.1)");
    println!("\nsynthetic scenarios: any index, e.g. `mlpt trace --scenario 7`");
}

/// Renders a hop line in classic traceroute style.
fn render_hops(trace: &Trace, routers: Option<&RouterMap>) {
    let last = trace
        .destination_ttl()
        .unwrap_or_else(|| trace.discovery.max_observed_ttl());
    for ttl in 1..=last {
        let vertices = trace.vertices_at(ttl);
        let mut parts: Vec<String> = Vec::new();
        if vertices.is_empty() {
            parts.push("*".into());
        }
        for &v in vertices {
            if is_star(v) {
                parts.push("*".into());
                continue;
            }
            let flows = trace.discovery.flows_reaching(ttl, v).len();
            match routers.and_then(|r| r.router_of(v)) {
                Some(router) => parts.push(format!("{v} [R{}] ({flows} flows)", router.0)),
                None => parts.push(format!("{v} ({flows} flows)")),
            }
        }
        println!("{ttl:>3}  {}", parts.join("\n     "));
    }
}

fn cmd_trace(args: &[String]) {
    let opts = parse_options(args);
    let (net, source, destination, _truth) = build_network(&opts);
    let capture = mlpt::sim::CapturingTransport::new(net);
    let mut prober = TransportProber::new(capture, source, destination);
    let config = TraceConfig::new(opts.seed)
        .with_stopping(stopping_points(&opts.stopping))
        .with_phi(opts.phi);

    let trace = match opts.algo.as_str() {
        "mda" => trace_mda(&mut prober, &config),
        "lite" => trace_mda_lite(&mut prober, &config),
        "single" => trace_single_flow(&mut prober, &config, FlowId(opts.seed as u16)),
        other => {
            eprintln!("unknown algorithm {other} (mda|lite|single)");
            exit(2);
        }
    };

    if let Some(path) = &opts.pcap {
        match prober
            .transport_mut()
            .write_pcap(std::path::Path::new(path))
        {
            Ok(()) => eprintln!("[pcap written to {path}]"),
            Err(e) => {
                eprintln!("failed to write pcap: {e}");
                exit(1);
            }
        }
    }
    if opts.json {
        let report = mlpt::core::TraceReport::from_trace(&trace);
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("serializable")
        );
        return;
    }

    println!(
        "mlpt: {} to {destination}, stopping table {}, seed {}",
        match opts.algo.as_str() {
            "mda" => "MDA",
            "single" => "single-flow Paris traceroute",
            _ => "MDA-Lite",
        },
        opts.stopping,
        opts.seed
    );
    render_hops(&trace, None);
    if opts.draw {
        if let Some(topology) = trace.to_topology() {
            println!("\n{}", mlpt::topo::render_ascii(&topology).trim_end());
        }
    }
    println!(
        "\n{} probes; destination {}; {} vertices, {} edges{}",
        trace.probes_sent,
        if trace.reached_destination {
            "reached"
        } else {
            "NOT reached"
        },
        trace.total_vertices(),
        trace.total_edges(),
        match trace.switched {
            Some(SwitchReason::MeshingDetected { ttl }) =>
                format!("; switched to full MDA (meshing at ttl {ttl})"),
            Some(SwitchReason::AsymmetryDetected { ttl }) =>
                format!("; switched to full MDA (asymmetry at ttl {ttl})"),
            None => String::new(),
        }
    );
}

fn cmd_multilevel(args: &[String]) {
    let opts = parse_options(args);
    let (net, source, destination, truth) = build_network(&opts);
    let mut prober = TransportProber::new(net, source, destination);
    let config = MultilevelConfig {
        trace: TraceConfig::new(opts.seed)
            .with_stopping(stopping_points(&opts.stopping))
            .with_phi(opts.phi),
        rounds: RoundsConfig {
            rounds: opts.rounds,
            ..RoundsConfig::default()
        },
    };
    let result = trace_multilevel(&mut prober, &config);

    println!(
        "mlpt: multilevel MDA-Lite to {destination}, seed {}",
        opts.seed
    );
    render_hops(&result.trace, Some(&result.router_map));
    println!("\nalias sets (routers) inferred during the trace:");
    let mut any = false;
    for (router, set) in result.router_map.alias_sets() {
        if set.len() < 2 {
            continue;
        }
        any = true;
        let members: Vec<String> = set.iter().map(|a| a.to_string()).collect();
        println!("  R{}: {}", router.0, members.join("  "));
    }
    if !any {
        println!("  (none — every interface looks like its own router)");
    }

    if let Some(truth) = truth {
        let inferred = &result.router_map;
        let mut agree = 0usize;
        let mut total = 0usize;
        let addresses: Vec<Ipv4Addr> = result.trace.all_addresses().into_iter().collect();
        for i in 0..addresses.len() {
            for j in i + 1..addresses.len() {
                total += 1;
                if inferred.are_aliases(addresses[i], addresses[j])
                    == truth.are_aliases(addresses[i], addresses[j])
                {
                    agree += 1;
                }
            }
        }
        if total > 0 {
            println!(
                "\nground truth agreement: {agree}/{total} address pairs ({:.1}%)",
                100.0 * agree as f64 / total as f64
            );
        }
    }

    if let (Some(ip), Some(router)) = (&result.ip_topology, &result.router_topology) {
        let ip_d = mlpt::topo::diamond::all_diamond_metrics(ip);
        let r_d = mlpt::topo::diamond::all_diamond_metrics(router);
        let ip_widths: Vec<usize> = ip_d.iter().map(|m| m.max_width).collect();
        let r_widths: Vec<usize> = r_d.iter().map(|m| m.max_width).collect();
        println!(
            "\ndiamonds: IP level {:?} wide → router level {:?} wide",
            ip_widths, r_widths
        );
    }
    println!(
        "\ntrace probes: {}; alias probes: {}",
        result.trace.probes_sent, result.alias_probes
    );

    // Per-hop round summary (Fig. 5 style, this trace only).
    if !result.hop_reports.is_empty() {
        let mut per_round: BTreeMap<u32, u64> = BTreeMap::new();
        for reports in result.hop_reports.values() {
            for r in reports {
                *per_round.entry(r.round).or_insert(0) += r.cumulative_probes;
            }
        }
        let rounds: Vec<String> = per_round.iter().map(|(r, p)| format!("r{r}:{p}")).collect();
        println!("alias probes by round: {}", rounds.join(" "));
    }
}
