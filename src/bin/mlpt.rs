//! `mlpt` — Multilevel MDA-Lite Paris Traceroute, command-line edition.
//!
//! The paper's deliverable is a command-line traceroute with multipath
//! discovery and an option for a router-level view. This binary is that
//! tool, pointed at the Fakeroute simulator (no raw sockets are available
//! in this environment; the tracing stack is transport-agnostic).
//!
//! ```text
//! mlpt trace  [--topology NAME | --scenario N] [--algo mda|lite|single]
//!             [--stopping 95|99|veitch] [--phi K] [--seed S] [--loss P]
//!             [--json] [--pcap FILE]
//! mlpt multilevel [--topology NAME | --scenario N] [--rounds R] [--seed S]
//! mlpt topologies
//! ```

use mlpt::alias::rounds::RoundsConfig;
use mlpt::prelude::*;
use mlpt::sim::{FaultPlan, FaultSchedule, TopologySchedule};
use mlpt::survey::{InternetConfig, SyntheticInternet};
use mlpt::topo::{canonical, is_star};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage();
        exit(2);
    };
    match command.as_str() {
        "trace" => cmd_trace(&args[1..]),
        "sweep" => cmd_sweep(&args[1..]),
        "alias" => cmd_alias(&args[1..]),
        "multilevel" => cmd_multilevel(&args[1..]),
        "topologies" => cmd_topologies(),
        "-h" | "--help" | "help" => usage(),
        other => {
            eprintln!("unknown command: {other}");
            usage();
            exit(2);
        }
    }
}

fn usage() {
    eprintln!(
        "mlpt — Multilevel MDA-Lite Paris Traceroute (over the Fakeroute simulator)

commands:
  trace        multipath trace at the IP level
               --topology NAME   canonical topology (see `mlpt topologies`)
               --scenario N      synthetic-Internet scenario number
               --algo ALGO       mda | lite (default) | single
               --stopping TABLE  95 (default) | 99 | veitch
               --phi K           MDA-Lite meshing effort (default 2)
               --seed S          trace seed (default 1)
               --loss P          inject reply loss probability
               --json            emit a machine-readable trace report
               --pcap FILE       write all probe/reply packets as pcap
               --draw            append an ASCII sketch of the topology
  sweep        trace many destinations concurrently over one transport;
               destinations stream into the engine as in-flight tokens
               free up, so batches stay full to the end of the list
               --topology NAME   canonical topology replicated per
                                 destination in disjoint address blocks;
                                 the special name `shared-prefix` builds
                                 a Doubletree family instead — all lanes
                                 share one near-source prefix
               --destinations N  concurrent destinations (default 8)
               --stdin           read the destination list from stdin
                                 instead: one canonical topology name per
                                 line (blank lines and # comments skipped)
               --algo ALGO       mda | lite (default) | single
               --max-in-flight P max probes in flight per dispatch
                                 (default 1024; --budget is an alias)
               --adaptive-budget AIMD budget controller: ramps up while
                                 replies are clean, multiplicatively backs
                                 off on loss/rate-limiting, per-lane fair
               --admission MODE  streaming (default) | eager (fixed
                                 table) | cost-aware (heaviest predicted
                                 sessions first; identical results) |
                                 cost-aware-windowed:K (same, over a
                                 sliding K-session window for unbounded
                                 --stdin streams)
               --stop-set        share a sweep-wide Doubletree stop set:
                                 later sessions start mid-path, probe
                                 backward to a shared-stop hit and elide
                                 the redundant near-source prefix
               --start-ttl T     fixed mid-path start TTL for --stop-set
                                 (default: adapt from committed
                                 destination TTLs)
               --workers W       simulator worker threads (default 1)
               --shards N        engine shards: destinations partition
                                 deterministically across N independent
                                 sweep engines driven on worker threads
                                 (default 1; results are bit-identical
                                 for any shard count)
               --cycle-gap T     virtual ticks between dispatch cycles
                                 (lets rate-limited routers refill;
                                 default 0)
               --loss P          inject reply loss probability
               --rate-limit N/W  ICMP rate limit: N replies per W ticks
                                 per router
               --fault-schedule NAME
                                 time-scheduled impairments per lane
                                 (midtrace-blackhole | flap |
                                 congestion-ramp | rate-limit-burst);
                                 overrides --loss/--rate-limit and arms
                                 the stall watchdog
               --topology-schedule NAME
                                 time-scheduled route changes per lane
                                 (route-flap | lb-regrow | lb-shrink |
                                 tunnel-reveal); arms the route audit
                                 (detection + bounded recovery) and the
                                 stall watchdog
               --reprobe-budget N
                                 audit probes per session for the route
                                 audit (default 256 when armed); arms
                                 the audit even without a schedule
               --probe-timeout T base probe deadline in virtual ticks
                                 (default 4096; exponential backoff on
                                 lossy retry waves)
               --max-retries R   retry waves per round for unanswered
                                 probes (default 0)
               --seed S          base seed (default 1)
               --json            emit a machine-readable sweep report
  alias        alias-resolution rounds for many destinations at once:
               each target is a synthetic-Internet scenario number; the
               full multilevel pipeline (trace + Round 0..R protocol)
               runs as one resumable session per destination, and all
               sessions stream concurrently through the sweep engine
               (scenarios sharing core interface addresses are split
               into address-disjoint sub-sweeps automatically)
               N [N ...]         scenario numbers, as positional args
               --stdin           read scenario numbers from stdin
                                 instead (one per line; # comments ok)
               --rounds R        alias-resolution rounds (default 10)
               --replies K       MBT replies attempted per address per
                                 round (default 30)
               --method M        indirect (MMLPT, default) | direct
                                 (MIDAR-style echo probing)
               --max-in-flight P max probes in flight per dispatch
                                 (default 1024)
               --adaptive-budget AIMD in-flight budget controller
               --admission MODE  streaming (default) | eager |
                                 cost-aware (wide-hop destinations start
                                 first, ordered by predicted alias cost
                                 from the scenario topology; results are
                                 identical, only the schedule changes) |
                                 cost-aware-windowed:K (sliding window)
               --stop-set        share a Doubletree stop set across the
                                 trace phases of the sweep
               --start-ttl T     fixed mid-path start TTL for --stop-set
               --fanout          run each destination's per-hop alias
                                 stages as one concurrent wave phase
                                 instead of hop after hop (deterministic
                                 protocol variant; cuts a wide
                                 destination's round-trip chain)
               --rate-limit N/W  ICMP rate limit: N replies per W ticks
                                 per router
               --fault-schedule NAME
                                 time-scheduled impairments per lane
                                 (midtrace-blackhole | flap |
                                 congestion-ramp | rate-limit-burst);
                                 overrides --rate-limit and arms the
                                 stall watchdog
               --probe-timeout T base probe deadline in virtual ticks
                                 (default 4096)
               --max-retries R   retry waves per round (default 0)
               --shards N        engine shards per sub-sweep (default 1;
                                 bit-identical for any shard count)
               --cycle-gap T     virtual ticks between dispatch cycles
               --seed S          base seed (default 1)
               --json            emit a machine-readable report
  multilevel   MDA-Lite trace + in-trace alias resolution (router view)
               --rounds R        alias-resolution rounds (default 10)
               (accepts the trace options above)
  topologies   list canonical topologies"
    );
}

struct Options {
    topology: Option<String>,
    scenario: Option<usize>,
    algo: String,
    stopping: String,
    phi: u32,
    seed: u64,
    loss: f64,
    rounds: u32,
    destinations: usize,
    budget: usize,
    adaptive: bool,
    admission: Admission,
    stop_set: bool,
    start_ttl: Option<u8>,
    stdin_list: bool,
    cycle_gap: u64,
    rate_limit: Option<(u32, u64)>,
    fault_schedule: Option<FaultSchedule>,
    topology_schedule: Option<TopologySchedule>,
    reprobe_budget: Option<u64>,
    probe_timeout: u64,
    max_retries: u8,
    workers: usize,
    shards: usize,
    json: bool,
    pcap: Option<String>,
    draw: bool,
}

/// Resolves a `--fault-schedule` preset name, exiting with the list of
/// known presets on an unknown name.
fn fault_schedule_preset(name: &str) -> FaultSchedule {
    FaultSchedule::preset(name).unwrap_or_else(|| {
        eprintln!(
            "unknown fault schedule {name} (one of: {})",
            FaultSchedule::preset_names().join(" | ")
        );
        exit(2);
    })
}

/// Resolves a `--topology-schedule` preset name, exiting with the list
/// of known presets on an unknown name.
fn topology_schedule_preset(name: &str) -> TopologySchedule {
    TopologySchedule::preset(name).unwrap_or_else(|| {
        eprintln!(
            "unknown topology schedule {name} (one of: {})",
            TopologySchedule::preset_names().join(" | ")
        );
        exit(2);
    })
}

fn parse_options(args: &[String]) -> Options {
    let mut opts = Options {
        topology: None,
        scenario: None,
        algo: "lite".into(),
        stopping: "95".into(),
        phi: 2,
        seed: 1,
        loss: 0.0,
        rounds: 10,
        destinations: 8,
        budget: 1024,
        adaptive: false,
        admission: Admission::Streaming,
        stop_set: false,
        start_ttl: None,
        stdin_list: false,
        cycle_gap: 0,
        rate_limit: None,
        fault_schedule: None,
        topology_schedule: None,
        reprobe_budget: None,
        probe_timeout: RetryPolicy::default().base_timeout,
        max_retries: 0,
        workers: 1,
        shards: 1,
        json: false,
        pcap: None,
        draw: false,
    };
    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| -> &String {
            args.get(i + 1).unwrap_or_else(|| {
                eprintln!("{} needs a value", args[i]);
                exit(2);
            })
        };
        match args[i].as_str() {
            "--topology" => opts.topology = Some(need(i).clone()),
            "--scenario" => {
                opts.scenario = Some(need(i).parse().unwrap_or_else(|_| {
                    eprintln!("--scenario needs a number");
                    exit(2);
                }))
            }
            "--algo" => opts.algo = need(i).clone(),
            "--stopping" => opts.stopping = need(i).clone(),
            "--phi" => opts.phi = need(i).parse().unwrap_or(2),
            "--seed" => opts.seed = need(i).parse().unwrap_or(1),
            "--loss" => opts.loss = need(i).parse().unwrap_or(0.0),
            "--rounds" => opts.rounds = need(i).parse().unwrap_or(10),
            "--destinations" => opts.destinations = need(i).parse().unwrap_or(8),
            "--budget" | "--max-in-flight" => opts.budget = need(i).parse().unwrap_or(1024),
            "--admission" => opts.admission = parse_admission(need(i)),
            "--stop-set" => {
                opts.stop_set = true;
                i += 1;
                continue;
            }
            "--start-ttl" => {
                opts.start_ttl = Some(need(i).parse().unwrap_or_else(|_| {
                    eprintln!("--start-ttl needs a TTL (1..=255)");
                    exit(2);
                }))
            }
            "--cycle-gap" => opts.cycle_gap = need(i).parse().unwrap_or(0),
            "--rate-limit" => {
                let spec = need(i);
                let parsed = spec
                    .split_once('/')
                    .and_then(|(n, w)| Some((n.parse::<u32>().ok()?, w.parse::<u64>().ok()?)));
                match parsed {
                    Some((n, w)) if n > 0 && w > 0 => opts.rate_limit = Some((n, w)),
                    _ => {
                        eprintln!("--rate-limit needs N/W (replies per window ticks)");
                        exit(2);
                    }
                }
            }
            "--fault-schedule" => opts.fault_schedule = Some(fault_schedule_preset(need(i))),
            "--topology-schedule" => {
                opts.topology_schedule = Some(topology_schedule_preset(need(i)))
            }
            "--reprobe-budget" => {
                opts.reprobe_budget = Some(need(i).parse().unwrap_or_else(|_| {
                    eprintln!("--reprobe-budget needs a probe count");
                    exit(2);
                }))
            }
            "--probe-timeout" => {
                opts.probe_timeout = need(i).parse().unwrap_or_else(|_| {
                    eprintln!("--probe-timeout needs a tick count");
                    exit(2);
                })
            }
            "--max-retries" => {
                opts.max_retries = need(i).parse().unwrap_or_else(|_| {
                    eprintln!("--max-retries needs a small number");
                    exit(2);
                })
            }
            "--adaptive-budget" => {
                opts.adaptive = true;
                i += 1;
                continue;
            }
            "--stdin" => {
                opts.stdin_list = true;
                i += 1;
                continue;
            }
            "--workers" => opts.workers = need(i).parse().unwrap_or(1),
            "--shards" => opts.shards = need(i).parse::<usize>().unwrap_or(1).max(1),
            "--json" => {
                opts.json = true;
                i += 1;
                continue;
            }
            "--draw" => {
                opts.draw = true;
                i += 1;
                continue;
            }
            "--pcap" => opts.pcap = Some(need(i).clone()),
            other => {
                eprintln!("unknown option: {other}");
                exit(2);
            }
        }
        i += 2;
    }
    opts
}

fn parse_admission(value: &str) -> Admission {
    if let Some(window) = value.strip_prefix("cost-aware-windowed:") {
        match window.parse::<usize>() {
            Ok(k) if k > 0 => return Admission::CostAwareWindowed(k),
            _ => {
                eprintln!(
                    "cost-aware-windowed needs a positive window, e.g. cost-aware-windowed:64"
                );
                exit(2);
            }
        }
    }
    match value {
        "streaming" => Admission::Streaming,
        "eager" => Admission::Eager,
        "cost-aware" => Admission::CostAware,
        other => {
            eprintln!(
                "unknown admission mode {other} \
                 (streaming|eager|cost-aware|cost-aware-windowed:K)"
            );
            exit(2);
        }
    }
}

fn admission_name(admission: Admission) -> String {
    match admission {
        Admission::Streaming => "streaming".into(),
        Admission::Eager => "eager".into(),
        Admission::CostAware => "cost-aware".into(),
        Admission::CostAwareWindowed(window) => format!("cost-aware-windowed:{window}"),
    }
}

/// Builds the sweep's shared-stop-set configuration from the CLI
/// flags: `--stop-set` arms it, `--start-ttl` pins a fixed mid-path
/// start TTL (otherwise the engine adapts it from committed
/// destination TTLs).
fn stop_set_config(stop_set: bool, start_ttl: Option<u8>) -> Option<StopSetConfig> {
    stop_set.then(|| {
        let mut cfg = StopSetConfig::default();
        if let Some(ttl) = start_ttl {
            cfg.start_ttl = ttl.max(1);
            cfg.adaptive_start = false;
        }
        cfg
    })
}

/// Resolves a canonical topology by CLI name.
fn canonical_topology(name: &str) -> mlpt::topo::MultipathTopology {
    match name {
        "simplest" => canonical::simplest_diamond(),
        "fig1-unmeshed" => canonical::fig1_unmeshed(),
        "fig1-meshed" => canonical::fig1_meshed(),
        "max-length-2" => canonical::max_length_2(),
        "symmetric" => canonical::symmetric(),
        "asymmetric" => canonical::asymmetric(),
        "meshed" => canonical::meshed(),
        other => {
            eprintln!("unknown topology {other}; see `mlpt topologies`");
            exit(2);
        }
    }
}

/// Resolves the target: a canonical topology or a synthetic scenario.
fn build_network(opts: &Options) -> (SimNetwork, Ipv4Addr, Ipv4Addr, Option<RouterMap>) {
    // mlpt: allow(MLPT-W004, reason = "parsing a static dotted-quad literal cannot fail")
    let source: Ipv4Addr = "192.0.2.1".parse().expect("static");
    if let Some(n) = opts.scenario {
        let internet = SyntheticInternet::new(InternetConfig::default());
        let scenario = internet.scenario(n);
        let destination = scenario.topology.destination();
        let truth = scenario.routers.clone();
        let net = scenario.build_network(opts.seed);
        return (net, source, destination, Some(truth));
    }
    let topology = canonical_topology(opts.topology.as_deref().unwrap_or("fig1-unmeshed"));
    let destination = topology.destination();
    let net = SimNetwork::builder(topology)
        .faults(if opts.loss > 0.0 {
            FaultPlan::with_loss(0.0, opts.loss)
        } else {
            FaultPlan::none()
        })
        .seed(opts.seed)
        .build();
    (net, source, destination, None)
}

fn stopping_points(name: &str) -> StoppingPoints {
    match name {
        "95" => StoppingPoints::mda95(),
        "99" => StoppingPoints::mda99(),
        "veitch" => StoppingPoints::veitch_table1(),
        other => {
            eprintln!("unknown stopping table {other} (95|99|veitch)");
            exit(2);
        }
    }
}

fn cmd_topologies() {
    println!("canonical topologies (from the paper):");
    println!("  simplest       1-2-1: the Sec. 3 validation diamond");
    println!("  fig1-unmeshed  1-4-2-1, single successors (Fig. 1 left)");
    println!("  fig1-meshed    1-4-2-1, full mesh between hops 2-3 (Fig. 1 right)");
    println!("  max-length-2   divergence, 28-interface hop, convergence (Sec. 2.4.1)");
    println!("  symmetric      1-5-10-5-1, uniform and unmeshed (Sec. 2.4.1)");
    println!("  asymmetric     width asymmetry 17; forces an MDA switch (Sec. 2.4.1)");
    println!("  meshed         five multi-vertex hops, 48 wide, meshed (Sec. 2.4.1)");
    println!("  shared-prefix  sweep-only family: 20 common hops + a 4-hop private");
    println!("                 suffix per destination (Doubletree stop-set workload)");
    println!("\nsynthetic scenarios: any index, e.g. `mlpt trace --scenario 7`");
}

/// Renders a hop line in classic traceroute style.
fn render_hops(trace: &Trace, routers: Option<&RouterMap>) {
    let last = trace
        .destination_ttl()
        .unwrap_or_else(|| trace.discovery.max_observed_ttl());
    for ttl in 1..=last {
        let vertices = trace.vertices_at(ttl);
        let mut parts: Vec<String> = Vec::new();
        if vertices.is_empty() {
            parts.push("*".into());
        }
        for &v in vertices {
            if is_star(v) {
                parts.push("*".into());
                continue;
            }
            let flows = trace.discovery.flows_reaching(ttl, v).len();
            match routers.and_then(|r| r.router_of(v)) {
                Some(router) => parts.push(format!("{v} [R{}] ({flows} flows)", router.0)),
                None => parts.push(format!("{v} ({flows} flows)")),
            }
        }
        println!("{ttl:>3}  {}", parts.join("\n     "));
    }
}

fn cmd_trace(args: &[String]) {
    let opts = parse_options(args);
    let (net, source, destination, _truth) = build_network(&opts);
    let capture = mlpt::sim::CapturingTransport::new(net);
    let mut prober = TransportProber::new(capture, source, destination);
    let config = TraceConfig::new(opts.seed)
        .with_stopping(stopping_points(&opts.stopping))
        .with_phi(opts.phi);

    let trace = match opts.algo.as_str() {
        "mda" => trace_mda(&mut prober, &config),
        "lite" => trace_mda_lite(&mut prober, &config),
        "single" => trace_single_flow(&mut prober, &config, FlowId(opts.seed as u16)),
        other => {
            eprintln!("unknown algorithm {other} (mda|lite|single)");
            exit(2);
        }
    };

    if let Some(path) = &opts.pcap {
        match prober
            .transport_mut()
            .write_pcap(std::path::Path::new(path))
        {
            Ok(()) => eprintln!("[pcap written to {path}]"),
            Err(e) => {
                eprintln!("failed to write pcap: {e}");
                exit(1);
            }
        }
    }
    if opts.json {
        let report = mlpt::core::TraceReport::from_trace(&trace);
        println!(
            "{}",
            // mlpt: allow(MLPT-W004, reason = "report types serialize infallibly (no maps with non-string keys, no custom Serialize)")
            serde_json::to_string_pretty(&report).expect("serializable")
        );
        return;
    }

    println!(
        "mlpt: {} to {destination}, stopping table {}, seed {}",
        match opts.algo.as_str() {
            "mda" => "MDA",
            "single" => "single-flow Paris traceroute",
            _ => "MDA-Lite",
        },
        opts.stopping,
        opts.seed
    );
    render_hops(&trace, None);
    if opts.draw {
        if let Some(topology) = trace.to_topology() {
            println!("\n{}", mlpt::topo::render_ascii(&topology).trim_end());
        }
    }
    println!(
        "\n{} probes; destination {}; {} vertices, {} edges{}",
        trace.probes_sent,
        if trace.reached_destination {
            "reached"
        } else {
            "NOT reached"
        },
        trace.total_vertices(),
        trace.total_edges(),
        match trace.switched {
            Some(SwitchReason::MeshingDetected { ttl }) =>
                format!("; switched to full MDA (meshing at ttl {ttl})"),
            Some(SwitchReason::AsymmetryDetected { ttl }) =>
                format!("; switched to full MDA (asymmetry at ttl {ttl})"),
            None => String::new(),
        }
    );
}

/// Traces many destinations concurrently: canonical topologies replicated
/// into disjoint address blocks (one lane per destination in a shared
/// simulator), their sessions *streamed* into the sweep engine over a
/// single transport — new destinations are admitted as in-flight tokens
/// free up, so batches stay full from the first probe to the last.
fn cmd_sweep(args: &[String]) {
    let opts = parse_options(args);
    // The destination list: one canonical-topology name per lane, either
    // streamed in on stdin (one per line) or --topology replicated
    // --destinations times.
    let names: Vec<String> = if opts.stdin_list {
        use std::io::BufRead;
        std::io::stdin()
            .lock()
            .lines()
            .map_while(Result::ok)
            .map(|l| l.trim().to_string())
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .collect()
    } else {
        let name = opts.topology.clone().unwrap_or("fig1-unmeshed".into());
        vec![name; opts.destinations]
    };
    if names.is_empty() {
        eprintln!("destination list is empty (--destinations must be at least 1)");
        exit(2);
    }
    if names.len() > 200 {
        eprintln!("destination list is capped at 200 (address-block replication)");
        exit(2);
    }
    // mlpt: allow(MLPT-W004, reason = "parsing a static dotted-quad literal cannot fail")
    let source: Ipv4Addr = "192.0.2.1".parse().expect("static");
    let mut config = TraceConfig::new(opts.seed)
        .with_stopping(stopping_points(&opts.stopping))
        .with_phi(opts.phi);
    // A mutation schedule (or an explicit budget) arms the route audit:
    // sessions re-verify committed evidence after their stopping rule
    // fires and re-trace contradicted suffixes under the bounded budget.
    if opts.topology_schedule.is_some() || opts.reprobe_budget.is_some() {
        config = config.with_reprobe(ReprobeBudget {
            max_reprobes: opts.reprobe_budget.unwrap_or(256),
            ..ReprobeBudget::default()
        });
    }
    // Under a mutation schedule, node-control hunts against branches
    // that no longer exist can otherwise grind through the whole u16
    // flow space before the exhaustion guard stops them; a tight
    // allowance keeps the sweep fast without affecting detection.
    if opts.topology_schedule.is_some() {
        config.node_control_attempts = 500;
    }
    let faults = {
        let mut plan = if opts.loss > 0.0 {
            FaultPlan::with_loss(0.0, opts.loss)
        } else {
            FaultPlan::none()
        };
        if let Some((replies, window)) = opts.rate_limit {
            let window_plan = FaultPlan::with_rate_limit_window(replies, window);
            plan.icmp_bucket_capacity = window_plan.icmp_bucket_capacity;
            plan.icmp_tokens_per_tick = window_plan.icmp_tokens_per_tick;
        }
        plan
    };

    // One lane per destination: the topology shifted into its own /8-ish
    // block, simulated with its own seed, clock and RNG streams. The
    // `shared-prefix` family is the exception: its lanes deliberately
    // share a near-source prefix of interface addresses (the Doubletree
    // stop-set workload), so it stays untranslated.
    let topologies: Vec<mlpt::topo::MultipathTopology> = names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            if name == "shared-prefix" {
                canonical::shared_prefix_lane(20, 4, i)
            } else {
                canonical_topology(name).translated(0x0100_0000 * (i as u32 + 1))
            }
        })
        .collect();
    let lanes: Vec<SimNetwork> = topologies
        .iter()
        .enumerate()
        .map(|(i, topo)| {
            let mut builder =
                SimNetwork::builder(topo.clone()).seed(opts.seed.wrapping_add(i as u64));
            builder = match &opts.fault_schedule {
                Some(schedule) => builder.fault_schedule(schedule.clone()),
                None => builder.faults(faults),
            };
            if let Some(schedule) = &opts.topology_schedule {
                builder = builder.topology_schedule(schedule.clone());
            }
            builder.build()
        })
        .collect();
    let net = match mlpt::sim::MultiNetwork::new(lanes) {
        Ok(net) => net
            .with_workers(opts.workers)
            .with_cycle_gap(opts.cycle_gap),
        Err(e) => {
            eprintln!("failed to assemble sweep network: {e}");
            exit(2);
        }
    };

    let sweep_config = SweepConfig {
        max_in_flight: opts.budget,
        admission: opts.admission,
        adaptive: opts.adaptive.then(AdaptiveBudget::default),
        retries: opts.max_retries,
        retry: RetryPolicy {
            base_timeout: opts.probe_timeout,
            ..RetryPolicy::default()
        },
        // A hostile schedule can black-hole a lane mid-trace; arm the
        // stall watchdog so that lane degrades to a partial trace
        // instead of burning its whole retry budget into the dark.
        stall_rounds: if opts.fault_schedule.is_some()
            || opts.topology_schedule.is_some()
            || opts.reprobe_budget.is_some()
        {
            8
        } else {
            0
        },
        stop_set: stop_set_config(opts.stop_set, opts.start_ttl),
        ..SweepConfig::default()
    };
    let algo = opts.algo.clone();
    if !matches!(algo.as_str(), "mda" | "lite" | "single") {
        eprintln!("unknown algorithm {algo} (mda|lite|single)");
        exit(2);
    }
    let sessions = topologies.iter().enumerate().map(|(i, topo)| {
        let destination = topo.destination();
        let session_config = TraceConfig {
            seed: opts.seed.wrapping_add(i as u64),
            ..config.clone()
        };
        match algo.as_str() {
            "mda" => {
                Box::new(MdaSession::new(destination, session_config)) as Box<dyn TraceSession>
            }
            "lite" => Box::new(MdaLiteSession::new(destination, session_config)),
            _ => Box::new(SingleFlowSession::new(
                destination,
                session_config,
                FlowId(opts.seed as u16),
            )),
        }
    });

    // Sharded or single engine: sharding is pure scheduling, so the
    // traces and every protocol-level counter are identical either way.
    let (traces, stats, per_shard): (Vec<_>, SweepStats, Option<Vec<SweepStats>>) =
        if opts.shards > 1 {
            let parts = net.split_by(opts.shards, |d| shard_of(d, opts.shards));
            let mut engine = ShardedSweepEngine::new(parts, source).with_config(sweep_config);
            let traces = engine.run_stream(sessions);
            let per = engine.shard_stats().into_iter().copied().collect();
            (traces, *engine.stats(), Some(per))
        } else {
            let mut engine = SweepEngine::new(net, source).with_config(sweep_config);
            let traces = engine.run_stream(sessions);
            (traces, *engine.stats(), None)
        };

    if opts.json {
        let destinations: Vec<serde_json::Value> = traces
            .iter()
            .map(|t| {
                serde_json::json!({
                    "destination": t.destination.to_string(),
                    "reached": t.reached_destination,
                    "probes": t.probes_sent,
                    "vertices": t.total_vertices(),
                    "edges": t.total_edges(),
                    "switched": t.switched.is_some(),
                    "partial": t.outcome.is_partial(),
                })
            })
            .collect();
        let report = serde_json::json!({
            "topologies": names,
            "algo": opts.algo,
            "admission": admission_name(opts.admission),
            "adaptive_budget": opts.adaptive,
            "max_in_flight": opts.budget,
            "shards": opts.shards,
            "per_shard": per_shard.as_ref().map(|shards| {
                shards
                    .iter()
                    .map(|s| {
                        serde_json::json!({
                            "dispatch_cycles": s.dispatch_cycles,
                            "probes_sent": s.probes_sent,
                            "probes_timed_out": s.probes_timed_out,
                            "retries_exhausted": s.retries_exhausted,
                            "budget_backoffs": s.budget_backoffs,
                            "lane_backoffs": s.lane_backoffs,
                        })
                    })
                    .collect::<Vec<_>>()
            }),
            "destinations": destinations,
            "stats": {
                "dispatch_cycles": stats.dispatch_cycles,
                "probes_sent": stats.probes_sent,
                "replies_delivered": stats.replies_delivered,
                "malformed_replies": stats.malformed_replies,
                "mismatched_replies": stats.mismatched_replies,
                "max_batch": stats.max_batch,
                "probes_per_dispatch": stats.probes_per_dispatch(),
                "sessions_admitted": stats.sessions_admitted,
                "sessions_completed": stats.sessions_completed,
                "sessions_deferred": stats.sessions_deferred,
                "clean_cycles": stats.clean_cycles,
                "lossy_cycles": stats.lossy_cycles,
                "budget_backoffs": stats.budget_backoffs,
                "lane_backoffs": stats.lane_backoffs,
                "final_in_flight_budget": stats.final_in_flight_budget,
                "probes_timed_out": stats.probes_timed_out,
                "retries_exhausted": stats.retries_exhausted,
                "retries_elided": stats.retries_elided,
                "sessions_partial": stats.sessions_partial,
                "max_lane_backoff_depth": stats.max_lane_backoff_depth,
                "probes_elided": stats.probes_elided,
                "stop_set_hits": stats.stop_set_hits,
                "artifacts_detected": stats.artifacts_detected,
                "route_recoveries": stats.route_recoveries,
                "reprobes_sent": stats.reprobes_sent,
                "route_changed_partials": stats.route_changed_partials,
                "stop_set_stale_hits": stats.stop_set_stale_hits,
                "stop_set_evictions": stats.stop_set_evictions,
                "generation_barrier_stalls": stats.generation_barrier_stalls,
            },
        });
        println!(
            "{}",
            // mlpt: allow(MLPT-W004, reason = "report types serialize infallibly (no maps with non-string keys, no custom Serialize)")
            serde_json::to_string_pretty(&report).expect("serializable")
        );
        return;
    }

    println!(
        "mlpt sweep: {} destinations ({}), algo {}, base seed {}, {} admission{}",
        names.len(),
        if names.iter().all(|n| n == &names[0]) {
            names[0].clone()
        } else {
            "mixed topologies".into()
        },
        opts.algo,
        opts.seed,
        admission_name(opts.admission),
        if opts.adaptive {
            ", adaptive budget"
        } else {
            ""
        },
    );
    for trace in &traces {
        println!(
            "  {}  {} probes, {} vertices, {} edges{}{}{}",
            trace.destination,
            trace.probes_sent,
            trace.total_vertices(),
            trace.total_edges(),
            if trace.reached_destination {
                ""
            } else {
                "  [destination NOT reached]"
            },
            if trace.switched.is_some() {
                "  [switched to MDA]"
            } else {
                ""
            },
            match trace.outcome {
                mlpt::core::TraceOutcome::Complete => String::new(),
                mlpt::core::TraceOutcome::Partial { reason } => format!("  [partial: {reason}]"),
            },
        );
    }
    println!(
        "\n{} probes over {} transport dispatches ({:.1} probes/dispatch, largest batch {}); \
         {} replies, {} lost",
        stats.probes_sent,
        stats.dispatch_cycles,
        stats.probes_per_dispatch(),
        stats.max_batch,
        stats.replies_delivered,
        stats.probes_sent - stats.replies_delivered,
    );
    println!(
        "admission: {} admitted, {} completed, {} deferred; cycles {} clean / {} lossy",
        stats.sessions_admitted,
        stats.sessions_completed,
        stats.sessions_deferred,
        stats.clean_cycles,
        stats.lossy_cycles,
    );
    println!(
        "robustness: {} probes timed out, {} retries exhausted, {} partial sessions, \
         max lane backoff depth {}, {} artifacts detected, {} route recoveries, \
         {} reprobes, {} route-changed partials, {} stale stop hits",
        stats.probes_timed_out,
        stats.retries_exhausted,
        stats.sessions_partial,
        stats.max_lane_backoff_depth,
        stats.artifacts_detected,
        stats.route_recoveries,
        stats.reprobes_sent,
        stats.route_changed_partials,
        stats.stop_set_stale_hits,
    );
    if opts.stop_set {
        println!(
            "stop set: {} probes elided, {} stop-set hits, {} retries elided",
            stats.probes_elided, stats.stop_set_hits, stats.retries_elided,
        );
    }
    if let Some(per) = &per_shard {
        let probes: Vec<String> = per.iter().map(|s| s.probes_sent.to_string()).collect();
        println!(
            "sharding: {} engine shards, {} generation-barrier stalls; per-shard probes {}",
            per.len(),
            stats.generation_barrier_stalls,
            probes.join("/"),
        );
    }
    if opts.adaptive {
        println!(
            "adaptive budget: {} global backoffs, {} lane backoffs, final budget {}",
            stats.budget_backoffs, stats.lane_backoffs, stats.final_in_flight_budget,
        );
    }
}

/// Resolves router-level aliases for many destinations concurrently:
/// one [`MultilevelSession`] per synthetic-Internet scenario, streamed
/// through the sweep engine. Scenarios whose topologies share interface
/// addresses (the generator's wide core structures) are grouped into
/// address-disjoint sub-sweeps, because echo probes route by interface.
fn cmd_alias(args: &[String]) {
    use mlpt::alias::multilevel::{MultilevelConfig, MultilevelOutcome, MultilevelSession};
    use mlpt::alias::rounds::ProbeMethod;
    use mlpt::core::SweepStats;
    use mlpt::survey::router_survey::disjoint_scenario_groups;
    use mlpt::survey::TraceScenario;

    let mut targets: Vec<usize> = Vec::new();
    let mut stdin_list = false;
    let mut rounds = 10u32;
    let mut replies = 30u32;
    let mut method = ProbeMethod::Indirect;
    let mut budget = 1024usize;
    let mut adaptive = false;
    let mut admission = Admission::Streaming;
    let mut stop_set = false;
    let mut start_ttl: Option<u8> = None;
    let mut fanout = false;
    let mut rate_limit: Option<(u32, u64)> = None;
    let mut fault_schedule: Option<FaultSchedule> = None;
    let mut probe_timeout = RetryPolicy::default().base_timeout;
    let mut max_retries = 0u8;
    let mut shards = 1usize;
    let mut cycle_gap = 0u64;
    let mut seed = 1u64;
    let mut json = false;

    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| -> &String {
            args.get(i + 1).unwrap_or_else(|| {
                eprintln!("{} needs a value", args[i]);
                exit(2);
            })
        };
        match args[i].as_str() {
            "--stdin" => {
                stdin_list = true;
                i += 1;
                continue;
            }
            "--rounds" => rounds = need(i).parse().unwrap_or(10),
            "--replies" => replies = need(i).parse().unwrap_or(30),
            "--method" => {
                method = match need(i).as_str() {
                    "indirect" => ProbeMethod::Indirect,
                    "direct" => ProbeMethod::Direct,
                    other => {
                        eprintln!("unknown method {other} (indirect|direct)");
                        exit(2);
                    }
                }
            }
            "--budget" | "--max-in-flight" => budget = need(i).parse().unwrap_or(1024),
            "--adaptive-budget" => {
                adaptive = true;
                i += 1;
                continue;
            }
            "--admission" => admission = parse_admission(need(i)),
            "--stop-set" => {
                stop_set = true;
                i += 1;
                continue;
            }
            "--start-ttl" => {
                start_ttl = Some(need(i).parse().unwrap_or_else(|_| {
                    eprintln!("--start-ttl needs a TTL (1..=255)");
                    exit(2);
                }))
            }
            "--fanout" => {
                fanout = true;
                i += 1;
                continue;
            }
            "--rate-limit" => {
                let spec = need(i);
                let parsed = spec
                    .split_once('/')
                    .and_then(|(n, w)| Some((n.parse::<u32>().ok()?, w.parse::<u64>().ok()?)));
                match parsed {
                    Some((n, w)) if n > 0 && w > 0 => rate_limit = Some((n, w)),
                    _ => {
                        eprintln!("--rate-limit needs N/W (replies per window ticks)");
                        exit(2);
                    }
                }
            }
            "--fault-schedule" => fault_schedule = Some(fault_schedule_preset(need(i))),
            "--probe-timeout" => {
                probe_timeout = need(i).parse().unwrap_or_else(|_| {
                    eprintln!("--probe-timeout needs a tick count");
                    exit(2);
                })
            }
            "--max-retries" => {
                max_retries = need(i).parse().unwrap_or_else(|_| {
                    eprintln!("--max-retries needs a small number");
                    exit(2);
                })
            }
            "--shards" => shards = need(i).parse::<usize>().unwrap_or(1).max(1),
            "--cycle-gap" => cycle_gap = need(i).parse().unwrap_or(0),
            "--seed" => seed = need(i).parse().unwrap_or(1),
            "--json" => {
                json = true;
                i += 1;
                continue;
            }
            other => match other.parse::<usize>() {
                Ok(id) => {
                    targets.push(id);
                    i += 1;
                    continue;
                }
                Err(_) => {
                    eprintln!("unknown option or target: {other}");
                    exit(2);
                }
            },
        }
        i += 2;
    }

    if stdin_list {
        use std::io::BufRead;
        for line in std::io::stdin().lock().lines().map_while(Result::ok) {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match line.parse::<usize>() {
                Ok(id) => targets.push(id),
                Err(_) => {
                    eprintln!("not a scenario number: {line}");
                    exit(2);
                }
            }
        }
    }
    if targets.is_empty() {
        eprintln!("no targets: pass scenario numbers as arguments or via --stdin");
        exit(2);
    }
    {
        let mut sorted = targets.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != targets.len() {
            eprintln!("duplicate scenario numbers in the target list");
            exit(2);
        }
    }

    let faults = {
        let mut plan = FaultPlan::none();
        if let Some((n, w)) = rate_limit {
            let window = FaultPlan::with_rate_limit_window(n, w);
            plan.icmp_bucket_capacity = window.icmp_bucket_capacity;
            plan.icmp_tokens_per_tick = window.icmp_tokens_per_tick;
        }
        plan
    };
    let rounds_config = RoundsConfig {
        rounds,
        replies_per_round: replies,
        method,
        ..RoundsConfig::default()
    };
    let internet = SyntheticInternet::new(InternetConfig::default());
    let scenarios: Vec<TraceScenario> = targets.iter().map(|&id| internet.scenario(id)).collect();
    let refs: Vec<&TraceScenario> = scenarios.iter().collect();

    let mut outcomes: Vec<Option<MultilevelOutcome>> = Vec::new();
    outcomes.resize_with(scenarios.len(), || None);
    let mut stats = SweepStats::default();
    // Per-shard counters accumulated across sub-sweeps (shard i of every
    // sub-sweep merges into slot i).
    let mut per_shard: Vec<SweepStats> = vec![SweepStats::default(); shards];
    let mut sub_sweeps = 0usize;
    for group in disjoint_scenario_groups(&refs) {
        sub_sweeps += 1;
        let lanes: Vec<SimNetwork> = group
            .iter()
            .map(|&i| {
                let mut builder = SimNetwork::builder(scenarios[i].topology.clone())
                    .routers(scenarios[i].routers.clone())
                    .seed(seed.wrapping_add(targets[i] as u64));
                builder = match &fault_schedule {
                    Some(schedule) => builder.fault_schedule(schedule.clone()),
                    None => builder.faults(faults),
                };
                for (router, profile) in &scenarios[i].profiles {
                    builder = builder.profile(*router, *profile);
                }
                builder.build()
            })
            .collect();
        let net = match mlpt::sim::MultiNetwork::new(lanes) {
            Ok(net) => net.with_cycle_gap(cycle_gap),
            Err(e) => {
                eprintln!("failed to assemble alias sweep network: {e}");
                exit(2);
            }
        };
        let source = scenarios[group[0]].source;
        assert!(
            group.iter().all(|&i| scenarios[i].source == source),
            "alias sweeps assume a single vantage point"
        );
        let sweep_config = SweepConfig {
            max_in_flight: budget,
            admission,
            adaptive: adaptive.then(AdaptiveBudget::default),
            retries: max_retries,
            retry: RetryPolicy {
                base_timeout: probe_timeout,
                ..RetryPolicy::default()
            },
            stall_rounds: if fault_schedule.is_some() { 8 } else { 0 },
            stop_set: stop_set_config(stop_set, start_ttl),
            ..SweepConfig::default()
        };
        let sessions = group.iter().map(|&i| {
            MultilevelSession::new(
                scenarios[i].topology.destination(),
                MultilevelConfig {
                    trace: TraceConfig::new(seed.wrapping_add(targets[i] as u64)),
                    rounds: rounds_config.clone(),
                },
            )
            .with_hop_fanout(fanout)
            .with_cost_hint(mlpt::survey::scenario_cost_hint(
                &scenarios[i],
                &rounds_config,
                false,
            ))
        });
        if shards > 1 {
            // Sharded sub-sweep: lanes split by the same destination
            // hash that partitions the sessions — pure scheduling, the
            // outcomes are bit-identical to the single engine.
            let parts = net.split_by(shards, |d| shard_of(d, shards));
            let mut engine = ShardedSweepEngine::new(parts, source).with_config(sweep_config);
            engine.run_sessions_with(sessions, |idx, session, _wire| {
                outcomes[group[idx]] = Some(session.finish());
            });
            stats.merge(engine.stats());
            for (slot, shard) in per_shard.iter_mut().zip(engine.shard_stats()) {
                slot.merge(shard);
            }
        } else {
            let mut engine = SweepEngine::new(net, source).with_config(sweep_config);
            engine.run_sessions_with(sessions, |idx, session, _wire| {
                outcomes[group[idx]] = Some(session.finish());
            });
            stats.merge(engine.stats());
        }
    }

    let outcomes: Vec<MultilevelOutcome> = outcomes
        .into_iter()
        // mlpt: allow(MLPT-W004, reason = "invariant: run_sessions_with invokes the completion callback for every session, filling each slot")
        .map(|o| o.expect("every session reports"))
        .collect();

    if json {
        let per_scenario: Vec<serde_json::Value> = targets
            .iter()
            .zip(&outcomes)
            .map(|(&id, outcome)| {
                let hops: Vec<serde_json::Value> = outcome
                    .multilevel
                    .hop_reports
                    .iter()
                    .map(|(ttl, reports)| {
                        serde_json::json!({
                            "ttl": ttl,
                            "rounds": reports.iter().map(|r| {
                                serde_json::json!({
                                    "round": r.round,
                                    "routers": r.partition.routers().count(),
                                    "aliased_addresses": r.partition.routers()
                                        .map(|s| s.len()).sum::<usize>(),
                                    "cumulative_probes": r.cumulative_probes,
                                })
                            }).collect::<Vec<_>>(),
                        })
                    })
                    .collect();
                serde_json::json!({
                    "scenario": id,
                    "destination": outcome.multilevel.trace.destination.to_string(),
                    "trace_probes": outcome.multilevel.trace.probes_sent,
                    "alias_probes": outcome.multilevel.alias_probes,
                    "router_sizes": outcome.multilevel.router_sizes(),
                    "hops": hops,
                })
            })
            .collect();
        let report = serde_json::json!({
            "method": match method {
                ProbeMethod::Indirect => "indirect",
                ProbeMethod::Direct => "direct",
            },
            "rounds": rounds,
            "replies_per_round": replies,
            "admission": admission_name(admission),
            "hop_fanout": fanout,
            "sub_sweeps": sub_sweeps,
            "shards": shards,
            "per_shard": (shards > 1).then(|| {
                per_shard
                    .iter()
                    .map(|s| {
                        serde_json::json!({
                            "dispatch_cycles": s.dispatch_cycles,
                            "probes_sent": s.probes_sent,
                            "probes_timed_out": s.probes_timed_out,
                            "retries_exhausted": s.retries_exhausted,
                            "budget_backoffs": s.budget_backoffs,
                            "lane_backoffs": s.lane_backoffs,
                        })
                    })
                    .collect::<Vec<_>>()
            }),
            "scenarios": per_scenario,
            "stats": {
                "dispatch_cycles": stats.dispatch_cycles,
                "probes_sent": stats.probes_sent,
                "replies_delivered": stats.replies_delivered,
                "max_batch": stats.max_batch,
                "probes_per_dispatch": stats.probes_per_dispatch(),
                "sessions_admitted": stats.sessions_admitted,
                "sessions_completed": stats.sessions_completed,
                "sessions_deferred": stats.sessions_deferred,
                "clean_cycles": stats.clean_cycles,
                "lossy_cycles": stats.lossy_cycles,
                "budget_backoffs": stats.budget_backoffs,
                "lane_backoffs": stats.lane_backoffs,
                "final_in_flight_budget": stats.final_in_flight_budget,
                "probes_timed_out": stats.probes_timed_out,
                "retries_exhausted": stats.retries_exhausted,
                "retries_elided": stats.retries_elided,
                "sessions_partial": stats.sessions_partial,
                "max_lane_backoff_depth": stats.max_lane_backoff_depth,
                "probes_elided": stats.probes_elided,
                "stop_set_hits": stats.stop_set_hits,
                "artifacts_detected": stats.artifacts_detected,
                "route_recoveries": stats.route_recoveries,
                "reprobes_sent": stats.reprobes_sent,
                "route_changed_partials": stats.route_changed_partials,
                "stop_set_stale_hits": stats.stop_set_stale_hits,
                "stop_set_evictions": stats.stop_set_evictions,
                "generation_barrier_stalls": stats.generation_barrier_stalls,
            },
        });
        println!(
            "{}",
            // mlpt: allow(MLPT-W004, reason = "report types serialize infallibly (no maps with non-string keys, no custom Serialize)")
            serde_json::to_string_pretty(&report).expect("serializable")
        );
        return;
    }

    println!(
        "mlpt alias: {} scenario(s), method {}, rounds 0..={rounds} x {replies} replies, \
         {} admission{}{}{}",
        targets.len(),
        match method {
            ProbeMethod::Indirect => "indirect",
            ProbeMethod::Direct => "direct",
        },
        admission_name(admission),
        if adaptive { ", adaptive budget" } else { "" },
        if fanout { ", hop fan-out" } else { "" },
        if sub_sweeps > 1 {
            format!(" ({sub_sweeps} address-disjoint sub-sweeps)")
        } else {
            String::new()
        },
    );
    for (&id, outcome) in targets.iter().zip(&outcomes) {
        println!(
            "scenario {id} ({}): trace {} probes, alias {} probes",
            outcome.multilevel.trace.destination,
            outcome.multilevel.trace.probes_sent,
            outcome.multilevel.alias_probes,
        );
        if outcome.multilevel.hop_reports.is_empty() {
            println!("  no multi-interface hops (nothing to resolve)");
            continue;
        }
        for (ttl, reports) in &outcome.multilevel.hop_reports {
            let sizes: Vec<String> = reports
                .iter()
                .map(|r| {
                    format!(
                        "r{}:{}/{}",
                        r.round,
                        r.partition.routers().count(),
                        r.partition.routers().map(|s| s.len()).sum::<usize>(),
                    )
                })
                .collect();
            let candidates = reports
                .first()
                .map_or(0, |r| r.partition.sets().iter().map(|s| s.len()).sum());
            println!(
                "  hop {ttl} ({candidates} addrs), routers/aliased per round: {}",
                sizes.join(" ")
            );
        }
    }
    println!(
        "\nsweep: {} probes over {} dispatches ({:.1} probes/dispatch, largest batch {}); \
         {} replies",
        stats.probes_sent,
        stats.dispatch_cycles,
        stats.probes_per_dispatch(),
        stats.max_batch,
        stats.replies_delivered,
    );
    println!(
        "admission: {} admitted, {} deferred, {} completed; cycles {} clean / {} lossy",
        stats.sessions_admitted,
        stats.sessions_deferred,
        stats.sessions_completed,
        stats.clean_cycles,
        stats.lossy_cycles,
    );
    println!(
        "robustness: {} probes timed out, {} retries exhausted, {} partial sessions, \
         max lane backoff depth {}, {} artifacts detected, {} route recoveries, \
         {} reprobes, {} route-changed partials, {} stale stop hits",
        stats.probes_timed_out,
        stats.retries_exhausted,
        stats.sessions_partial,
        stats.max_lane_backoff_depth,
        stats.artifacts_detected,
        stats.route_recoveries,
        stats.reprobes_sent,
        stats.route_changed_partials,
        stats.stop_set_stale_hits,
    );
    if stop_set {
        println!(
            "stop set: {} probes elided, {} stop-set hits, {} retries elided",
            stats.probes_elided, stats.stop_set_hits, stats.retries_elided,
        );
    }
    if shards > 1 {
        let probes: Vec<String> = per_shard
            .iter()
            .map(|s| s.probes_sent.to_string())
            .collect();
        println!(
            "sharding: {} engine shards, {} generation-barrier stalls; per-shard probes {}",
            shards,
            stats.generation_barrier_stalls,
            probes.join("/"),
        );
    }
    if adaptive {
        println!(
            "adaptive budget: {} global backoffs, {} lane backoffs, final budget {}",
            stats.budget_backoffs, stats.lane_backoffs, stats.final_in_flight_budget,
        );
    }
}

fn cmd_multilevel(args: &[String]) {
    let opts = parse_options(args);
    let (net, source, destination, truth) = build_network(&opts);
    let mut prober = TransportProber::new(net, source, destination);
    let config = MultilevelConfig {
        trace: TraceConfig::new(opts.seed)
            .with_stopping(stopping_points(&opts.stopping))
            .with_phi(opts.phi),
        rounds: RoundsConfig {
            rounds: opts.rounds,
            ..RoundsConfig::default()
        },
    };
    let result = trace_multilevel(&mut prober, &config);

    println!(
        "mlpt: multilevel MDA-Lite to {destination}, seed {}",
        opts.seed
    );
    render_hops(&result.trace, Some(&result.router_map));
    println!("\nalias sets (routers) inferred during the trace:");
    let mut any = false;
    for (router, set) in result.router_map.alias_sets() {
        if set.len() < 2 {
            continue;
        }
        any = true;
        let members: Vec<String> = set.iter().map(|a| a.to_string()).collect();
        println!("  R{}: {}", router.0, members.join("  "));
    }
    if !any {
        println!("  (none — every interface looks like its own router)");
    }

    if let Some(truth) = truth {
        let inferred = &result.router_map;
        let mut agree = 0usize;
        let mut total = 0usize;
        let addresses: Vec<Ipv4Addr> = result.trace.all_addresses().into_iter().collect();
        for i in 0..addresses.len() {
            for j in i + 1..addresses.len() {
                total += 1;
                if inferred.are_aliases(addresses[i], addresses[j])
                    == truth.are_aliases(addresses[i], addresses[j])
                {
                    agree += 1;
                }
            }
        }
        if total > 0 {
            println!(
                "\nground truth agreement: {agree}/{total} address pairs ({:.1}%)",
                100.0 * agree as f64 / total as f64
            );
        }
    }

    if let (Some(ip), Some(router)) = (&result.ip_topology, &result.router_topology) {
        let ip_d = mlpt::topo::diamond::all_diamond_metrics(ip);
        let r_d = mlpt::topo::diamond::all_diamond_metrics(router);
        let ip_widths: Vec<usize> = ip_d.iter().map(|m| m.max_width).collect();
        let r_widths: Vec<usize> = r_d.iter().map(|m| m.max_width).collect();
        println!(
            "\ndiamonds: IP level {:?} wide → router level {:?} wide",
            ip_widths, r_widths
        );
    }
    println!(
        "\ntrace probes: {}; alias probes: {}",
        result.trace.probes_sent, result.alias_probes
    );

    // Per-hop round summary (Fig. 5 style, this trace only).
    if !result.hop_reports.is_empty() {
        let mut per_round: BTreeMap<u32, u64> = BTreeMap::new();
        for reports in result.hop_reports.values() {
            for r in reports {
                *per_round.entry(r.round).or_insert(0) += r.cumulative_probes;
            }
        }
        let rounds: Vec<String> = per_round.iter().map(|(r, p)| format!("r{r}:{p}")).collect();
        println!("alias probes by round: {}", rounds.join(" "));
    }
}
