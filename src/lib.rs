//! # Multilevel MDA-Lite Paris Traceroute
//!
//! A from-scratch Rust implementation of the systems described in
//! *"Multilevel MDA-Lite Paris Traceroute"* (Vermeulen, Strowes, Fourmaux,
//! Friedman — ACM IMC 2018): multipath route tracing with failure control
//! (the MDA), its low-overhead successor (MDA-Lite), the Fakeroute
//! validation simulator, in-trace alias resolution ("multilevel" tracing),
//! and the survey pipeline that reproduces the paper's evaluation.
//!
//! This crate is a facade re-exporting the workspace's public API:
//!
//! * [`wire`] — IPv4/UDP/ICMP packet formats and the Paris flow-ID
//!   discipline ([`mlpt_wire`]).
//! * [`stats`] — CDFs, histograms, confidence intervals ([`mlpt_stats`]).
//! * [`topo`] — multipath topologies, diamonds and their metrics
//!   ([`mlpt_topo`]).
//! * [`sim`] — the Fakeroute packet-level simulator and analytic failure
//!   bounds ([`mlpt_sim`]).
//! * [`core`] — the MDA, MDA-Lite and single-flow tracing algorithms
//!   ([`mlpt_core`]).
//! * [`alias`] — the Monotonic Bounds Test, fingerprinting, MPLS
//!   labeling and the multilevel tracer ([`mlpt_alias`]).
//! * [`survey`] — the synthetic Internet and the IP/router-level surveys
//!   ([`mlpt_survey`]).
//!
//! ## Quickstart
//!
//! ```
//! use mlpt::prelude::*;
//!
//! // A known multipath topology (the paper's Fig. 1 unmeshed diamond),
//! // served by the Fakeroute simulator.
//! let topology = mlpt::topo::canonical::fig1_unmeshed();
//! let destination = topology.destination();
//! let network = mlpt::sim::SimNetwork::new(topology, 42);
//!
//! // Trace it with MDA-Lite over real probe packets.
//! let mut prober = TransportProber::new(network, "192.0.2.1".parse().unwrap(), destination);
//! let trace = trace_mda_lite(&mut prober, &TraceConfig::new(42));
//!
//! assert!(trace.reached_destination);
//! assert_eq!(trace.vertices_at(2).len(), 4); // four load-balanced interfaces
//! assert!(trace.switched.is_none());          // uniform & unmeshed: no escalation
//! ```

pub use mlpt_alias as alias;
pub use mlpt_core as core;
pub use mlpt_sim as sim;
pub use mlpt_stats as stats;
pub use mlpt_survey as survey;
pub use mlpt_topo as topo;
pub use mlpt_wire as wire;

/// One-stop imports for applications.
pub mod prelude {
    pub use mlpt_alias::multilevel::{trace_multilevel, MultilevelConfig};
    pub use mlpt_core::prelude::*;
    pub use mlpt_sim::{
        FaultPlan, FaultSchedule, FaultSpec, SimNetwork, TopoMutation, TopologySchedule,
    };
    pub use mlpt_topo::{MultipathTopology, RouterMap};
}
