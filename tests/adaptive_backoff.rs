//! The adaptive in-flight budget demonstrably backs off.
//!
//! Workload: destinations whose routers ICMP-rate-limit (token bucket of
//! N replies per W-tick window, `FaultPlan::with_rate_limit_window`),
//! simulated over a `MultiNetwork` with an inter-cycle clock gap — the
//! round-trip pause between dispatch cycles during which buckets refill,
//! so *burst size per cycle* determines how many replies are suppressed.
//!
//! A fixed budget keeps blasting full rounds into the limiter: probes
//! are suppressed, retried, suppressed again. The AIMD controller sees
//! the loss, multiplicatively backs the sick lanes (and the global
//! budget) off until bursts fit the refill rate, and therefore sends
//! measurably fewer probes into the rate-limited window — while, thanks
//! to retry waves, both modes deliver every observation eventually and
//! discover the *identical* topology.

use mlpt::core::engine::{AdaptiveBudget, Admission, SweepConfig, SweepEngine, SweepStats};
use mlpt::core::prelude::*;
use mlpt::core::session::TraceSession;
use mlpt::sim::{FaultPlan, MultiNetwork, SimNetwork, TrafficCounters};
use mlpt::topo::{canonical, MultipathTopology};
use std::net::Ipv4Addr;

const SRC: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);
const LANES: usize = 8;
/// Each router answers at most 3 probes per 12-tick window.
const RATE_LIMIT: (u32, u64) = (3, 12);
/// Virtual ticks between dispatch cycles (the modeled RTT pause).
const CYCLE_GAP: u64 = 12;

fn lane_topologies(meshed: bool) -> Vec<MultipathTopology> {
    (0..LANES as u32)
        .map(|i| {
            let base = if meshed {
                canonical::fig1_meshed()
            } else {
                canonical::fig1_unmeshed()
            };
            base.translated(0x0100_0000 * (i + 1))
        })
        .collect()
}

fn rate_limited_network(topologies: &[MultipathTopology], limited: &[bool]) -> MultiNetwork {
    let lanes: Vec<SimNetwork> = topologies
        .iter()
        .zip(limited)
        .enumerate()
        .map(|(i, (topo, &limit))| {
            SimNetwork::builder(topo.clone())
                .faults(if limit {
                    FaultPlan::with_rate_limit_window(RATE_LIMIT.0, RATE_LIMIT.1)
                } else {
                    FaultPlan::none()
                })
                .seed(40 + i as u64)
                .build()
        })
        .collect();
    MultiNetwork::new(lanes)
        .expect("translated lanes have unique destinations")
        .with_cycle_gap(CYCLE_GAP)
}

fn run_sweep(
    topologies: &[MultipathTopology],
    limited: &[bool],
    adaptive: Option<AdaptiveBudget>,
) -> (Vec<Trace>, SweepStats, TrafficCounters) {
    let net = rate_limited_network(topologies, limited);
    let mut engine = SweepEngine::new(net, SRC).with_config(SweepConfig {
        max_in_flight: 64,
        // Enough retry waves that every probe is eventually answered
        // once the bucket refills: discovery is complete in both modes.
        retries: 6,
        admission: Admission::Streaming,
        adaptive,
        ..SweepConfig::default()
    });
    let sessions = topologies.iter().enumerate().map(|(i, topo)| {
        Box::new(MdaSession::new(
            topo.destination(),
            TraceConfig::new(90 + i as u64),
        )) as Box<dyn TraceSession>
    });
    let traces = engine.run_stream(sessions);
    let stats = *engine.stats();
    let counters = engine.into_transport().counters();
    (traces, stats, counters)
}

/// The acceptance demonstration: on the rate-limiting fault plan the
/// adaptive sweep sends measurably fewer probes into the rate-limited
/// window than the fixed budget, while discovering the same topology.
#[test]
fn adaptive_budget_backs_off_under_rate_limiting() {
    let topologies = lane_topologies(true);
    let all_limited = vec![true; LANES];
    let (fixed_traces, fixed_stats, fixed_counters) = run_sweep(&topologies, &all_limited, None);
    let (adaptive_traces, adaptive_stats, adaptive_counters) = run_sweep(
        &topologies,
        &all_limited,
        Some(AdaptiveBudget {
            min_in_flight: 4,
            increase: 2,
            backoff: 0.5,
            loss_threshold: 0.02,
        }),
    );

    // The controller demonstrably backed off.
    assert!(
        adaptive_stats.budget_backoffs > 0,
        "rate limiting must trigger global backoff"
    );
    assert!(
        adaptive_stats.lane_backoffs > 0,
        "rate limiting must trigger per-lane backoff"
    );
    assert!(adaptive_stats.final_in_flight_budget < 64);

    // Measurably fewer probes swallowed by the rate limiter...
    let fixed_suppressed = fixed_counters.replies_rate_limited;
    let adaptive_suppressed = adaptive_counters.replies_rate_limited;
    assert!(
        adaptive_suppressed * 3 <= fixed_suppressed * 2,
        "adaptive must cut rate-limited suppressions by >=1/3: fixed {fixed_suppressed}, \
         adaptive {adaptive_suppressed}"
    );
    // ...and fewer wire probes overall (suppressed probes are wasted and
    // retried; backing off avoids the waste).
    assert!(
        adaptive_stats.probes_sent < fixed_stats.probes_sent,
        "adaptive {} vs fixed {} probes",
        adaptive_stats.probes_sent,
        fixed_stats.probes_sent
    );

    // Both modes discover the identical topology: retry waves deliver
    // every observation eventually, so per-destination discovery (flow
    // witnesses included) matches bit for bit — only the wire-probe
    // counts differ.
    assert_eq!(fixed_traces.len(), adaptive_traces.len());
    for (fixed, adaptive) in fixed_traces.iter().zip(&adaptive_traces) {
        assert_eq!(
            fixed.discovery, adaptive.discovery,
            "discovery towards {} diverged",
            fixed.destination
        );
        assert!(fixed.reached_destination && adaptive.reached_destination);
    }
}

/// Per-lane fairness: one rate-limited lane among healthy ones backs
/// only itself off — the healthy lanes' traces are untouched and the
/// global budget never collapses.
#[test]
fn sick_lane_does_not_starve_the_sweep() {
    let topologies = lane_topologies(false);
    let mut limited = vec![false; LANES];
    limited[3] = true;
    let adaptive = AdaptiveBudget {
        min_in_flight: 4,
        increase: 2,
        backoff: 0.5,
        // High enough that one sick lane of eight cannot trip the
        // *global* controller; the lane's own allowance still reacts.
        loss_threshold: 0.2,
    };
    let (traces, stats, _) = run_sweep(&topologies, &limited, Some(adaptive));

    // The sick lane backed off; the global budget did not.
    assert!(stats.lane_backoffs > 0, "sick lane must back off");
    assert_eq!(
        stats.budget_backoffs, 0,
        "one sick lane of eight must not collapse the global budget"
    );
    assert_eq!(stats.final_in_flight_budget, 64);

    // Healthy lanes are bit-identical to sequential runs on their own
    // fresh simulators: the sick lane perturbed nothing.
    for (i, topo) in topologies.iter().enumerate() {
        if limited[i] {
            assert!(traces[i].reached_destination);
            continue;
        }
        let net = SimNetwork::builder(topo.clone())
            .seed(40 + i as u64)
            .build();
        let mut prober = TransportProber::new(net, SRC, topo.destination()).with_retries(6);
        let sequential = trace_mda(&mut prober, &TraceConfig::new(90 + i as u64));
        assert_eq!(&traces[i], &sequential, "healthy lane {i} perturbed");
    }
}
