//! The sessionized alias protocol's headline invariant, property-tested
//! end to end: Round 0–10 alias resolution driven through the concurrent
//! sweep engine is **bit-identical** to the legacy blocking loop — the
//! same per-address IP-ID series (sample for sample, timestamp for
//! timestamp), the same [`AliasPartition`] after every round, the same
//! cumulative probe counts — across probing methods (indirect MMLPT vs
//! direct MIDAR-style), router IP-ID behaviours, fault plans, admission
//! orders, in-flight budgets and adaptive controllers.
//!
//! This matters more for alias resolution than it did for tracing: the
//! MBT merges two addresses' IP-ID samples into one would-be-monotonic
//! sequence, so the *interleaving* of the per-address probes is
//! semantically load-bearing. A scheduler that reordered probes within a
//! session's round would change verdicts, not just timing. The reference
//! below is the pre-session blocking implementation of `run_rounds`,
//! kept verbatim as test-local code.
//!
//! A deterministic companion test shows the AIMD budget backing off an
//! echo-heavy alias sweep into rate-limited windows (inter-cycle gap >
//! 0) while the final partitions still match ground truth.

use mlpt::alias::evidence::EvidenceBase;
use mlpt::alias::multilevel::{MultilevelConfig, MultilevelOutcome, MultilevelSession};
use mlpt::alias::resolver::resolve;
use mlpt::alias::rounds::{run_rounds, ProbeMethod, RoundReport, RoundsConfig};
use mlpt::core::engine::{AdaptiveBudget, Admission, SweepConfig, SweepEngine};
use mlpt::core::prelude::*;
use mlpt::core::prober::Prober;
use mlpt::sim::{FaultPlan, IpIdProfile, MultiNetwork, RouterProfile, SimNetwork};
use mlpt::topo::graph::addr;
use mlpt::topo::{MultipathTopology, RouterId, RouterMap};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

const SRC: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

// ---------------------------------------------------------------------
// The legacy blocking protocol, kept verbatim as the reference.
// ---------------------------------------------------------------------

/// Pre-session `indirect_targets`: a flow known to reach each candidate
/// and the TTL at which it answers, harvested from the trace.
fn legacy_targets(
    trace: &Trace,
    candidates: &BTreeSet<Ipv4Addr>,
) -> BTreeMap<Ipv4Addr, (Vec<FlowId>, u8)> {
    let mut map = BTreeMap::new();
    for ttl in 1..=trace.discovery.max_observed_ttl() {
        for &a in trace.discovery.vertices_at(ttl) {
            if candidates.contains(&a) && !map.contains_key(&a) {
                let flows: Vec<FlowId> =
                    trace.discovery.flows_reaching(ttl, a).into_iter().collect();
                if !flows.is_empty() {
                    map.insert(a, (flows, ttl));
                }
            }
        }
    }
    map
}

/// The pre-session blocking `run_rounds`, word for word.
fn legacy_rounds<P: Prober>(
    prober: &mut P,
    trace: &Trace,
    candidates: &BTreeSet<Ipv4Addr>,
    base: &mut EvidenceBase,
    config: &RoundsConfig,
) -> Vec<RoundReport> {
    let source = config.method.series_source();
    let targets = legacy_targets(trace, candidates);
    let mut reports = Vec::with_capacity(config.rounds as usize + 1);
    let mut probes: u64 = 0;

    reports.push(RoundReport {
        round: 0,
        partition: resolve(base, candidates, source, &config.mbt),
        cumulative_probes: 0,
    });

    let mut flow_cursor: BTreeMap<Ipv4Addr, usize> = BTreeMap::new();
    for round in 1..=config.rounds {
        if round == 1 {
            for &a in candidates {
                probes += 1;
                match prober.direct_probe(a) {
                    Some(obs) => base.add_direct(&obs),
                    None => base.add_direct_timeout(a),
                }
            }
        }
        for _rep in 0..config.replies_per_round {
            for &a in candidates {
                match config.method {
                    ProbeMethod::Indirect => {
                        let Some((flows, ttl)) = targets.get(&a) else {
                            continue;
                        };
                        let cursor = flow_cursor.entry(a).or_insert(0);
                        let flow = flows[*cursor % flows.len()];
                        *cursor += 1;
                        probes += 1;
                        if let Some(obs) = prober.probe(flow, *ttl) {
                            base.add_indirect(&obs, 0);
                        }
                    }
                    ProbeMethod::Direct => {
                        probes += 1;
                        match prober.direct_probe(a) {
                            Some(obs) => base.add_direct(&obs),
                            None => base.add_direct_timeout(a),
                        }
                    }
                }
            }
        }
        reports.push(RoundReport {
            round,
            partition: resolve(base, candidates, source, &config.mbt),
            cumulative_probes: probes,
        });
    }
    reports
}

/// The pre-session multilevel pipeline: trace, then per multi-candidate
/// hop seed evidence from the prober's log and run the legacy rounds.
struct LegacyMultilevel {
    trace: Trace,
    hop_reports: BTreeMap<u8, Vec<RoundReport>>,
    hop_evidence: BTreeMap<u8, EvidenceBase>,
    alias_probes: u64,
}

fn legacy_multilevel(
    prober: &mut TransportProber<SimNetwork>,
    trace_config: &TraceConfig,
    rounds: &RoundsConfig,
) -> LegacyMultilevel {
    let trace = trace_mda_lite(prober, trace_config);
    let after_trace = prober.probes_sent();
    let mut hop_reports = BTreeMap::new();
    let mut hop_evidence = BTreeMap::new();
    for ttl in 1..=trace.discovery.max_observed_ttl() {
        let candidates: BTreeSet<Ipv4Addr> = trace
            .discovery
            .vertices_at(ttl)
            .iter()
            .copied()
            .filter(|&a| a != trace.destination && !mlpt::topo::is_star(a))
            .collect();
        if candidates.len() < 2 {
            continue;
        }
        let mut base = EvidenceBase::from_log(prober.log(), &candidates);
        let reports = legacy_rounds(prober, &trace, &candidates, &mut base, rounds);
        hop_reports.insert(ttl, reports);
        hop_evidence.insert(ttl, base);
    }
    LegacyMultilevel {
        alias_probes: prober.probes_sent() - after_trace,
        trace,
        hop_reports,
        hop_evidence,
    }
}

// ---------------------------------------------------------------------
// Lane construction: a 1-W-1 diamond whose interfaces pair into routers
// with property-selected IP-ID behaviours.
// ---------------------------------------------------------------------

struct Lane {
    topology: MultipathTopology,
    routers: RouterMap,
    profiles: Vec<(RouterId, RouterProfile)>,
    sim_seed: u64,
    trace_seed: u64,
}

fn profile_from(selector: u8) -> RouterProfile {
    match selector % 5 {
        0 => RouterProfile::well_behaved(),
        1 => RouterProfile {
            ipid: IpIdProfile::per_interface_indirect(2, 3),
            ..RouterProfile::well_behaved()
        },
        2 => RouterProfile {
            ipid: IpIdProfile::constant_zero(),
            ..RouterProfile::well_behaved()
        },
        3 => RouterProfile {
            responds_to_direct: false,
            ..RouterProfile::well_behaved()
        },
        _ => RouterProfile {
            ipid: IpIdProfile::shared(5, 6),
            ..RouterProfile::well_behaved()
        },
    }
}

fn lane_for(index: usize, width: u8, profile_sel: u8, base_seed: u64) -> Lane {
    let width = usize::from(width.clamp(2, 4));
    let mut b = MultipathTopology::builder();
    b.add_hop([addr(0, 0)]);
    b.add_hop((0..width).map(|i| addr(1, i)));
    b.add_hop([addr(2, 0)]);
    b.connect_unmeshed(0);
    b.connect_unmeshed(1);
    let topology = b
        .build()
        .expect("valid diamond")
        .translated(0x0100_0000 * (index as u32 + 1));
    // Pair consecutive middle interfaces into routers.
    let middle: Vec<Ipv4Addr> = topology.hop(1).to_vec();
    let routers = RouterMap::from_alias_sets(middle.chunks(2).map(|c| c.to_vec()));
    let profiles = routers
        .alias_sets()
        .keys()
        .enumerate()
        .map(|(i, &r)| (r, profile_from(profile_sel.wrapping_add(i as u8))))
        .collect();
    Lane {
        topology,
        routers,
        profiles,
        sim_seed: base_seed
            .wrapping_add(index as u64)
            .wrapping_mul(0x9E37_79B9),
        trace_seed: base_seed ^ ((index as u64) << 9),
    }
}

fn build_network(lane: &Lane, faults: &FaultPlan) -> SimNetwork {
    let mut builder = SimNetwork::builder(lane.topology.clone())
        .routers(lane.routers.clone())
        .faults(*faults)
        .seed(lane.sim_seed);
    for (router, profile) in &lane.profiles {
        builder = builder.profile(*router, *profile);
    }
    builder.build()
}

fn fault_plan(kind: u8) -> FaultPlan {
    match kind % 4 {
        0 => FaultPlan::none(),
        1 => FaultPlan::with_loss(0.1, 0.0),
        2 => FaultPlan::with_loss(0.0, 0.15),
        _ => FaultPlan::with_rate_limit_window(3, 10),
    }
}

/// Asserts one lane's streamed outcome equals its blocking reference.
fn assert_outcome_matches(
    outcome: &MultilevelOutcome,
    reference: &LegacyMultilevel,
    wire_probes: u64,
    reference_wire: u64,
    lane: usize,
) {
    assert_eq!(
        outcome.multilevel.trace, reference.trace,
        "lane {lane}: trace diverged"
    );
    assert_eq!(
        outcome.multilevel.hop_reports, reference.hop_reports,
        "lane {lane}: per-round partitions / probe counts diverged"
    );
    // The bit-for-bit IP-ID series: every sample, timestamp and
    // fingerprint of every candidate address.
    assert_eq!(
        outcome.hop_evidence, reference.hop_evidence,
        "lane {lane}: per-address evidence series diverged"
    );
    assert_eq!(
        outcome.multilevel.alias_probes, reference.alias_probes,
        "lane {lane}: alias probe accounting diverged"
    );
    assert_eq!(
        wire_probes, reference_wire,
        "lane {lane}: wire-level packet count diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Sessionized Round 0–10 == legacy blocking rounds, bit for bit:
    /// via the blocking `run_rounds` driver, and via the sweep engine
    /// interleaving whole multilevel sessions across destinations under
    /// arbitrary admission orders and budgets.
    #[test]
    fn sessionized_rounds_match_legacy_blocking(
        widths in proptest::collection::vec(2u8..5, 1..5),
        profile_sels in proptest::collection::vec(0u8..10, 5..6),
        method_direct in any::<bool>(),
        fault_kind in 0u8..4,
        base_seed in any::<u64>(),
        rounds in 2u32..5,
        replies in 3u32..9,
        budget_kind in 0u8..3,
        adaptive_on in any::<bool>(),
        admission_kind in 0u8..3,
        order_seed in any::<u64>(),
    ) {
        let faults = fault_plan(fault_kind);
        let rounds_config = RoundsConfig {
            rounds,
            replies_per_round: replies,
            method: if method_direct { ProbeMethod::Direct } else { ProbeMethod::Indirect },
            ..RoundsConfig::default()
        };
        let lanes: Vec<Lane> = widths
            .iter()
            .enumerate()
            .map(|(i, &w)| lane_for(i, w, profile_sels[i % profile_sels.len()], base_seed))
            .collect();

        // Blocking references, one dedicated prober per lane.
        let references: Vec<(LegacyMultilevel, u64)> = lanes
            .iter()
            .map(|lane| {
                let mut prober = TransportProber::new(
                    build_network(lane, &faults),
                    SRC,
                    lane.topology.destination(),
                );
                let reference = legacy_multilevel(
                    &mut prober,
                    &TraceConfig::new(lane.trace_seed),
                    &rounds_config,
                );
                let wire = prober.probes_sent();
                (reference, wire)
            })
            .collect();

        // Path 1: the public blocking driver (`run_rounds` is now a
        // drive() loop over the session) must reproduce the reference
        // reports and evidence exactly.
        for lane in &lanes {
            let mut prober = TransportProber::new(
                build_network(lane, &faults),
                SRC,
                lane.topology.destination(),
            );
            let trace = trace_mda_lite(&mut prober, &TraceConfig::new(lane.trace_seed));
            for ttl in 1..=trace.discovery.max_observed_ttl() {
                let candidates: BTreeSet<Ipv4Addr> = trace
                    .discovery
                    .vertices_at(ttl)
                    .iter()
                    .copied()
                    .filter(|&a| a != trace.destination && !mlpt::topo::is_star(a))
                    .collect();
                if candidates.len() < 2 {
                    continue;
                }
                let mut base = EvidenceBase::from_log(prober.log(), &candidates);
                let reports = run_rounds(&mut prober, &trace, &candidates, &mut base, &rounds_config);
                let reference = &references[lanes.iter().position(|l| std::ptr::eq(l, lane)).unwrap()].0;
                prop_assert_eq!(Some(&reports), reference.hop_reports.get(&ttl));
                prop_assert_eq!(Some(&base), reference.hop_evidence.get(&ttl));
            }
        }

        // Path 2: the sweep engine interleaving whole multilevel
        // sessions across destinations, in a permuted admission order.
        let max_in_flight = match budget_kind % 3 {
            0 => 5usize, // slices nearly every round across cycles
            1 => 64,
            _ => 2048,
        };
        let mut order: Vec<usize> = (0..lanes.len()).collect();
        order.rotate_left((order_seed as usize) % lanes.len().max(1));
        if order_seed % 2 == 1 {
            order.reverse();
        }
        let net = MultiNetwork::new(lanes.iter().map(|l| build_network(l, &faults)).collect())
            .expect("translated lanes have unique destinations");
        let mut engine = SweepEngine::new(net, SRC).with_config(SweepConfig {
            max_in_flight,
            admission: match admission_kind % 3 {
                0 => Admission::Streaming,
                1 => Admission::Eager,
                _ => Admission::CostAware,
            },
            adaptive: adaptive_on.then(|| AdaptiveBudget {
                min_in_flight: 2,
                ..AdaptiveBudget::default()
            }),
            ..SweepConfig::default()
        });
        let sessions = order.iter().map(|&lane_idx| {
            MultilevelSession::new(
                lanes[lane_idx].topology.destination(),
                MultilevelConfig {
                    trace: TraceConfig::new(lanes[lane_idx].trace_seed),
                    rounds: rounds_config.clone(),
                },
            )
        });
        let mut outcomes: Vec<Option<(MultilevelOutcome, u64)>> =
            (0..lanes.len()).map(|_| None).collect();
        engine.run_sessions_with(sessions, |stream_idx, session, wire| {
            outcomes[order[stream_idx]] = Some((session.finish(), wire));
        });
        for (lane_idx, slot) in outcomes.into_iter().enumerate() {
            let (outcome, wire) = slot.expect("every lane completed");
            let (reference, reference_wire) = &references[lane_idx];
            assert_outcome_matches(&outcome, reference, wire, *reference_wire, lane_idx);
        }
        prop_assert_eq!(engine.stats().malformed_replies, 0);
        prop_assert_eq!(engine.stats().mismatched_replies, 0);
        prop_assert_eq!(engine.stats().sessions_completed, lanes.len() as u64);
    }

    /// Per-hop fan-out is a protocol variant, not a schedule: the wave
    /// sequence is fixed by the trace outcome alone, so *any* engine
    /// schedule — admission policy (streaming FIFO, eager, cost-aware),
    /// admission order, in-flight budget, adaptive controller —
    /// reproduces the blocking fanned driver bit for bit: the same
    /// per-address IP-ID series, per-round partitions, probe accounting
    /// and wire counts. This is determinism rule 5 for the fan-out:
    /// scheduling decides when the waves fly, never what they observe.
    #[test]
    fn fanned_sessions_are_schedule_independent(
        widths in proptest::collection::vec(2u8..5, 2..5),
        profile_sels in proptest::collection::vec(0u8..10, 5..6),
        method_direct in any::<bool>(),
        fault_kind in 0u8..4,
        base_seed in any::<u64>(),
        rounds in 2u32..5,
        replies in 3u32..9,
        budget_kind in 0u8..3,
        adaptive_on in any::<bool>(),
        admission_kind in 0u8..3,
        order_seed in any::<u64>(),
    ) {
        let faults = fault_plan(fault_kind);
        let rounds_config = RoundsConfig {
            rounds,
            replies_per_round: replies,
            method: if method_direct { ProbeMethod::Direct } else { ProbeMethod::Indirect },
            ..RoundsConfig::default()
        };
        let lanes: Vec<Lane> = widths
            .iter()
            .enumerate()
            .map(|(i, &w)| lane_for(i, w, profile_sels[i % profile_sels.len()], base_seed))
            .collect();

        // The canonical fanned outcome: the blocking single-session
        // driver over an identically seeded lane.
        let references: Vec<(MultilevelOutcome, u64)> = lanes
            .iter()
            .map(|lane| {
                let mut prober = TransportProber::new(
                    build_network(lane, &faults),
                    SRC,
                    lane.topology.destination(),
                );
                let mut session = MultilevelSession::new(
                    lane.topology.destination(),
                    MultilevelConfig {
                        trace: TraceConfig::new(lane.trace_seed),
                        rounds: rounds_config.clone(),
                    },
                )
                .with_hop_fanout(true);
                let wire = mlpt::core::drive_probes(&mut session, &mut prober);
                (session.finish(), wire)
            })
            .collect();

        let max_in_flight = match budget_kind % 3 {
            0 => 5usize,
            1 => 64,
            _ => 2048,
        };
        let mut order: Vec<usize> = (0..lanes.len()).collect();
        order.rotate_left((order_seed as usize) % lanes.len().max(1));
        if order_seed % 2 == 1 {
            order.reverse();
        }
        let net = MultiNetwork::new(lanes.iter().map(|l| build_network(l, &faults)).collect())
            .expect("translated lanes have unique destinations");
        let mut engine = SweepEngine::new(net, SRC).with_config(SweepConfig {
            max_in_flight,
            admission: match admission_kind % 3 {
                0 => Admission::Streaming,
                1 => Admission::Eager,
                _ => Admission::CostAware,
            },
            adaptive: adaptive_on.then(|| AdaptiveBudget {
                min_in_flight: 2,
                ..AdaptiveBudget::default()
            }),
            ..SweepConfig::default()
        });
        let sessions = order.iter().map(|&lane_idx| {
            MultilevelSession::new(
                lanes[lane_idx].topology.destination(),
                MultilevelConfig {
                    trace: TraceConfig::new(lanes[lane_idx].trace_seed),
                    rounds: rounds_config.clone(),
                },
            )
            .with_hop_fanout(true)
        });
        let mut outcomes: Vec<Option<(MultilevelOutcome, u64)>> =
            (0..lanes.len()).map(|_| None).collect();
        engine.run_sessions_with(sessions, |stream_idx, session, wire| {
            outcomes[order[stream_idx]] = Some((session.finish(), wire));
        });
        for (lane_idx, slot) in outcomes.into_iter().enumerate() {
            let (outcome, wire) = slot.expect("every lane completed");
            let (reference, reference_wire) = &references[lane_idx];
            assert_eq!(
                outcome.multilevel.trace, reference.multilevel.trace,
                "lane {lane_idx}: fanned trace diverged"
            );
            assert_eq!(
                outcome.multilevel.hop_reports, reference.multilevel.hop_reports,
                "lane {lane_idx}: fanned per-round partitions diverged"
            );
            assert_eq!(
                outcome.hop_evidence, reference.hop_evidence,
                "lane {lane_idx}: fanned evidence series diverged"
            );
            assert_eq!(
                outcome.multilevel.alias_probes, reference.multilevel.alias_probes,
                "lane {lane_idx}: fanned alias accounting diverged"
            );
            assert_eq!(
                wire, *reference_wire,
                "lane {lane_idx}: fanned wire count diverged"
            );
        }
        prop_assert_eq!(engine.stats().malformed_replies, 0);
        prop_assert_eq!(engine.stats().mismatched_replies, 0);
        prop_assert_eq!(engine.stats().sessions_completed, lanes.len() as u64);
    }
}

/// The rate-limited-echo acceptance test: an echo-heavy (direct-method)
/// alias sweep into per-router ICMP rate limiters behind an inter-cycle
/// clock gap. The AIMD budget must back off — measurably fewer replies
/// burned into the limiter than a fixed budget — while the final
/// partitions still pair the interfaces exactly as ground truth does.
#[test]
fn adaptive_budget_backs_off_alias_sweep_without_changing_partitions() {
    const LANES: usize = 6;
    let lanes: Vec<Lane> = (0..LANES).map(|i| lane_for(i, 4, 0, 77)).collect();
    let faults = FaultPlan::with_rate_limit_window(4, 12);
    let rounds_config = RoundsConfig {
        rounds: 3,
        replies_per_round: 6,
        method: ProbeMethod::Direct,
        ..RoundsConfig::default()
    };

    let run = |adaptive: Option<AdaptiveBudget>| {
        let net = MultiNetwork::new(lanes.iter().map(|l| build_network(l, &faults)).collect())
            .expect("unique destinations")
            .with_cycle_gap(12);
        let mut engine = SweepEngine::new(net, SRC).with_config(SweepConfig {
            max_in_flight: 96,
            retries: 12,
            admission: Admission::Streaming,
            adaptive,
            ..SweepConfig::default()
        });
        let sessions = lanes.iter().map(|lane| {
            MultilevelSession::new(
                lane.topology.destination(),
                MultilevelConfig {
                    trace: TraceConfig::new(lane.trace_seed),
                    rounds: rounds_config.clone(),
                },
            )
        });
        let mut outcomes: Vec<Option<MultilevelOutcome>> = (0..LANES).map(|_| None).collect();
        engine.run_sessions_with(sessions, |idx, session, _wire| {
            outcomes[idx] = Some(session.finish());
        });
        let stats = *engine.stats();
        let suppressed = engine.into_transport().counters().replies_rate_limited;
        let outcomes: Vec<MultilevelOutcome> = outcomes
            .into_iter()
            .map(|o| o.expect("completed"))
            .collect();
        (outcomes, stats, suppressed)
    };

    let (fixed, _fixed_stats, fixed_suppressed) = run(None);
    let (adaptive, adaptive_stats, adaptive_suppressed) = run(Some(AdaptiveBudget {
        min_in_flight: 4,
        increase: 2,
        backoff: 0.5,
        loss_threshold: 0.02,
    }));

    assert!(
        adaptive_stats.budget_backoffs > 0,
        "rate limiting must trip the AIMD controller"
    );
    assert!(
        adaptive_suppressed < fixed_suppressed,
        "adaptive must burn fewer replies into the limiter: \
         fixed {fixed_suppressed}, adaptive {adaptive_suppressed}"
    );
    for (lane_idx, (f, a)) in fixed.iter().zip(&adaptive).enumerate() {
        // The budget may change *when* probes cross, never what the
        // final partition says: both runs must pair the middle
        // interfaces exactly as the simulator's ground truth does.
        let truth = &lanes[lane_idx].routers;
        for outcome in [f, a] {
            let map = &outcome.multilevel.router_map;
            let middle: Vec<Ipv4Addr> = lanes[lane_idx].topology.hop(1).to_vec();
            for i in 0..middle.len() {
                for j in i + 1..middle.len() {
                    assert_eq!(
                        map.are_aliases(middle[i], middle[j]),
                        truth.are_aliases(middle[i], middle[j]),
                        "lane {lane_idx}: pair ({}, {}) misjudged",
                        middle[i],
                        middle[j]
                    );
                }
            }
        }
        assert_eq!(
            f.multilevel.router_map, a.multilevel.router_map,
            "lane {lane_idx}: backoff changed the partition"
        );
    }
}
