//! Chaos goldens: every built-in fault-schedule preset, swept with the
//! engine's full robustness stack, must (a) terminate, (b) be exactly
//! reproducible from its seeds, and (c) produce the *golden* number of
//! partial sessions pinned below. The CI chaos stage runs this file;
//! a hang here is an engine liveness bug, a changed count is a
//! behaviour change that needs a deliberate golden update.

use mlpt::core::engine::{Admission, SweepConfig, SweepEngine};
use mlpt::core::session::TraceSession;
use mlpt::core::SweepStats;
use mlpt::prelude::*;
use mlpt::sim::MultiNetwork;
use mlpt::topo::canonical;
use std::net::Ipv4Addr;

const SRC: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);
const LANES: u32 = 4;

/// One chaos sweep: every lane runs the preset on its own virtual
/// clock; MDA keeps the probe volume high enough that every preset's
/// step ticks land mid-trace.
fn chaos_sweep(preset: &str) -> (Vec<Trace>, SweepStats) {
    let lanes: Vec<MultipathTopology> = (0..LANES)
        .map(|i| canonical::fig1_meshed().translated(0x0100_0000 * (i + 1)))
        .collect();
    let net = MultiNetwork::new(
        lanes
            .iter()
            .enumerate()
            .map(|(i, t)| {
                SimNetwork::builder(t.clone())
                    .fault_schedule(FaultSchedule::preset(preset).expect("known preset"))
                    .seed(29 + i as u64)
                    .build()
            })
            .collect(),
    )
    .expect("translated lanes have unique destinations");
    let mut engine = SweepEngine::new(net, SRC).with_config(SweepConfig {
        max_in_flight: 64,
        retries: 1,
        stall_rounds: 4,
        admission: Admission::Streaming,
        ..SweepConfig::default()
    });
    let sessions: Vec<Box<dyn TraceSession>> = lanes
        .iter()
        .enumerate()
        .map(|(i, t)| {
            Box::new(MdaSession::new(t.destination(), TraceConfig::new(i as u64)))
                as Box<dyn TraceSession>
        })
        .collect();
    let traces = engine.run_stream(sessions);
    (traces, *engine.stats())
}

/// The golden partial-session count per preset, in preset order.
fn golden_partials(preset: &str) -> u64 {
    match preset {
        "midtrace-blackhole" => 4, // everything goes dark: all partial
        "flap" => 4,               // 60% loss both ways: waves go silent
        "congestion-ramp" => 0,    // latency stays under the deadline
        "rate-limit-burst" => 4,   // the clamp outlasts the watchdog
        "jitter-spread" => 0,      // ≤13-tick spread vs 4096-tick deadlines
        other => panic!("no golden for preset {other}"),
    }
}

#[test]
fn every_preset_terminates_with_golden_partial_counts() {
    for &preset in FaultSchedule::preset_names() {
        let (traces, stats) = chaos_sweep(preset);
        assert_eq!(traces.len(), LANES as usize, "{preset}: lane lost");
        assert_eq!(
            stats.sessions_completed, LANES as u64,
            "{preset}: every session must finalize"
        );
        assert_eq!(
            stats.sessions_partial,
            golden_partials(preset),
            "{preset}: partial-session golden moved"
        );
        assert_eq!(
            traces.iter().filter(|t| t.outcome.is_partial()).count() as u64,
            stats.sessions_partial,
            "{preset}: outcomes must match the counter"
        );
        // The retry-wave accounting invariant survives every preset.
        assert_eq!(
            stats.probes_timed_out
                + stats.replies_delivered
                + stats.malformed_replies
                + stats.mismatched_replies,
            stats.probes_sent,
            "{preset}: accounting must partition probes_sent"
        );
    }
}

/// One topology-chaos sweep: every lane runs the route-change preset on
/// its own virtual clock, and every session arms the route audit. The
/// unmeshed topology is the one where hop-1 successor swaps are
/// observable (distinct successor sets per branch pair).
fn topology_sweep(preset: &str, admission: Admission) -> (Vec<Trace>, SweepStats) {
    let lanes: Vec<MultipathTopology> = (0..LANES)
        .map(|i| canonical::fig1_unmeshed().translated(0x0100_0000 * (i + 1)))
        .collect();
    let net = MultiNetwork::new(
        lanes
            .iter()
            .enumerate()
            .map(|(i, t)| {
                SimNetwork::builder(t.clone())
                    .topology_schedule(TopologySchedule::preset(preset).expect("known preset"))
                    .seed(29 + i as u64)
                    .build()
            })
            .collect(),
    )
    .expect("translated lanes have unique destinations");
    let mut engine = SweepEngine::new(net, SRC).with_config(SweepConfig {
        max_in_flight: 64,
        retries: 1,
        stall_rounds: 8,
        admission,
        ..SweepConfig::default()
    });
    let sessions: Vec<Box<dyn TraceSession>> = lanes
        .iter()
        .enumerate()
        .map(|(i, t)| {
            // A tight node-control allowance keeps the post-mutation
            // flow hunts (against branches that no longer exist) from
            // dominating the suite's runtime; detection is unaffected.
            let config = TraceConfig {
                node_control_attempts: 500,
                ..TraceConfig::new(i as u64).with_reprobe(ReprobeBudget::default())
            };
            Box::new(MdaSession::new(t.destination(), config)) as Box<dyn TraceSession>
        })
        .collect();
    let traces = engine.run_stream(sessions);
    (traces, *engine.stats())
}

/// The golden robustness counters per topology preset:
/// `(artifacts_detected, route_recoveries, route_changed_partials)`.
fn golden_topology(preset: &str) -> (u64, u64, u64) {
    match preset {
        // Most lanes re-commit hop 2 after the tick-40 swap and the
        // tick-120 swap-back restores the world before their audits run;
        // one lane's audit lands inside the flap window and catches it.
        "route-flap" => (1, 1, 0),
        // The freshly minted branch steals flows from committed ones,
        // contradicting two lanes' bindings.
        "lb-regrow" => (2, 2, 0),
        // The vanished branch's flows re-home: every lane's audit sees
        // the contradiction; recovery re-traces within budget.
        "lb-shrink" => (4, 4, 0),
        // The revealed hop shifts every suffix binding one TTL deeper:
        // all four lanes detect and recover.
        "tunnel-reveal" => (4, 4, 0),
        other => panic!("no golden for preset {other}"),
    }
}

#[test]
fn every_topology_preset_terminates_with_golden_artifact_counts() {
    for &preset in TopologySchedule::preset_names() {
        let (traces, stats) = topology_sweep(preset, Admission::Streaming);
        assert_eq!(traces.len(), LANES as usize, "{preset}: lane lost");
        assert_eq!(
            stats.sessions_completed, LANES as u64,
            "{preset}: every session must finalize"
        );
        let (artifacts, recoveries, partials) = golden_topology(preset);
        assert_eq!(
            stats.artifacts_detected, artifacts,
            "{preset}: artifact golden moved"
        );
        assert_eq!(
            stats.route_recoveries, recoveries,
            "{preset}: recovery golden moved"
        );
        assert_eq!(
            stats.route_changed_partials, partials,
            "{preset}: route-changed-partial golden moved"
        );
        assert_eq!(
            stats.probes_timed_out
                + stats.replies_delivered
                + stats.malformed_replies
                + stats.mismatched_replies,
            stats.probes_sent,
            "{preset}: accounting must partition probes_sent"
        );
    }
}

/// Recovery decisions are protocol, not scheduling: every admission
/// mode sees the same artifacts and produces bit-identical traces, and
/// replaying from the same seeds reproduces everything.
#[test]
fn topology_sweeps_agree_across_admission_modes_and_replay() {
    let modes = [
        Admission::Eager,
        Admission::Streaming,
        Admission::CostAware,
        Admission::CostAwareWindowed(2),
    ];
    for &preset in TopologySchedule::preset_names() {
        let (baseline, base_stats) = topology_sweep(preset, Admission::Streaming);
        for mode in modes {
            let (traces, stats) = topology_sweep(preset, mode);
            assert_eq!(traces, baseline, "{preset}/{mode:?}: traces must agree");
            assert_eq!(
                stats.artifacts_detected, base_stats.artifacts_detected,
                "{preset}/{mode:?}: artifact counts must agree"
            );
            assert_eq!(
                stats.route_recoveries, base_stats.route_recoveries,
                "{preset}/{mode:?}: recovery counts must agree"
            );
        }
    }
}

/// Chaos runs replay bit-for-bit: same seeds, same traces, same
/// counters — scheduling under faults is still pure scheduling.
#[test]
fn chaos_sweeps_replay_bit_identically() {
    for &preset in FaultSchedule::preset_names() {
        let (first, first_stats) = chaos_sweep(preset);
        let (again, again_stats) = chaos_sweep(preset);
        assert_eq!(first, again, "{preset}: traces must replay");
        assert_eq!(
            first_stats.probes_sent, again_stats.probes_sent,
            "{preset}: probe counts must replay"
        );
        assert_eq!(
            first_stats.probes_timed_out, again_stats.probes_timed_out,
            "{preset}: timeout counts must replay"
        );
    }
}

#[test]
#[ignore]
fn measure_topology_goldens() {
    for &preset in TopologySchedule::preset_names() {
        let (traces, stats) = topology_sweep(preset, Admission::Streaming);
        let partial_traces = traces.iter().filter(|t| t.outcome.is_partial()).count();
        println!(
            "{preset}: artifacts={} recoveries={} rc_partials={} sessions_partial={} reprobes={} stale={} evict={} partial_traces={} probes={}",
            stats.artifacts_detected, stats.route_recoveries, stats.route_changed_partials,
            stats.sessions_partial, stats.reprobes_sent, stats.stop_set_stale_hits,
            stats.stop_set_evictions, partial_traces, stats.probes_sent
        );
    }
}
