//! Chaos goldens: every built-in fault-schedule preset, swept with the
//! engine's full robustness stack, must (a) terminate, (b) be exactly
//! reproducible from its seeds, and (c) produce the *golden* number of
//! partial sessions pinned below. The CI chaos stage runs this file;
//! a hang here is an engine liveness bug, a changed count is a
//! behaviour change that needs a deliberate golden update.

use mlpt::core::engine::{Admission, SweepConfig, SweepEngine};
use mlpt::core::session::TraceSession;
use mlpt::core::SweepStats;
use mlpt::prelude::*;
use mlpt::sim::MultiNetwork;
use mlpt::topo::canonical;
use std::net::Ipv4Addr;

const SRC: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);
const LANES: u32 = 4;

/// One chaos sweep: every lane runs the preset on its own virtual
/// clock; MDA keeps the probe volume high enough that every preset's
/// step ticks land mid-trace.
fn chaos_sweep(preset: &str) -> (Vec<Trace>, SweepStats) {
    let lanes: Vec<MultipathTopology> = (0..LANES)
        .map(|i| canonical::fig1_meshed().translated(0x0100_0000 * (i + 1)))
        .collect();
    let net = MultiNetwork::new(
        lanes
            .iter()
            .enumerate()
            .map(|(i, t)| {
                SimNetwork::builder(t.clone())
                    .fault_schedule(FaultSchedule::preset(preset).expect("known preset"))
                    .seed(29 + i as u64)
                    .build()
            })
            .collect(),
    )
    .expect("translated lanes have unique destinations");
    let mut engine = SweepEngine::new(net, SRC).with_config(SweepConfig {
        max_in_flight: 64,
        retries: 1,
        stall_rounds: 4,
        admission: Admission::Streaming,
        ..SweepConfig::default()
    });
    let sessions: Vec<Box<dyn TraceSession>> = lanes
        .iter()
        .enumerate()
        .map(|(i, t)| {
            Box::new(MdaSession::new(t.destination(), TraceConfig::new(i as u64)))
                as Box<dyn TraceSession>
        })
        .collect();
    let traces = engine.run_stream(sessions);
    (traces, *engine.stats())
}

/// The golden partial-session count per preset, in preset order.
fn golden_partials(preset: &str) -> u64 {
    match preset {
        "midtrace-blackhole" => 4, // everything goes dark: all partial
        "flap" => 4,               // 60% loss both ways: waves go silent
        "congestion-ramp" => 0,    // latency stays under the deadline
        "rate-limit-burst" => 4,   // the clamp outlasts the watchdog
        other => panic!("no golden for preset {other}"),
    }
}

#[test]
fn every_preset_terminates_with_golden_partial_counts() {
    for &preset in FaultSchedule::preset_names() {
        let (traces, stats) = chaos_sweep(preset);
        assert_eq!(traces.len(), LANES as usize, "{preset}: lane lost");
        assert_eq!(
            stats.sessions_completed, LANES as u64,
            "{preset}: every session must finalize"
        );
        assert_eq!(
            stats.sessions_partial,
            golden_partials(preset),
            "{preset}: partial-session golden moved"
        );
        assert_eq!(
            traces.iter().filter(|t| t.outcome.is_partial()).count() as u64,
            stats.sessions_partial,
            "{preset}: outcomes must match the counter"
        );
        // The retry-wave accounting invariant survives every preset.
        assert_eq!(
            stats.probes_timed_out
                + stats.replies_delivered
                + stats.malformed_replies
                + stats.mismatched_replies,
            stats.probes_sent,
            "{preset}: accounting must partition probes_sent"
        );
    }
}

/// Chaos runs replay bit-for-bit: same seeds, same traces, same
/// counters — scheduling under faults is still pure scheduling.
#[test]
fn chaos_sweeps_replay_bit_identically() {
    for &preset in FaultSchedule::preset_names() {
        let (first, first_stats) = chaos_sweep(preset);
        let (again, again_stats) = chaos_sweep(preset);
        assert_eq!(first, again, "{preset}: traces must replay");
        assert_eq!(
            first_stats.probes_sent, again_stats.probes_sent,
            "{preset}: probe counts must replay"
        );
        assert_eq!(
            first_stats.probes_timed_out, again_stats.probes_timed_out,
            "{preset}: timeout counts must replay"
        );
    }
}
