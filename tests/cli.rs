//! Integration tests for the `mlpt` command-line tool.

use std::process::Command;

fn mlpt() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mlpt"))
}

#[test]
fn trace_prints_hops_and_summary() {
    let out = mlpt()
        .args(["trace", "--topology", "fig1-unmeshed", "--seed", "5"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("MDA-Lite"), "{stdout}");
    assert!(stdout.contains("destination reached"), "{stdout}");
    // Four interfaces at ttl 2.
    let ttl2_block: Vec<&str> = stdout
        .lines()
        .skip_while(|l| !l.trim_start().starts_with("2 "))
        .take_while(|l| !l.trim_start().starts_with("3 "))
        .collect();
    assert_eq!(ttl2_block.len(), 4, "{stdout}");
}

#[test]
fn json_output_is_valid_report() {
    let out = mlpt()
        .args(["trace", "--topology", "simplest", "--json", "--seed", "3"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let report: mlpt::core::TraceReport =
        serde_json::from_slice(&out.stdout).expect("valid TraceReport JSON");
    assert!(report.reached_destination);
    assert_eq!(report.hops.len(), 3);
    assert_eq!(report.max_width(), 2);
}

#[test]
fn pcap_output_is_openable() {
    let path = std::env::temp_dir().join("mlpt-cli-test.pcap");
    let out = mlpt()
        .args([
            "trace",
            "--topology",
            "simplest",
            "--pcap",
            path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let bytes = std::fs::read(&path).expect("pcap written");
    assert_eq!(&bytes[0..4], &0xA1B2_C3D4u32.to_le_bytes());
    assert!(bytes.len() > 24, "empty capture");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn multilevel_reports_alias_sets() {
    let out = mlpt()
        .args([
            "multilevel",
            "--scenario",
            "3",
            "--seed",
            "2",
            "--rounds",
            "3",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("alias sets"), "{stdout}");
    assert!(stdout.contains("ground truth agreement"), "{stdout}");
}

#[test]
fn meshed_topology_reports_switch() {
    let out = mlpt()
        .args(["trace", "--topology", "fig1-meshed", "--seed", "4"])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("switched to full MDA (meshing"), "{stdout}");
}

#[test]
fn unknown_arguments_rejected() {
    assert!(!mlpt()
        .args(["trace", "--bogus"])
        .output()
        .unwrap()
        .status
        .success());
    assert!(!mlpt()
        .args(["frobnicate"])
        .output()
        .unwrap()
        .status
        .success());
    assert!(!mlpt()
        .args(["trace", "--topology", "no-such"])
        .output()
        .unwrap()
        .status
        .success());
}

#[test]
fn topologies_lists_all_seven() {
    let out = mlpt().arg("topologies").output().unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    for name in [
        "simplest",
        "fig1-unmeshed",
        "fig1-meshed",
        "max-length-2",
        "symmetric",
        "asymmetric",
        "meshed",
    ] {
        assert!(stdout.contains(name), "missing {name}");
    }
}

#[test]
fn sweep_traces_all_destinations() {
    let out = mlpt()
        .args([
            "sweep",
            "--topology",
            "fig1-unmeshed",
            "--destinations",
            "5",
            "--algo",
            "mda",
            "--seed",
            "2",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    // One summary line per destination, each with its own address block.
    for block in ["  11.", "  12.", "  13.", "  14.", "  15."] {
        assert!(
            stdout.contains(block),
            "missing destination line {block}*: {stdout}"
        );
    }
    assert!(stdout.contains("probes/dispatch"), "{stdout}");
}

#[test]
fn sweep_json_reports_stats_and_destinations() {
    let out = mlpt()
        .args([
            "sweep",
            "--topology",
            "simplest",
            "--destinations",
            "3",
            "--json",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let report: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    let dests = report["destinations"].as_array().expect("array");
    assert_eq!(dests.len(), 3);
    for d in dests {
        assert_eq!(d["reached"], serde_json::Value::Bool(true));
    }
    assert!(report["stats"]["probes_per_dispatch"].as_f64().unwrap() > 1.0);
    assert!(report["stats"]["dispatch_cycles"].as_u64().unwrap() >= 1);
}

#[test]
fn sweep_rejects_zero_destinations() {
    assert!(!mlpt()
        .args(["sweep", "--destinations", "0"])
        .output()
        .unwrap()
        .status
        .success());
}

/// `--stdin` streams a destination list (one canonical topology per
/// line; blanks and comments skipped) into the engine.
#[test]
fn sweep_reads_destination_list_from_stdin() {
    use std::io::Write;
    use std::process::Stdio;
    let mut child = mlpt()
        .args(["sweep", "--stdin", "--json", "--max-in-flight", "16"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(b"simplest\n# a comment\n\nfig1-meshed\nasymmetric\n")
        .expect("write list");
    let out = child.wait_with_output().expect("binary exits");
    assert!(out.status.success());
    let report: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    assert_eq!(report["topologies"].as_array().expect("array").len(), 3);
    assert_eq!(report["admission"], "streaming");
    let dests = report["destinations"].as_array().expect("array");
    assert_eq!(dests.len(), 3);
    for d in dests {
        assert_eq!(d["reached"], serde_json::Value::Bool(true));
    }
    assert_eq!(report["stats"]["sessions_admitted"].as_u64(), Some(3));
    assert_eq!(report["stats"]["sessions_completed"].as_u64(), Some(3));
}

/// `--shards N` partitions the sweep across N engine shards; the
/// per-destination results and every protocol-level counter must be
/// bit-identical to the unsharded run — sharding is pure scheduling.
#[test]
fn sweep_sharded_output_matches_unsharded() {
    let base = [
        "sweep",
        "--topology",
        "fig1-meshed",
        "--destinations",
        "9",
        "--stop-set",
        "--seed",
        "5",
        "--json",
    ];
    let run = |extra: &[&str]| -> serde_json::Value {
        let out = mlpt()
            .args(base.iter().copied().chain(extra.iter().copied()))
            .output()
            .expect("binary runs");
        assert!(out.status.success());
        serde_json::from_slice(&out.stdout).expect("valid JSON")
    };
    let plain = run(&[]);
    let sharded = run(&["--shards", "2"]);

    assert_eq!(plain["shards"].as_u64(), Some(1));
    assert_eq!(sharded["shards"].as_u64(), Some(2));
    assert_eq!(
        sharded["per_shard"]
            .as_array()
            .expect("per-shard array")
            .len(),
        2
    );
    // Per-destination outcomes are identical, in order.
    assert_eq!(plain["destinations"], sharded["destinations"]);
    // Protocol-level counters are shard-invariant; scheduling ones
    // (dispatch cycles, batch sizes, barrier stalls) may differ.
    for key in [
        "probes_sent",
        "replies_delivered",
        "probes_timed_out",
        "probes_elided",
        "stop_set_hits",
        "sessions_admitted",
        "sessions_completed",
        "sessions_partial",
    ] {
        assert_eq!(
            plain["stats"][key], sharded["stats"][key],
            "protocol counter {key} diverged under --shards 2"
        );
    }
    assert!(sharded["stats"]["generation_barrier_stalls"]
        .as_u64()
        .is_some());
}

/// The adaptive budget demonstrably backs off on a rate-limited sweep:
/// lossy cycles are detected, the budget drops below the ceiling, and
/// the summary reports the controller's counters.
#[test]
fn sweep_adaptive_budget_backs_off_on_rate_limited_lanes() {
    let args = |adaptive: bool| {
        let mut v = vec![
            "sweep",
            "--topology",
            "fig1-meshed",
            "--destinations",
            "4",
            "--algo",
            "mda",
            "--max-in-flight",
            "64",
            "--rate-limit",
            "3/12",
            "--cycle-gap",
            "12",
            "--json",
        ];
        if adaptive {
            v.push("--adaptive-budget");
        }
        v
    };
    let run = |adaptive: bool| -> serde_json::Value {
        let out = mlpt().args(args(adaptive)).output().expect("binary runs");
        assert!(out.status.success());
        serde_json::from_slice(&out.stdout).expect("valid JSON")
    };
    let fixed = run(false);
    let adaptive = run(true);
    assert_eq!(fixed["adaptive_budget"], serde_json::Value::Bool(false));
    assert_eq!(adaptive["adaptive_budget"], serde_json::Value::Bool(true));
    assert!(adaptive["stats"]["lossy_cycles"].as_u64().unwrap() > 0);
    assert!(adaptive["stats"]["budget_backoffs"].as_u64().unwrap() > 0);
    assert!(
        adaptive["stats"]["final_in_flight_budget"]
            .as_u64()
            .unwrap()
            < 64
    );
    // Fewer probes burned into the rate limiter than the fixed budget.
    let probes = |r: &serde_json::Value| r["stats"]["probes_sent"].as_u64().unwrap();
    assert!(probes(&adaptive) <= probes(&fixed));
}

#[test]
fn sweep_eager_admission_mode_selectable() {
    let out = mlpt()
        .args([
            "sweep",
            "--topology",
            "simplest",
            "--destinations",
            "3",
            "--admission",
            "eager",
            "--json",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let report: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    assert_eq!(report["admission"], "eager");
    assert!(!mlpt()
        .args(["sweep", "--admission", "bogus"])
        .output()
        .unwrap()
        .status
        .success());
}

/// `--fault-schedule` puts a sweep under a chaos preset: the run still
/// terminates, dark destinations are flagged partial in both output
/// modes, the robustness counters appear, and the whole thing is
/// deterministic — two identical invocations produce identical bytes.
#[test]
fn sweep_fault_schedule_reports_partials_deterministically() {
    let args = [
        "sweep",
        "--destinations",
        "2",
        "--algo",
        "mda",
        "--fault-schedule",
        "midtrace-blackhole",
        "--max-retries",
        "1",
        "--seed",
        "3",
    ];
    let out = mlpt().args(args).output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("[partial: stalled"), "{stdout}");
    assert!(stdout.contains("robustness:"), "{stdout}");
    assert!(stdout.contains("probes timed out"), "{stdout}");

    let json_args: Vec<&str> = args.iter().copied().chain(["--json"]).collect();
    let run = || mlpt().args(&json_args).output().expect("binary runs");
    let first = run();
    assert!(first.status.success());
    assert_eq!(
        first.stdout,
        run().stdout,
        "chaos sweeps must be replayable"
    );
    let report: serde_json::Value = serde_json::from_slice(&first.stdout).expect("valid JSON");
    assert!(report["stats"]["probes_timed_out"].as_u64().unwrap() > 0);
    assert!(report["stats"]["retries_exhausted"].as_u64().unwrap() > 0);
    assert!(report["stats"]["sessions_partial"].as_u64().unwrap() >= 1);
    assert!(report["stats"]["max_lane_backoff_depth"].as_u64().unwrap() > 0);
    let dests = report["destinations"].as_array().expect("array");
    assert!(dests
        .iter()
        .any(|d| d["partial"] == serde_json::Value::Bool(true)));

    // Unknown presets are rejected with the list of known ones.
    let bad = mlpt()
        .args(["sweep", "--fault-schedule", "nope"])
        .output()
        .unwrap();
    assert!(!bad.status.success());
    let stderr = String::from_utf8(bad.stderr).unwrap();
    assert!(stderr.contains("midtrace-blackhole"), "{stderr}");
}

/// `--max-retries` buys extra probe waves for unanswered deadlines: on
/// a lossy sweep with a fixed seed, retries spend strictly more probes
/// than none, and timed-out probes are counted either way.
#[test]
fn sweep_max_retries_spends_probes_on_timeouts() {
    let run = |retries: &str| -> serde_json::Value {
        let out = mlpt()
            .args([
                "sweep",
                "--topology",
                "fig1-meshed",
                "--destinations",
                "3",
                "--algo",
                "mda",
                "--loss",
                "0.3",
                "--seed",
                "7",
                "--max-retries",
                retries,
                "--json",
            ])
            .output()
            .expect("binary runs");
        assert!(out.status.success());
        serde_json::from_slice(&out.stdout).expect("valid JSON")
    };
    let plain = run("0");
    let retried = run("3");
    let probes = |r: &serde_json::Value| r["stats"]["probes_sent"].as_u64().unwrap();
    let timed_out = |r: &serde_json::Value| r["stats"]["probes_timed_out"].as_u64().unwrap();
    assert!(timed_out(&plain) > 0);
    assert!(timed_out(&retried) > 0);
    assert!(
        probes(&retried) > probes(&plain),
        "retry waves must cost probes: {} vs {}",
        probes(&retried),
        probes(&plain)
    );
    // Bad values are usage errors.
    assert!(!mlpt()
        .args(["sweep", "--max-retries", "many"])
        .output()
        .unwrap()
        .status
        .success());
}

/// `--probe-timeout` sets the base deadline in virtual ticks: under the
/// congestion-ramp schedule (whose reply latency climbs to 32 ticks) a
/// one-tick deadline writes late replies off as timeouts, while the
/// default deadline waits them out.
#[test]
fn sweep_probe_timeout_bounds_reply_latency() {
    let run = |timeout: &str| -> serde_json::Value {
        let out = mlpt()
            .args([
                "sweep",
                "--destinations",
                "2",
                "--algo",
                "mda",
                "--fault-schedule",
                "congestion-ramp",
                "--seed",
                "5",
                "--probe-timeout",
                timeout,
                "--json",
            ])
            .output()
            .expect("binary runs");
        assert!(out.status.success());
        serde_json::from_slice(&out.stdout).expect("valid JSON")
    };
    let tight = run("1");
    let patient = run("4096");
    let timed_out = |r: &serde_json::Value| r["stats"]["probes_timed_out"].as_u64().unwrap();
    assert!(
        timed_out(&tight) > timed_out(&patient),
        "a one-tick deadline must miss more replies: {} vs {}",
        timed_out(&tight),
        timed_out(&patient)
    );
    // Bad values are usage errors.
    assert!(!mlpt()
        .args(["sweep", "--probe-timeout", "forever"])
        .output()
        .unwrap()
        .status
        .success());
}

/// The alias sweep grows the same robustness surface: a chaos preset is
/// selectable, the text report carries the robustness line and the JSON
/// report the new counters.
#[test]
fn alias_fault_schedule_and_robustness_counters() {
    let out = mlpt()
        .args([
            "alias",
            "3",
            "--rounds",
            "2",
            "--replies",
            "6",
            "--fault-schedule",
            "flap",
            "--max-retries",
            "1",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("robustness:"), "{stdout}");
    let out = mlpt()
        .args([
            "alias",
            "3",
            "--rounds",
            "2",
            "--replies",
            "6",
            "--fault-schedule",
            "flap",
            "--max-retries",
            "1",
            "--probe-timeout",
            "64",
            "--json",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let report: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    for key in [
        "probes_timed_out",
        "retries_exhausted",
        "sessions_partial",
        "max_lane_backoff_depth",
    ] {
        assert!(
            report["stats"][key].as_u64().is_some(),
            "stats must carry {key}"
        );
    }
    assert!(!mlpt()
        .args(["alias", "3", "--fault-schedule", "bogus"])
        .output()
        .unwrap()
        .status
        .success());
}

/// Cost-aware admission and per-hop fan-out are selectable on the alias
/// sweep; the JSON report records both, and the per-scenario numbers
/// match a plain streaming run (cost-aware scheduling must not change
/// results; fan-out keeps the per-hop probe accounting).
#[test]
fn alias_cost_aware_fanout_selectable_and_consistent() {
    let run = |extra: &[&str]| -> serde_json::Value {
        let mut args = vec![
            "alias",
            "3",
            "5",
            "--rounds",
            "2",
            "--replies",
            "6",
            "--json",
        ];
        args.extend_from_slice(extra);
        let out = mlpt().args(&args).output().expect("binary runs");
        assert!(out.status.success());
        serde_json::from_slice(&out.stdout).expect("valid JSON")
    };
    let streaming = run(&[]);
    let cost_aware = run(&["--admission", "cost-aware"]);
    assert_eq!(streaming["admission"], "streaming");
    assert_eq!(cost_aware["admission"], "cost-aware");
    assert_eq!(cost_aware["hop_fanout"], false);
    // Pure scheduling: identical per-scenario results and wire totals.
    assert_eq!(streaming["scenarios"], cost_aware["scenarios"]);
    assert_eq!(
        streaming["stats"]["probes_sent"],
        cost_aware["stats"]["probes_sent"]
    );
    let fanned = run(&["--fanout", "--admission", "cost-aware"]);
    assert_eq!(fanned["hop_fanout"], true);
    // The fan-out is a protocol variant: same scenarios, same per-hop
    // cumulative probe spend (campaigns are reply-independent).
    for (a, b) in streaming["scenarios"]
        .as_array()
        .unwrap()
        .iter()
        .zip(fanned["scenarios"].as_array().unwrap())
    {
        assert_eq!(a["scenario"], b["scenario"]);
        assert_eq!(a["trace_probes"], b["trace_probes"]);
        assert_eq!(a["alias_probes"], b["alias_probes"]);
    }
    assert!(!mlpt()
        .args(["alias", "3", "--admission", "bogus"])
        .output()
        .unwrap()
        .status
        .success());
}

/// `mlpt alias` resolves several scenarios' routers through one streamed
/// sweep and reports per-round partition sizes plus engine counters.
#[test]
fn alias_resolves_scenarios_concurrently() {
    let out = mlpt()
        .args(["alias", "3", "5", "--rounds", "2", "--replies", "6"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("mlpt alias: 2 scenario(s)"), "{stdout}");
    assert!(stdout.contains("method indirect"), "{stdout}");
    assert!(stdout.contains("routers/aliased per round"), "{stdout}");
    assert!(stdout.contains("admission: 2 admitted"), "{stdout}");
    assert!(stdout.contains("2 completed"), "{stdout}");
}

/// The JSON report carries per-round partition sizes and the sweep's
/// admission/backoff counters; the direct method is selectable.
#[test]
fn alias_json_reports_rounds_and_counters() {
    let out = mlpt()
        .args([
            "alias",
            "3",
            "--method",
            "direct",
            "--rounds",
            "2",
            "--replies",
            "6",
            "--json",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let report: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    assert_eq!(report["method"], "direct");
    assert_eq!(report["rounds"].as_u64(), Some(2));
    let scenarios = report["scenarios"].as_array().expect("array");
    assert_eq!(scenarios.len(), 1);
    let hops = scenarios[0]["hops"].as_array().expect("array");
    assert!(!hops.is_empty(), "scenario 3 carries a diamond");
    let rounds = hops[0]["rounds"].as_array().expect("array");
    assert_eq!(rounds.len(), 3, "rounds 0..=2");
    assert!(rounds.last().unwrap()["cumulative_probes"].as_u64() > Some(0));
    assert_eq!(report["stats"]["sessions_admitted"].as_u64(), Some(1));
    assert_eq!(report["stats"]["sessions_completed"].as_u64(), Some(1));
    assert!(report["stats"]["probes_per_dispatch"].as_f64() > Some(1.0));
}

/// `--stdin` reads scenario numbers (comments and blanks skipped); bad
/// input and empty target lists are rejected.
#[test]
fn alias_reads_targets_from_stdin() {
    use std::io::Write;
    use std::process::Stdio;
    let mut child = mlpt()
        .args([
            "alias",
            "--stdin",
            "--rounds",
            "1",
            "--replies",
            "4",
            "--json",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(b"# targets\n3\n\n5\n")
        .expect("write list");
    let out = child.wait_with_output().expect("binary exits");
    assert!(out.status.success());
    let report: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    assert_eq!(report["scenarios"].as_array().expect("array").len(), 2);

    // No targets at all: usage error.
    assert!(!mlpt().args(["alias"]).output().unwrap().status.success());
    // Duplicate targets would collide in one transport: rejected.
    assert!(!mlpt()
        .args(["alias", "3", "3"])
        .output()
        .unwrap()
        .status
        .success());
}
