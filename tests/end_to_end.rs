//! End-to-end integration: algorithms × simulator × wire path.
//!
//! Every probe in these tests is a real IPv4+UDP datagram routed by the
//! simulator, answered with real ICMP bytes, and parsed back — the full
//! production path.

use mlpt::prelude::*;
use mlpt::topo::canonical;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

const SRC: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

/// Both algorithms fully discover every canonical topology on a green
/// seed, through the complete packet path.
#[test]
fn full_discovery_on_canonical_suite() {
    for (name, topo) in canonical::simulation_suite() {
        // The meshed 48-wide monster compounds per-vertex failure; skip
        // exact completeness there (covered statistically elsewhere).
        if name == "meshed" {
            continue;
        }
        for lite in [false, true] {
            let net = SimNetwork::new(topo.clone(), 11);
            let mut prober = TransportProber::new(net, SRC, topo.destination());
            let config = TraceConfig::new(13);
            let trace = if lite {
                trace_mda_lite(&mut prober, &config)
            } else {
                trace_mda(&mut prober, &config)
            };
            assert!(trace.reached_destination, "{name} lite={lite}");
            let got = trace.to_topology().expect("reached");
            assert_eq!(got.num_hops(), topo.num_hops(), "{name} lite={lite}: hops");
            for i in 0..topo.num_hops() {
                let want: BTreeSet<_> = topo.hop(i).iter().collect();
                let have: BTreeSet<_> = got.hop(i).iter().collect();
                assert_eq!(have, want, "{name} lite={lite}: hop {i}");
            }
        }
    }
}

/// MDA-Lite's probe economy, end to end: cheaper wherever it does not
/// switch, never discovering less on uniform unmeshed diamonds.
#[test]
fn lite_economy_claim() {
    for topo in [canonical::max_length_2(), canonical::symmetric()] {
        let mut lite_probes = 0u64;
        let mut mda_probes = 0u64;
        for seed in 0..8u64 {
            let net = SimNetwork::new(topo.clone(), seed);
            let mut prober = TransportProber::new(net, SRC, topo.destination());
            let lite = trace_mda_lite(&mut prober, &TraceConfig::new(seed));
            assert!(lite.switched.is_none());
            lite_probes += lite.probes_sent;

            let net = SimNetwork::new(topo.clone(), seed);
            let mut prober = TransportProber::new(net, SRC, topo.destination());
            mda_probes += trace_mda(&mut prober, &TraceConfig::new(seed)).probes_sent;
        }
        assert!(
            (lite_probes as f64) < 0.75 * mda_probes as f64,
            "lite {lite_probes} vs mda {mda_probes}"
        );
    }
}

/// The asymmetric diamond forces a switch; the meshed diamond forces a
/// switch; the uniform ones never do.
#[test]
fn switchover_behaviour_matches_paper() {
    let mut meshing_reason = 0;
    let runs = 10u64;
    for seed in 0..runs {
        let topo = canonical::meshed();
        let net = SimNetwork::new(topo.clone(), seed);
        let mut prober = TransportProber::new(net, SRC, topo.destination());
        let trace = trace_mda_lite(&mut prober, &TraceConfig::new(seed));
        // Every run must escalate to the full MDA. The detection that
        // fires first is seed-dependent: the meshing test usually wins,
        // but partial edge evidence on the 48-wide hops can trip the
        // width-asymmetry test a hop earlier — either way the paper's
        // behaviour (switch, then full rediscovery) is what matters.
        assert!(trace.switched.is_some(), "meshed must always switch");
        if matches!(trace.switched, Some(SwitchReason::MeshingDetected { .. })) {
            meshing_reason += 1;
        }
    }
    assert!(
        meshing_reason >= (runs as i32) / 2,
        "meshing should be the dominant detection, got {meshing_reason}/{runs}"
    );

    for seed in 0..runs {
        let topo = canonical::asymmetric();
        let net = SimNetwork::new(topo.clone(), seed);
        let mut prober = TransportProber::new(net, SRC, topo.destination());
        let trace = trace_mda_lite(&mut prober, &TraceConfig::new(seed));
        assert!(trace.switched.is_some(), "asymmetric must switch");
    }
}

/// Single-flow Paris traceroute walks exactly one path and its vertices
/// are a subset of some flow's true path.
#[test]
fn single_flow_is_one_true_path() {
    let topo = canonical::meshed();
    let net = SimNetwork::new(topo.clone(), 4);
    let mut prober = TransportProber::new(net, SRC, topo.destination());
    let trace = trace_single_flow(&mut prober, &TraceConfig::new(4), FlowId(77));
    assert!(trace.reached_destination);
    let mut prev: Option<Ipv4Addr> = None;
    for ttl in 1..=trace.destination_ttl().unwrap() {
        let vs = trace.vertices_at(ttl);
        assert_eq!(vs.len(), 1, "one vertex per hop");
        let v = vs[0];
        assert!(topo.contains(usize::from(ttl - 1), v));
        if let Some(p) = prev {
            assert!(
                topo.successors(usize::from(ttl - 2), p).contains(&v),
                "consecutive vertices must be linked"
            );
        }
        prev = Some(v);
    }
}

/// Empirical MDA failure rate through the full stack matches the analytic
/// bound on the simplest diamond (the Fakeroute claim).
#[test]
fn failure_rate_matches_analytic_bound() {
    let topo = canonical::simplest_diamond();
    let nks = StoppingPoints::mda95();
    let analytic = mlpt::sim::mda_failure_probability(&topo, nks.as_slice());
    let runs = 800u64;
    let mut failures = 0u64;
    for seed in 0..runs {
        let net = SimNetwork::new(topo.clone(), seed);
        let mut prober = TransportProber::new(net, SRC, topo.destination());
        let trace = trace_mda(&mut prober, &TraceConfig::new(seed));
        if trace.total_vertices() < topo.total_vertices() {
            failures += 1;
        }
    }
    let rate = failures as f64 / runs as f64;
    assert!(
        (rate - analytic).abs() < 0.015,
        "empirical {rate} vs analytic {analytic}"
    );
}

/// Per-packet load balancing is detected by the pre-flight check and
/// (per the MDA model) breaks flow stability.
#[test]
fn per_packet_detection() {
    use mlpt::core::detect::check_per_packet;
    use mlpt::sim::BalanceMode;
    let topo = canonical::max_length_2();
    let net = SimNetwork::builder(topo.clone())
        .mode(BalanceMode::PerPacket)
        .seed(3)
        .build();
    let mut prober = TransportProber::new(net, SRC, topo.destination());
    let report = check_per_packet(&mut prober, FlowId(5), 2, 20);
    assert!(report.is_per_packet());

    let net = SimNetwork::new(topo.clone(), 3);
    let mut prober = TransportProber::new(net, SRC, topo.destination());
    let report = check_per_packet(&mut prober, FlowId(5), 2, 20);
    assert!(!report.is_per_packet());
}
