//! Fault injection through the full stack: the MDA model's assumption 4
//! ("all probes receive a response") violated in controlled ways.

use mlpt::core::engine::{Admission, SweepConfig, SweepEngine};
use mlpt::core::session::TraceSession;
use mlpt::core::SweepStats;
use mlpt::prelude::*;
use mlpt::sim::{CapturingTransport, MultiNetwork};
use mlpt::topo::canonical;
use std::net::Ipv4Addr;

const SRC: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

/// Total loss: the trace finds nothing, reports honestly, and the
/// topology conversion declines (no convergence point).
#[test]
fn total_loss_is_reported_honestly() {
    let topo = canonical::simplest_diamond();
    let net = SimNetwork::builder(topo.clone())
        .faults(FaultPlan::with_loss(1.0, 0.0))
        .seed(1)
        .build();
    let mut prober = TransportProber::new(net, SRC, topo.destination());
    let config = TraceConfig::new(1);
    let trace = trace_mda_lite(&mut prober, &config);
    assert!(!trace.reached_destination);
    assert_eq!(trace.total_vertices(), 0);
    assert!(trace.to_topology().is_none());
    assert!(trace.probes_sent > 0);
}

/// Moderate reply loss degrades discovery gracefully, never unsoundly.
#[test]
fn loss_degrades_gracefully() {
    let topo = canonical::fig1_unmeshed();
    let mut found = 0usize;
    let runs = 20u64;
    for seed in 0..runs {
        let net = SimNetwork::builder(topo.clone())
            .faults(FaultPlan::with_loss(0.0, 0.2))
            .seed(seed)
            .build();
        let mut prober = TransportProber::new(net, SRC, topo.destination());
        let trace = trace_mda(&mut prober, &TraceConfig::new(seed));
        found += trace.total_vertices();
        // Soundness under loss.
        for ttl in 1..=topo.num_hops() as u8 {
            for &v in trace.vertices_at(ttl) {
                assert!(topo.contains(usize::from(ttl - 1), v));
            }
        }
    }
    let mean = found as f64 / runs as f64;
    assert!(
        mean > 0.8 * topo.total_vertices() as f64,
        "mean vertices {mean}"
    );
}

/// Retries restore discovery under loss, at a quantified probe premium.
#[test]
fn retries_restore_discovery() {
    let topo = canonical::fig1_unmeshed();
    let mut plain = (0usize, 0u64);
    let mut retried = (0usize, 0u64);
    for seed in 0..15u64 {
        for retries in [0u8, 3] {
            let net = SimNetwork::builder(topo.clone())
                .faults(FaultPlan::with_loss(0.0, 0.25))
                .seed(seed)
                .build();
            let mut prober =
                TransportProber::new(net, SRC, topo.destination()).with_retries(retries);
            let trace = trace_mda(&mut prober, &TraceConfig::new(seed));
            let slot = if retries == 0 {
                &mut plain
            } else {
                &mut retried
            };
            slot.0 += trace.total_vertices();
            slot.1 += trace.probes_sent;
        }
    }
    assert!(retried.0 >= plain.0, "retries must not lose vertices");
    assert!(retried.1 > plain.1, "retries must cost probes");
}

/// Rate limiting plus capture: suppressed replies appear as probe-only
/// records in the pcap, and the simulator counts them.
#[test]
fn rate_limit_visible_in_capture() {
    let topo = canonical::max_length_2();
    let net = SimNetwork::builder(topo.clone())
        .faults(FaultPlan::with_rate_limit(4, 0.1))
        .seed(2)
        .build();
    let mut capture = CapturingTransport::new(net);
    let mut prober = TransportProber::new(&mut capture, SRC, topo.destination());
    let _ = trace_mda_lite(&mut prober, &TraceConfig::new(2));
    let (probes, replies) = capture.counts();
    assert!(probes > replies, "rate limiting must suppress replies");
    let (net, _) = capture.into_parts();
    assert!(net.counters().replies_rate_limited > 0);
}

/// A destination that goes dark mid-sweep (the `midtrace-blackhole`
/// schedule on one lane) degrades *only* its own lane: the sweep
/// terminates, the dark destination reports an honest
/// `TraceOutcome::Partial` with the prefix it discovered before the
/// cut, every other destination still completes, and all three
/// admission modes agree bit-for-bit — including on the partial trace.
#[test]
fn midsweep_blackhole_partials_only_the_dark_lane() {
    let lanes: Vec<MultipathTopology> = (0..4u32)
        .map(|i| canonical::fig1_meshed().translated(0x0100_0000 * (i + 1)))
        .collect();
    const DARK: usize = 1;
    let build = |dark_on: bool| -> MultiNetwork {
        MultiNetwork::new(
            lanes
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let builder = SimNetwork::builder(t.clone()).seed(29 + i as u64);
                    let builder = if dark_on && i == DARK {
                        builder.fault_schedule(
                            FaultSchedule::preset("midtrace-blackhole").expect("known preset"),
                        )
                    } else {
                        builder
                    };
                    builder.build()
                })
                .collect(),
        )
        .expect("translated lanes have unique destinations")
    };
    let sweep =
        |admission: Admission, max_in_flight: usize, dark_on: bool| -> (Vec<Trace>, SweepStats) {
            let mut engine = SweepEngine::new(build(dark_on), SRC).with_config(SweepConfig {
                max_in_flight,
                retries: 2,
                stall_rounds: 4,
                admission,
                ..SweepConfig::default()
            });
            let sessions: Vec<Box<dyn TraceSession>> = lanes
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    Box::new(MdaSession::new(t.destination(), TraceConfig::new(i as u64)))
                        as Box<dyn TraceSession>
                })
                .collect();
            let traces = engine.run_stream(sessions);
            (traces, *engine.stats())
        };

    let (eager, stats) = sweep(Admission::Eager, 512, true);
    let (streaming, _) = sweep(Admission::Streaming, 16, true);
    let (cost_aware, _) = sweep(Admission::CostAware, 48, true);

    // The dark destination: terminated, honest partial, prefix intact.
    assert!(
        eager[DARK].outcome.is_partial(),
        "{:?}",
        eager[DARK].outcome
    );
    assert!(!eager[DARK].reached_destination);
    assert!(
        !eager[DARK].vertices_at(1).is_empty(),
        "the prefix discovered before the cut must survive"
    );
    assert_eq!(stats.sessions_partial, 1);
    assert_eq!(stats.sessions_completed, lanes.len() as u64);
    assert!(stats.probes_timed_out > 0);
    assert!(stats.retries_exhausted > 0);

    // The healthy lanes are untouched by their dark neighbour: complete,
    // destination reached, and bit-identical to an all-clean sweep.
    let (clean, _) = sweep(Admission::Streaming, 64, false);
    for (i, trace) in eager.iter().enumerate() {
        assert_eq!(trace, &streaming[i], "admission modes diverged on lane {i}");
        assert_eq!(
            trace, &cost_aware[i],
            "admission modes diverged on lane {i}"
        );
        if i != DARK {
            assert_eq!(trace.outcome, TraceOutcome::Complete);
            assert!(trace.reached_destination);
            assert_eq!(
                trace, &clean[i],
                "clean lane {i} must not be perturbed by the dark lane"
            );
        }
    }
}

/// The multilevel tracer stays coherent under loss: alias probing simply
/// gathers fewer samples; no panics, no phantom aliases across routers
/// with distinct fingerprints.
#[test]
fn multilevel_under_loss() {
    use mlpt::topo::graph::addr;
    let mut b = MultipathTopology::builder();
    b.add_hop([addr(0, 0)]);
    b.add_hop([addr(1, 0), addr(1, 1), addr(1, 2), addr(1, 3)]);
    b.add_hop([addr(2, 0)]);
    b.connect_unmeshed(0);
    b.connect_unmeshed(1);
    let topo = b.build().unwrap();
    let truth =
        RouterMap::from_alias_sets([vec![addr(1, 0), addr(1, 1)], vec![addr(1, 2), addr(1, 3)]]);
    let net = SimNetwork::builder(topo.clone())
        .routers(truth)
        .faults(FaultPlan::with_loss(0.0, 0.1))
        .seed(5)
        .build();
    let mut prober = TransportProber::new(net, SRC, topo.destination()).with_retries(2);
    let result = trace_multilevel(&mut prober, &MultilevelConfig::new(5));
    assert!(result.trace.reached_destination);
    // No cross-router merges.
    assert!(!result.router_map.are_aliases(addr(1, 1), addr(1, 2)));
}
