//! Multilevel tracing against simulator ground truth — the validation the
//! paper's future work wished Fakeroute could do ("Another extension
//! might be to allow simulation of multilevel route tracing").

use mlpt::alias::rounds::{ProbeMethod, RoundsConfig};
use mlpt::prelude::*;
use mlpt::sim::{IpIdProfile, MplsProfile, RouterProfile};
use mlpt::topo::graph::addr;
use mlpt::topo::RouterId;
use std::net::Ipv4Addr;

const SRC: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

/// A 1-6-1 diamond with three 2-interface routers.
fn three_router_diamond() -> (MultipathTopology, RouterMap) {
    let mut b = MultipathTopology::builder();
    b.add_hop([addr(0, 0)]);
    b.add_hop((0..6).map(|i| addr(1, i)));
    b.add_hop([addr(2, 0)]);
    b.connect_unmeshed(0);
    b.connect_unmeshed(1);
    let topo = b.build().unwrap();
    let truth = RouterMap::from_alias_sets([
        vec![addr(1, 0), addr(1, 1)],
        vec![addr(1, 2), addr(1, 3)],
        vec![addr(1, 4), addr(1, 5)],
    ]);
    (topo, truth)
}

#[test]
fn multilevel_recovers_ground_truth_aliases() {
    let (topo, truth) = three_router_diamond();
    let net = SimNetwork::builder(topo.clone())
        .routers(truth.clone())
        .seed(17)
        .build();
    let mut prober = TransportProber::new(net, SRC, topo.destination());
    let result = trace_multilevel(&mut prober, &MultilevelConfig::new(17));

    // Exactly the ground-truth pairing, nothing across routers.
    for i in 0..6u8 {
        for j in (i + 1)..6u8 {
            let a = addr(1, i.into());
            let b = addr(1, j.into());
            assert_eq!(
                result.router_map.are_aliases(a, b),
                truth.are_aliases(a, b),
                "pair ({i},{j})"
            );
        }
    }
    // Router-level diamond narrowed 6 → 3.
    let router_topo = result.router_topology.unwrap();
    assert_eq!(router_topo.hop(1).len(), 3);
}

#[test]
fn mixed_evidence_sources_cooperate() {
    // Router A: shared counters (MBT). Router B: constant IDs but stable
    // MPLS labels (labeling). Router C: constant IDs, no labels, same
    // fingerprint (signature fallback — the paper's false-positive
    // mechanism keeps them together, correctly here).
    let (topo, truth) = three_router_diamond();
    let profile_b = RouterProfile {
        ipid: IpIdProfile::constant_zero(),
        mpls: Some(MplsProfile {
            label: 777,
            stable: true,
        }),
        ..RouterProfile::well_behaved()
    };
    let profile_c = RouterProfile {
        ipid: IpIdProfile::constant_zero(),
        initial_ttl_indirect: 64,
        initial_ttl_direct: 64,
        ..RouterProfile::well_behaved()
    };
    let net = SimNetwork::builder(topo.clone())
        .routers(truth.clone())
        .profile(RouterId(1), profile_b)
        .profile(RouterId(2), profile_c)
        .seed(23)
        .build();
    let mut prober = TransportProber::new(net, SRC, topo.destination());
    let result = trace_multilevel(&mut prober, &MultilevelConfig::new(23));

    assert!(result.router_map.are_aliases(addr(1, 0), addr(1, 1)), "MBT");
    assert!(
        result.router_map.are_aliases(addr(1, 2), addr(1, 3)),
        "MPLS"
    );
    assert!(
        result.router_map.are_aliases(addr(1, 4), addr(1, 5)),
        "signature fallback"
    );
    // Across routers: the 255-fingerprint groups must not leak into the
    // 64-fingerprint group.
    assert!(!result.router_map.are_aliases(addr(1, 1), addr(1, 4)));
    assert!(!result.router_map.are_aliases(addr(1, 3), addr(1, 4)));
}

#[test]
fn direct_vs_indirect_disagreement_reproduced() {
    // Per-interface Time Exceeded counters with a router-wide Echo
    // counter: indirect probing must reject, direct probing must accept —
    // the 14.4% cell of Table 2.
    use mlpt::alias::evidence::EvidenceBase;
    use mlpt::alias::rounds::run_rounds;
    use std::collections::BTreeSet;

    let (topo, truth) = three_router_diamond();
    let per_if = RouterProfile {
        ipid: IpIdProfile::per_interface_indirect(2, 3),
        ..RouterProfile::well_behaved()
    };
    let net = SimNetwork::builder(topo.clone())
        .routers(truth.clone())
        .profile(RouterId(0), per_if)
        .seed(31)
        .build();
    let mut prober = TransportProber::new(net, SRC, topo.destination());
    let trace = trace_mda_lite(&mut prober, &TraceConfig::new(31));
    let candidates: BTreeSet<Ipv4Addr> = trace.vertices_at(2).iter().copied().collect();
    assert_eq!(candidates.len(), 6);

    let mut base = EvidenceBase::from_log(prober.log(), &candidates);
    let indirect = run_rounds(
        &mut prober,
        &trace,
        &candidates,
        &mut base,
        &RoundsConfig::default(),
    );
    let direct_cfg = RoundsConfig {
        method: ProbeMethod::Direct,
        ..RoundsConfig::default()
    };
    let direct = run_rounds(&mut prober, &trace, &candidates, &mut base, &direct_cfg);

    let ind = &indirect.last().unwrap().partition;
    let dir = &direct.last().unwrap().partition;
    assert!(!ind.same_set(addr(1, 0), addr(1, 1)), "indirect rejects");
    assert!(dir.same_set(addr(1, 0), addr(1, 1)), "direct accepts");
}

#[test]
fn alias_probing_cost_is_accounted() {
    let (topo, truth) = three_router_diamond();
    let net = SimNetwork::builder(topo.clone())
        .routers(truth)
        .seed(3)
        .build();
    let mut prober = TransportProber::new(net, SRC, topo.destination());
    let config = MultilevelConfig {
        trace: TraceConfig::new(3),
        rounds: RoundsConfig {
            rounds: 10,
            replies_per_round: 30,
            ..RoundsConfig::default()
        },
    };
    let result = trace_multilevel(&mut prober, &config);
    // 6 candidates: round 1 = 6 direct + 180 indirect; rounds 2..10 = 180
    // each → 6 + 10*180 = 1806.
    assert_eq!(result.alias_probes, 1806);
    assert_eq!(
        prober.probes_sent(),
        result.trace.probes_sent + result.alias_probes
    );
}
