//! Smoke-level integration of the survey pipeline and the experiment
//! harness: every paper artifact regenerates at small scale with sane
//! shapes.

use mlpt_bench::experiments;
use mlpt_bench::Scale;

/// The evaluation dataset reproduces Table 1's orderings at small scale.
#[test]
fn evaluation_orderings_hold() {
    use mlpt::survey::evaluation::Variant;
    use mlpt::survey::{evaluate_scenarios, EvaluationConfig, InternetConfig, SyntheticInternet};
    let internet = SyntheticInternet::new(InternetConfig::default());
    let out = evaluate_scenarios(
        &internet,
        &EvaluationConfig {
            scenarios: 80,
            workers: 4,
            trace_seed: 1,
            ..EvaluationConfig::default()
        },
    );
    let (v_lite, e_lite, p_lite) = out.aggregate_of(Variant::MdaLitePhi2);
    let (v_single, e_single, p_single) = out.aggregate_of(Variant::SingleFlow);
    // Who wins, by roughly what factor.
    assert!(
        v_lite > 0.95 && e_lite > 0.92,
        "lite parity {v_lite}/{e_lite}"
    );
    assert!(p_lite < 0.9, "lite economy {p_lite}");
    assert!(v_single < 0.8 && e_single < 0.6, "single flow misses");
    assert!(p_single < 0.1, "single flow is cheap");
    assert!(p_single < p_lite && p_lite < 1.0, "cost ordering");
}

/// Every experiment id runs at small scale and emits non-empty output.
#[test]
fn all_experiments_run_small() {
    // The full battery is exercised piecewise to keep failures local;
    // "all" composition is checked by the ids list.
    for id in experiments::ALL_IDS {
        let results =
            experiments::run(id, Scale::Small).unwrap_or_else(|| panic!("unknown experiment {id}"));
        for r in &results {
            assert!(!r.text.trim().is_empty(), "{id}: empty text");
            assert!(!r.json.is_null(), "{id}: null json");
        }
    }
}

#[test]
fn unknown_experiment_rejected() {
    assert!(experiments::run("fig99", Scale::Small).is_none());
}

/// The fakeroute experiment respects the bound: analytic value within the
/// (small-scale, hence wide) confidence interval.
#[test]
fn fakeroute_validation_consistent() {
    let results = experiments::run("fakeroute", Scale::Small).unwrap();
    let json = &results[0].json;
    assert!(
        json["analytic_within_ci"].as_bool().unwrap(),
        "MDA must fail at the predicted rate: {json}"
    );
    let analytic = json["analytic"].as_f64().unwrap();
    assert!((analytic - 0.03125).abs() < 1e-9);
}

/// Fig. 5's qualitative claims: round 0 below round 10, a jump at round 1,
/// monotone probe cost.
#[test]
fn fig5_shape() {
    let results = experiments::run("fig5", Scale::Small).unwrap();
    let rounds = results[0].json["rounds"].as_array().unwrap();
    let recall0 = rounds[0]["recall"].as_f64().unwrap();
    let recall1 = rounds[1]["recall"].as_f64().unwrap();
    let recall_last = rounds.last().unwrap()["recall"].as_f64().unwrap();
    assert!(recall0 < recall_last, "round 0 must trail: {recall0}");
    assert!(recall1 > recall0, "first probing round must jump");
    assert_eq!(recall_last, 1.0);
    let ratios: Vec<f64> = rounds
        .iter()
        .map(|r| r["probe_ratio"].as_f64().unwrap())
        .collect();
    assert!(ratios.windows(2).all(|w| w[1] >= w[0]));
}

/// Table 3's dominant ordering: no-change > single-smaller > the rest.
#[test]
fn table3_ordering() {
    let results = experiments::run("table3", Scale::Small).unwrap();
    let portions = results[0].json["portions"].as_array().unwrap();
    let get = |label: &str| -> f64 {
        portions
            .iter()
            .find(|p| p["case"] == label)
            .map(|p| p["measured"].as_f64().unwrap())
            .unwrap_or(0.0)
    };
    let no_change = get("No change");
    let single = get("Single smaller diamond");
    let multiple = get("Multiple smaller diamonds");
    let one_path = get("One path (no diamond)");
    assert!(no_change > single, "{no_change} vs {single}");
    assert!(single > multiple);
    assert!(single > one_path);
    let total = no_change + single + multiple + one_path;
    assert!((total - 1.0).abs() < 1e-9);
}
