//! The sweep engine's headline invariant, property-tested end to end:
//! a concurrent sweep's per-destination traces are **bit-identical** to
//! running each trace sequentially on its own simulator — for every
//! algorithm (MDA, MDA-Lite, single-flow), across topologies, fault
//! plans, session counts and in-flight budgets.
//!
//! Sequential baseline: per destination, a fresh `SimNetwork` (same seed
//! as the sweep's lane) under a blocking `TransportProber` driver.
//! Sweep: one shared `MultiNetwork` over all lanes, one sans-IO session
//! per destination, rounds interleaved by the `SweepEngine` into
//! cross-destination batches with tag-based reply demultiplexing.

use mlpt::core::engine::{SweepConfig, SweepEngine};
use mlpt::core::prelude::*;
use mlpt::core::session::TraceSession;
use mlpt::sim::{FaultPlan, MultiNetwork, SimNetwork};
use mlpt::topo::{canonical, MultipathTopology};
use proptest::prelude::*;
use std::net::Ipv4Addr;

const SRC: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

/// The canonical topology pool the sweep draws lanes from.
fn base_topology(index: u8) -> MultipathTopology {
    match index % 5 {
        0 => canonical::simplest_diamond(),
        1 => canonical::fig1_unmeshed(),
        2 => canonical::fig1_meshed(),
        3 => canonical::symmetric(),
        _ => canonical::asymmetric(),
    }
}

/// A fault plan drawn from the property inputs.
fn fault_plan(kind: u8) -> FaultPlan {
    match kind % 3 {
        0 => FaultPlan::none(),
        1 => FaultPlan::with_loss(0.1, 0.0),
        _ => FaultPlan::with_loss(0.0, 0.15),
    }
}

/// One destination of the sweep: its translated topology and seeds.
struct Lane {
    topology: MultipathTopology,
    sim_seed: u64,
    trace_seed: u64,
}

fn lanes_for(topo_indices: &[u8], base_seed: u64) -> Vec<Lane> {
    topo_indices
        .iter()
        .enumerate()
        .map(|(i, &t)| Lane {
            // Disjoint /8-style address blocks per lane so "the same"
            // canonical topology can appear behind many destinations.
            topology: base_topology(t).translated(0x0100_0000 * (i as u32 + 1)),
            sim_seed: base_seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9),
            trace_seed: base_seed ^ (i as u64) << 7,
        })
        .collect()
}

fn build_network(lane: &Lane, faults: &FaultPlan) -> SimNetwork {
    SimNetwork::builder(lane.topology.clone())
        .faults(*faults)
        .seed(lane.sim_seed)
        .build()
}

fn make_session(algo: u8, destination: Ipv4Addr, config: TraceConfig) -> Box<dyn TraceSession> {
    match algo % 3 {
        0 => Box::new(MdaSession::new(destination, config)),
        1 => Box::new(MdaLiteSession::new(destination, config)),
        _ => Box::new(SingleFlowSession::new(destination, config, FlowId(7))),
    }
}

fn sequential_trace(
    algo: u8,
    lane: &Lane,
    faults: &FaultPlan,
    retries: u8,
    probe_budget: u64,
) -> (Trace, u64) {
    let net = build_network(lane, faults);
    let mut prober =
        TransportProber::new(net, SRC, lane.topology.destination()).with_retries(retries);
    let config = TraceConfig::new(lane.trace_seed).with_probe_budget(probe_budget);
    let trace = match algo % 3 {
        0 => trace_mda(&mut prober, &config),
        1 => trace_mda_lite(&mut prober, &config),
        _ => trace_single_flow(&mut prober, &config, FlowId(7)),
    };
    let sent = prober.probes_sent();
    (trace, sent)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// sweep(N destinations) == N sequential traces, bit for bit.
    #[test]
    fn sweep_is_bit_identical_to_sequential(
        topo_indices in proptest::collection::vec(0u8..5, 1..7),
        algo in 0u8..3,
        fault_kind in 0u8..3,
        base_seed in any::<u64>(),
        budget_kind in 0u8..3,
        retries in 0u8..2,
        probe_budget_kind in 0u8..3,
    ) {
        let faults = fault_plan(fault_kind);
        // Small probe budgets exercise the state machines' budget-cut
        // transitions (truncated rounds, mid-hunt exhaustion, cut meshing
        // tests); the default leaves them untouched.
        let probe_budget = match probe_budget_kind % 3 {
            0 => 30u64,
            1 => 400,
            _ => 1_000_000, // TraceConfig default: never exhausted here
        };
        let max_in_flight = match budget_kind % 3 {
            0 => 3usize, // splits almost every round across dispatch cycles
            1 => 64,
            _ => 2048,
        };
        let lanes = lanes_for(&topo_indices, base_seed);

        // Concurrent sweep over one shared transport.
        let net = MultiNetwork::new(
            lanes.iter().map(|l| build_network(l, &faults)).collect(),
        )
        .expect("translated lanes have unique destinations");
        let mut engine = SweepEngine::new(net, SRC).with_config(SweepConfig {
            max_in_flight,
            retries,
        });
        for lane in &lanes {
            engine
                .add_session(make_session(
                    algo,
                    lane.topology.destination(),
                    TraceConfig::new(lane.trace_seed).with_probe_budget(probe_budget),
                ))
                .expect("unique destination");
        }
        let sweep_traces = engine.run();
        let stats = *engine.stats();

        // Sequential baseline, destination by destination.
        prop_assert_eq!(sweep_traces.len(), lanes.len());
        let mut total_sequential_probes = 0u64;
        for (lane, sweep_trace) in lanes.iter().zip(&sweep_traces) {
            let (sequential, sent) =
                sequential_trace(algo, lane, &faults, retries, probe_budget);
            total_sequential_probes += sent;
            prop_assert_eq!(
                sweep_trace,
                &sequential,
                "trace towards {} diverged",
                lane.topology.destination()
            );
        }

        // The engine did exactly the sequential loops' wire work, merged
        // into (far fewer) cross-destination dispatches.
        prop_assert_eq!(stats.probes_sent, total_sequential_probes);
        prop_assert_eq!(stats.malformed_replies, 0);
        prop_assert_eq!(stats.mismatched_replies, 0);
        prop_assert!(stats.max_batch <= max_in_flight);
    }
}
