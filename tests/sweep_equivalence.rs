//! The sweep engine's headline invariant, property-tested end to end:
//! a concurrent sweep's per-destination traces are **bit-identical** to
//! running each trace sequentially on its own simulator — for every
//! algorithm (MDA, MDA-Lite, single-flow), across topologies, fault
//! plans (loss *and* ICMP rate limiting), session counts, in-flight
//! budgets (fixed *and* adaptive), admission modes (fixed-table eager,
//! streaming FIFO, cost-aware heaviest-first) and admission orders.
//!
//! Sequential baseline: per destination, a fresh `SimNetwork` (same seed
//! as the sweep's lane) under a blocking `TransportProber` driver.
//! Sweep: one shared `MultiNetwork` over all lanes, one sans-IO session
//! per destination, rounds interleaved by the `SweepEngine` into
//! cross-destination batches with tag-based reply demultiplexing.
//!
//! Streaming admission and the AIMD budget controller only change *when*
//! a lane's probes cross the transport, never their per-lane order; and
//! every lane advances its RNG/clock state only on its own packets (the
//! default inter-cycle gap is 0). So the same invariant holds for every
//! admission schedule — which is exactly what lets the engine reorder
//! and adapt freely at survey scale.

use mlpt::core::engine::{AdaptiveBudget, Admission, SweepConfig, SweepEngine};
use mlpt::core::prelude::*;
use mlpt::core::session::TraceSession;
use mlpt::sim::{FaultPlan, FaultSchedule, FaultSpec, MultiNetwork, SimNetwork};
use mlpt::topo::{canonical, MultipathTopology};
use proptest::prelude::*;
use std::net::Ipv4Addr;

const SRC: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

/// The canonical topology pool the sweep draws lanes from.
fn base_topology(index: u8) -> MultipathTopology {
    match index % 5 {
        0 => canonical::simplest_diamond(),
        1 => canonical::fig1_unmeshed(),
        2 => canonical::fig1_meshed(),
        3 => canonical::symmetric(),
        _ => canonical::asymmetric(),
    }
}

/// A fault plan drawn from the property inputs. Rate limiting is in the
/// pool: with the default inter-cycle gap of 0, a lane's token buckets
/// see only its own packet stream, so outcomes stay schedule-independent.
fn fault_plan(kind: u8) -> FaultPlan {
    match kind % 4 {
        0 => FaultPlan::none(),
        1 => FaultPlan::with_loss(0.1, 0.0),
        2 => FaultPlan::with_loss(0.0, 0.15),
        _ => FaultPlan::with_rate_limit_window(3, 10),
    }
}

/// One destination of the sweep: its translated topology and seeds.
struct Lane {
    topology: MultipathTopology,
    sim_seed: u64,
    trace_seed: u64,
}

fn lanes_for(topo_indices: &[u8], base_seed: u64) -> Vec<Lane> {
    topo_indices
        .iter()
        .enumerate()
        .map(|(i, &t)| Lane {
            // Disjoint /8-style address blocks per lane so "the same"
            // canonical topology can appear behind many destinations.
            topology: base_topology(t).translated(0x0100_0000 * (i as u32 + 1)),
            sim_seed: base_seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9),
            trace_seed: base_seed ^ (i as u64) << 7,
        })
        .collect()
}

fn build_network(lane: &Lane, faults: &FaultPlan) -> SimNetwork {
    SimNetwork::builder(lane.topology.clone())
        .faults(*faults)
        .seed(lane.sim_seed)
        .build()
}

fn make_session(algo: u8, destination: Ipv4Addr, config: TraceConfig) -> Box<dyn TraceSession> {
    match algo % 3 {
        0 => Box::new(MdaSession::new(destination, config)),
        1 => Box::new(MdaLiteSession::new(destination, config)),
        _ => Box::new(SingleFlowSession::new(destination, config, FlowId(7))),
    }
}

fn sequential_trace(
    algo: u8,
    lane: &Lane,
    faults: &FaultPlan,
    retries: u8,
    probe_budget: u64,
) -> (Trace, u64) {
    let net = build_network(lane, faults);
    let mut prober =
        TransportProber::new(net, SRC, lane.topology.destination()).with_retries(retries);
    let config = TraceConfig::new(lane.trace_seed).with_probe_budget(probe_budget);
    let trace = match algo % 3 {
        0 => trace_mda(&mut prober, &config),
        1 => trace_mda_lite(&mut prober, &config),
        _ => trace_single_flow(&mut prober, &config, FlowId(7)),
    };
    let sent = prober.probes_sent();
    (trace, sent)
}

/// Runs one sweep over the lanes, with sessions fed to the engine in
/// `order` (a permutation of lane indices); returns the traces mapped
/// back to lane order plus the stats.
#[allow(clippy::too_many_arguments)]
fn sweep(
    lanes: &[Lane],
    order: &[usize],
    faults: &FaultPlan,
    algo: u8,
    probe_budget: u64,
    retries: u8,
    max_in_flight: usize,
    admission: Admission,
    adaptive: Option<AdaptiveBudget>,
) -> (Vec<Trace>, mlpt::core::SweepStats) {
    let net = MultiNetwork::new(lanes.iter().map(|l| build_network(l, faults)).collect())
        .expect("translated lanes have unique destinations");
    let mut engine = SweepEngine::new(net, SRC).with_config(SweepConfig {
        max_in_flight,
        retries,
        admission,
        adaptive,
        ..SweepConfig::default()
    });
    let sessions = order.iter().map(|&lane_idx| {
        make_session(
            algo,
            lanes[lane_idx].topology.destination(),
            TraceConfig::new(lanes[lane_idx].trace_seed).with_probe_budget(probe_budget),
        )
    });
    let in_order = engine.run_stream(sessions);
    assert_eq!(in_order.len(), lanes.len());
    // Undo the admission permutation: trace i of the stream belongs to
    // lane order[i].
    let mut by_lane: Vec<Option<Trace>> = (0..lanes.len()).map(|_| None).collect();
    for (stream_idx, trace) in in_order.into_iter().enumerate() {
        by_lane[order[stream_idx]] = Some(trace);
    }
    (
        by_lane
            .into_iter()
            .map(|t| t.expect("every lane traced"))
            .collect(),
        *engine.stats(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// sweep(N destinations) == N sequential traces, bit for bit —
    /// whatever the admission mode, admission order or budget schedule.
    #[test]
    fn sweep_is_bit_identical_to_sequential(
        topo_indices in proptest::collection::vec(0u8..5, 1..7),
        algo in 0u8..3,
        fault_kind in 0u8..4,
        base_seed in any::<u64>(),
        budget_kind in 0u8..3,
        retries in 0u8..2,
        probe_budget_kind in 0u8..3,
        adaptive_on in any::<bool>(),
        order_seed in any::<u64>(),
    ) {
        let faults = fault_plan(fault_kind);
        // Small probe budgets exercise the state machines' budget-cut
        // transitions (truncated rounds, mid-hunt exhaustion, cut meshing
        // tests); the default leaves them untouched.
        let probe_budget = match probe_budget_kind % 3 {
            0 => 30u64,
            1 => 400,
            _ => 1_000_000, // TraceConfig default: never exhausted here
        };
        let max_in_flight = match budget_kind % 3 {
            0 => 3usize, // splits almost every round across dispatch cycles
            1 => 64,
            _ => 2048,
        };
        let adaptive = adaptive_on.then(|| AdaptiveBudget {
            min_in_flight: 2,
            ..AdaptiveBudget::default()
        });
        let lanes = lanes_for(&topo_indices, base_seed);

        // An arbitrary admission order: rotate + optionally reverse.
        let mut order: Vec<usize> = (0..lanes.len()).collect();
        order.rotate_left((order_seed as usize) % lanes.len().max(1));
        if order_seed % 2 == 1 {
            order.reverse();
        }

        // Streaming sweep in the permuted admission order.
        let (streaming, stats) = sweep(
            &lanes, &order, &faults, algo, probe_budget, retries,
            max_in_flight, Admission::Streaming, adaptive,
        );
        // Fixed-table (eager) sweep in lane order: the pre-streaming
        // engine's behaviour.
        let identity: Vec<usize> = (0..lanes.len()).collect();
        let (eager, eager_stats) = sweep(
            &lanes, &identity, &faults, algo, probe_budget, retries,
            max_in_flight, Admission::Eager, None,
        );
        // Cost-aware sweep in the permuted order: the engine reorders by
        // predicted cost internally, which must stay pure scheduling.
        let (cost_aware, cost_stats) = sweep(
            &lanes, &order, &faults, algo, probe_budget, retries,
            max_in_flight, Admission::CostAware, adaptive,
        );

        // Sequential baseline, destination by destination.
        let mut total_sequential_probes = 0u64;
        for (((lane, streamed), eagered), costed) in
            lanes.iter().zip(&streaming).zip(&eager).zip(&cost_aware)
        {
            let (sequential, sent) =
                sequential_trace(algo, lane, &faults, retries, probe_budget);
            total_sequential_probes += sent;
            prop_assert_eq!(
                streamed,
                &sequential,
                "streaming trace towards {} diverged",
                lane.topology.destination()
            );
            prop_assert_eq!(
                eagered,
                &sequential,
                "fixed-table trace towards {} diverged",
                lane.topology.destination()
            );
            prop_assert_eq!(
                costed,
                &sequential,
                "cost-aware trace towards {} diverged",
                lane.topology.destination()
            );
        }

        // All engines did exactly the sequential loops' wire work,
        // merged into (far fewer) cross-destination dispatches.
        prop_assert_eq!(stats.probes_sent, total_sequential_probes);
        prop_assert_eq!(eager_stats.probes_sent, total_sequential_probes);
        prop_assert_eq!(cost_stats.probes_sent, total_sequential_probes);
        prop_assert_eq!(cost_stats.sessions_completed, lanes.len() as u64);
        prop_assert_eq!(stats.malformed_replies, 0);
        prop_assert_eq!(stats.mismatched_replies, 0);
        prop_assert!(stats.max_batch <= max_in_flight);
        prop_assert_eq!(stats.sessions_admitted, lanes.len() as u64);
        prop_assert_eq!(stats.sessions_completed, lanes.len() as u64);
    }
}

/// One impairment spec drawn from the property inputs. The vocabulary
/// covers everything [`FaultSpec`] can express: loss on either
/// direction, reply latency, mid-path blackholes and ICMP rate limits.
fn arbitrary_spec(kind: u8, magnitude: u8) -> FaultSpec {
    let m = f64::from(magnitude % 10) / 10.0;
    match kind % 6 {
        0 => FaultSpec::none(),
        1 => FaultPlan::with_loss(m, 0.0).into(),
        2 => FaultPlan::with_loss(0.0, m).into(),
        3 => FaultSpec::none().with_latency(u64::from(magnitude % 16)),
        4 => FaultSpec::none().with_blackhole(magnitude % 4 + 1),
        _ => FaultPlan::with_rate_limit(u32::from(magnitude % 5) + 1, 0.1).into(),
    }
}

/// An arbitrary stepped schedule: clean at tick 0, then the generated
/// steps at strictly increasing ticks.
fn arbitrary_schedule(steps: &[(u8, u8, u8)]) -> FaultSchedule {
    let mut schedule = FaultSchedule::none();
    let mut tick = 0u64;
    for &(delta, kind, magnitude) in steps {
        tick += u64::from(delta) + 1;
        schedule = schedule.step(tick, arbitrary_spec(kind, magnitude));
    }
    schedule
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Graceful degradation is still pure scheduling: under *any*
    /// generated fault schedule — including ones that blackhole the
    /// path outright — every admission mode terminates, the three
    /// modes' traces agree bit for bit, a rerun from the same seeds is
    /// bit-identical, and the retry-wave accounting partitions
    /// `probes_sent` exactly.
    ///
    /// (No sequential baseline here on purpose: the blocking
    /// `TransportProber` cannot express deadlines, so under latency or
    /// blackholes it legitimately observes a different world than the
    /// deadline-driven engine.)
    #[test]
    fn degraded_sweeps_terminate_and_agree(
        topo_indices in proptest::collection::vec(0u8..5, 1..5),
        steps in proptest::collection::vec((0u8..40, 0u8..6, any::<u8>()), 0..5),
        algo in 0u8..3,
        base_seed in any::<u64>(),
        retries in 0u8..3,
        stall_rounds in 1u32..6,
        budget_kind in 0u8..3,
    ) {
        let schedule = arbitrary_schedule(&steps);
        let lanes = lanes_for(&topo_indices, base_seed);
        let max_in_flight = match budget_kind % 3 {
            0 => 3usize,
            1 => 64,
            _ => 2048,
        };
        let run = |admission: Admission| -> (Vec<Trace>, mlpt::core::SweepStats) {
            let net = MultiNetwork::new(
                lanes
                    .iter()
                    .map(|l| {
                        SimNetwork::builder(l.topology.clone())
                            .fault_schedule(schedule.clone())
                            .seed(l.sim_seed)
                            .build()
                    })
                    .collect(),
            )
            .expect("translated lanes have unique destinations");
            let mut engine = SweepEngine::new(net, SRC).with_config(SweepConfig {
                max_in_flight,
                retries,
                stall_rounds,
                admission,
                ..SweepConfig::default()
            });
            let sessions: Vec<Box<dyn TraceSession>> = lanes
                .iter()
                .map(|l| {
                    make_session(
                        algo,
                        l.topology.destination(),
                        TraceConfig::new(l.trace_seed),
                    )
                })
                .collect();
            let traces = engine.run_stream(sessions);
            (traces, *engine.stats())
        };

        // Terminates under every admission mode (reaching this line at
        // all is the liveness claim; the watchdog is what guarantees it
        // when the schedule goes dark).
        let (eager, eager_stats) = run(Admission::Eager);
        let (streaming, streaming_stats) = run(Admission::Streaming);
        let (cost_aware, cost_stats) = run(Admission::CostAware);

        // Bit-for-bit agreement across admission modes.
        prop_assert_eq!(&eager, &streaming);
        prop_assert_eq!(&eager, &cost_aware);

        // Reproducible: the same seeds replay to the same sweep.
        let (replay, replay_stats) = run(Admission::Streaming);
        prop_assert_eq!(&streaming, &replay);
        prop_assert_eq!(streaming_stats.probes_sent, replay_stats.probes_sent);
        prop_assert_eq!(
            streaming_stats.sessions_partial,
            replay_stats.sessions_partial
        );

        // The retry-wave accounting invariant partitions probes_sent.
        for stats in [&eager_stats, &streaming_stats, &cost_stats] {
            prop_assert_eq!(
                stats.probes_timed_out
                    + stats.replies_delivered
                    + stats.malformed_replies
                    + stats.mismatched_replies,
                stats.probes_sent
            );
            prop_assert_eq!(stats.sessions_admitted, lanes.len() as u64);
            prop_assert_eq!(stats.sessions_completed, lanes.len() as u64);
        }
        prop_assert_eq!(eager_stats.sessions_partial, cost_stats.sessions_partial);
    }
}

// ---------------------------------------------------------------------
// Route changes mid-sweep: the topology itself mutates while sessions
// are probing. The audit/recovery protocol is session-local state, so
// detection, classification, suffix re-traces and budget-exhaustion
// partials must all be pure protocol — identical across every admission
// mode and replayable from the seeds.
// ---------------------------------------------------------------------

use mlpt::sim::{TopoMutation, TopologySchedule};

/// One route mutation drawn from the property inputs. Positions are
/// drawn small so most mutations land on real hops; ones the current
/// shape cannot honour are rejected by the simulator (counted, not
/// applied), which is itself part of the property.
fn arbitrary_mutation(kind: u8, x: u8, y: u8) -> TopoMutation {
    let hop = usize::from(x % 4);
    match kind % 5 {
        0 => TopoMutation::SwapSuccessors {
            hop,
            a: usize::from(y % 3),
            b: usize::from(y % 3) + 1,
        },
        1 => TopoMutation::AddBranch { hop },
        2 => TopoMutation::RemoveBranch {
            hop,
            index: usize::from(y % 4),
        },
        3 => TopoMutation::InsertHop { at: hop + 1 },
        _ => TopoMutation::RemoveHop { at: hop + 1 },
    }
}

/// An arbitrary mutation timeline at strictly increasing positive ticks.
fn arbitrary_topology_schedule(steps: &[(u8, u8, u8, u8)]) -> TopologySchedule {
    let mut schedule = TopologySchedule::none();
    let mut tick = 0u64;
    for &(delta, kind, x, y) in steps {
        tick += u64::from(delta) + 1;
        schedule = schedule.step(tick, arbitrary_mutation(kind, x, y));
    }
    schedule
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Under *any* generated mutation timeline — branches appearing and
    /// vanishing, hops inserted and spliced out, successor sets flapping
    /// — every admission mode terminates, all four modes' traces and
    /// robustness counters agree bit for bit, a rerun from the same
    /// seeds replays exactly, and the retry-wave accounting still
    /// partitions `probes_sent`. Route-change recovery is protocol,
    /// never scheduling.
    #[test]
    fn route_changed_sweeps_terminate_and_agree(
        topo_indices in proptest::collection::vec(0u8..5, 1..5),
        steps in proptest::collection::vec(
            (0u8..80, 0u8..5, any::<u8>(), any::<u8>()), 0..4),
        algo in 0u8..3,
        base_seed in any::<u64>(),
        stall_rounds in 2u32..6,
        budget_kind in 0u8..3,
    ) {
        let schedule = arbitrary_topology_schedule(&steps);
        let lanes = lanes_for(&topo_indices, base_seed);
        let max_in_flight = match budget_kind % 3 {
            0 => 3usize,
            1 => 64,
            _ => 2048,
        };
        let run = |admission: Admission| -> (Vec<Trace>, SweepStats) {
            let net = MultiNetwork::new(
                lanes
                    .iter()
                    .map(|l| {
                        SimNetwork::builder(l.topology.clone())
                            .topology_schedule(schedule.clone())
                            .seed(l.sim_seed)
                            .build()
                    })
                    .collect(),
            )
            .expect("translated lanes have unique destinations");
            let mut engine = SweepEngine::new(net, SRC).with_config(SweepConfig {
                max_in_flight,
                stall_rounds,
                admission,
                ..SweepConfig::default()
            });
            let sessions: Vec<Box<dyn TraceSession>> = lanes
                .iter()
                .map(|l| {
                    // Tight hunts keep post-mutation flow searches (for
                    // branches that no longer exist) from dominating the
                    // runtime; the audit is armed with the default budget.
                    let config = TraceConfig {
                        node_control_attempts: 300,
                        ..TraceConfig::new(l.trace_seed)
                            .with_reprobe(ReprobeBudget::default())
                    };
                    make_session(algo, l.topology.destination(), config)
                })
                .collect();
            let traces = engine.run_stream(sessions);
            (traces, *engine.stats())
        };

        // Terminates under every admission mode (reaching this line is
        // the liveness claim: bounded audits, bounded recoveries, and
        // flow hunts that survive a route that keeps changing).
        let (eager, eager_stats) = run(Admission::Eager);
        let (streaming, streaming_stats) = run(Admission::Streaming);
        let (cost_aware, cost_stats) = run(Admission::CostAware);
        let (windowed, windowed_stats) = run(Admission::CostAwareWindowed(2));

        // Bit-for-bit agreement across all four admission modes.
        prop_assert_eq!(&eager, &streaming);
        prop_assert_eq!(&eager, &cost_aware);
        prop_assert_eq!(&eager, &windowed);

        // Replay from the seeds is exact, counters included.
        let (replay, replay_stats) = run(Admission::Streaming);
        prop_assert_eq!(&streaming, &replay);
        prop_assert_eq!(streaming_stats, replay_stats);

        for stats in [&eager_stats, &streaming_stats, &cost_stats, &windowed_stats] {
            // Recovery decisions are protocol state: every mode sees the
            // same artifacts, recoveries and honest partials.
            prop_assert_eq!(stats.artifacts_detected, eager_stats.artifacts_detected);
            prop_assert_eq!(stats.route_recoveries, eager_stats.route_recoveries);
            prop_assert_eq!(stats.reprobes_sent, eager_stats.reprobes_sent);
            prop_assert_eq!(
                stats.route_changed_partials,
                eager_stats.route_changed_partials
            );
            prop_assert_eq!(stats.sessions_admitted, lanes.len() as u64);
            prop_assert_eq!(stats.sessions_completed, lanes.len() as u64);
            // The retry-wave accounting invariant survives mutation.
            prop_assert_eq!(
                stats.probes_timed_out
                    + stats.replies_delivered
                    + stats.malformed_replies
                    + stats.mismatched_replies,
                stats.probes_sent
            );
        }

        // Every session that spent its recovery budget owns an honest
        // RouteChanged partial in its trace, and vice versa.
        let route_changed_traces = streaming
            .iter()
            .filter(|t| {
                matches!(
                    t.outcome,
                    TraceOutcome::Partial {
                        reason: PartialReason::RouteChanged { .. }
                    }
                )
            })
            .count() as u64;
        prop_assert_eq!(route_changed_traces, streaming_stats.route_changed_partials);
    }
}

// ---------------------------------------------------------------------
// Shared stop sets (Doubletree): cross-destination redundancy
// elimination must be pure *protocol* — the union topology a sweep
// discovers (probed hops plus the prefix reconstructable from the
// shared set) is exactly what probing every destination in full would
// have found, bit-identical across every admission mode, and
// replayable from the seeds.
// ---------------------------------------------------------------------

use mlpt::core::engine::SweepStats;
use mlpt::core::StopSnapshot;
use mlpt::topo::graph::addr;

/// The per-destination path as `(TTL, interface)` pairs, canonically
/// ordered (discovery order within a hop is presentation, not topology).
fn path_of(trace: &Trace) -> Vec<(u8, Ipv4Addr)> {
    let mut pairs: Vec<(u8, Ipv4Addr)> = (1..=trace.discovery.max_observed_ttl())
        .flat_map(|ttl| {
            trace
                .discovery
                .vertices_at(ttl)
                .iter()
                .map(move |v| (ttl, *v))
        })
        .collect();
    pairs.sort_unstable();
    pairs
}

/// The classic path a stop-set trace testifies to: its probed hops plus
/// the elided prefix reconstructed from the final shared set.
fn reconstructed_path(trace: &Trace, snapshot: &StopSnapshot) -> Vec<(u8, Ipv4Addr)> {
    let probed = path_of(trace);
    let Some(&(first_ttl, first_iface)) = probed.first() else {
        return probed;
    };
    let mut full: Vec<(u8, Ipv4Addr)> = snapshot
        .reconstruct_prefix(first_ttl, first_iface)
        .into_iter()
        .chain(probed)
        .collect();
    full.sort_unstable();
    full.dedup();
    full
}

/// Runs a Doubletree-family sweep: one session per lane in lane order,
/// over per-lane networks built by `net_of`.
fn stop_sweep(
    topologies: &[MultipathTopology],
    net_of: &dyn Fn(usize) -> SimNetwork,
    trace_seed_of: &dyn Fn(usize) -> u64,
    algo: u8,
    admission: Admission,
    max_in_flight: usize,
    stop_set: Option<StopSetConfig>,
) -> (Vec<Trace>, SweepStats, Option<StopSnapshot>) {
    let net = MultiNetwork::new((0..topologies.len()).map(net_of).collect())
        .expect("per-lane destinations are unique");
    let mut engine = SweepEngine::new(net, SRC).with_config(SweepConfig {
        max_in_flight,
        admission,
        stop_set,
        ..SweepConfig::default()
    });
    let sessions: Vec<Box<dyn TraceSession>> = topologies
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let config = TraceConfig::new(trace_seed_of(i));
            match algo % 2 {
                0 => Box::new(SingleFlowSession::new(t.destination(), config, FlowId(7)))
                    as Box<dyn TraceSession>,
                _ => Box::new(MdaLiteSession::new(t.destination(), config)),
            }
        })
        .collect();
    let traces = engine.run_stream(sessions);
    (traces, *engine.stats(), engine.stop_snapshot().cloned())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A stop-set sweep over a shared-prefix family discovers the same
    /// union topology as the sequential-shaped baseline (each
    /// destination's prefix is reconstructable from the shared set),
    /// stays bit-identical across all four admission modes, and
    /// replays exactly from the seeds. For the single-flow tracer the
    /// probe ledger is exact: sent + elided equals the classic sweep's
    /// wire count.
    #[test]
    fn stop_set_sweep_preserves_union_topology(
        prefix_len in 4usize..16,
        suffix_len in 0usize..4,
        lane_count in 2usize..10,
        commit_width in 1usize..6,
        algo in 0u8..2,
        fixed_start_raw in 0u8..12,
        budget_kind in 0u8..3,
        window in 1usize..5,
        base_seed in any::<u64>(),
    ) {
        let topologies: Vec<MultipathTopology> = (0..lane_count)
            .map(|i| canonical::shared_prefix_lane(prefix_len, suffix_len, i))
            .collect();
        let net_of = |i: usize| -> SimNetwork {
            SimNetwork::new(
                topologies[i].clone(),
                base_seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9),
            )
        };
        let trace_seed_of = |i: usize| base_seed ^ ((i as u64) << 7);
        let max_in_flight = match budget_kind % 3 {
            0 => 3usize,
            1 => 64,
            _ => 2048,
        };
        // Raw values below 2 mean "adaptive start"; the rest pin the
        // start TTL (possibly past the prefix, exercising backward
        // probing through unshared suffix hops).
        let fixed_start = (fixed_start_raw >= 2).then_some(fixed_start_raw);
        let stop_cfg = StopSetConfig {
            commit_width,
            adaptive_start: fixed_start.is_none(),
            start_ttl: fixed_start.unwrap_or(8),
        };

        let (classic, classic_stats, no_snap) = stop_sweep(
            &topologies, &net_of, &trace_seed_of, algo,
            Admission::Streaming, max_in_flight, None,
        );
        prop_assert!(no_snap.is_none());

        let (stopped, stats, snap) = stop_sweep(
            &topologies, &net_of, &trace_seed_of, algo,
            Admission::Streaming, max_in_flight, Some(stop_cfg),
        );
        let snap = snap.expect("stop-set run publishes a snapshot");

        // Determinism rule 5: stop-set contents are protocol state, so
        // every admission mode replays the identical sweep.
        for admission in [
            Admission::Eager,
            Admission::CostAware,
            Admission::CostAwareWindowed(window),
            Admission::Streaming, // the replay-from-seed case
        ] {
            let (again, again_stats, again_snap) = stop_sweep(
                &topologies, &net_of, &trace_seed_of, algo,
                admission, max_in_flight, Some(stop_cfg),
            );
            prop_assert_eq!(&again, &stopped, "admission {:?} diverged", admission);
            prop_assert_eq!(again_stats.probes_sent, stats.probes_sent);
            prop_assert_eq!(again_stats.probes_elided, stats.probes_elided);
            prop_assert_eq!(again_stats.stop_set_hits, stats.stop_set_hits);
            let again_snap = again_snap.expect("snapshot present");
            prop_assert_eq!(again_snap.len(), snap.len());
            prop_assert_eq!(again_snap.start_ttl(), snap.start_ttl());
        }

        // Union-topology equivalence: probed hops + reconstructed
        // prefix per destination equal the classic per-destination path.
        for (classic_trace, stopped_trace) in classic.iter().zip(&stopped) {
            prop_assert!(stopped_trace.reached_destination);
            prop_assert_eq!(
                reconstructed_path(stopped_trace, &snap),
                path_of(classic_trace),
                "destination {} lost or gained topology under the stop set",
                classic_trace.destination
            );
        }

        // The single-flow probe ledger is exact on a lossless network.
        if algo % 2 == 0 {
            prop_assert_eq!(
                stats.probes_sent + stats.probes_elided,
                classic_stats.probes_sent
            );
            if lane_count > commit_width {
                prop_assert!(stats.stop_set_hits > 0, "later generations must stop early");
            }
        }
    }

    /// Fault injection: a lane blackholed from some TTL onward (its
    /// session never reaches the destination) cannot poison the shared
    /// set — every clean lane still reconstructs exactly the path it
    /// would have probed in full, because contributions only ever carry
    /// firsthand observations.
    #[test]
    fn blackholed_lane_cannot_poison_stop_set(
        prefix_len in 6usize..16,
        lane_count in 3usize..8,
        blackhole_ttl in 2u8..8,
        commit_width in 1usize..3,
        base_seed in any::<u64>(),
    ) {
        let topologies: Vec<MultipathTopology> = (0..lane_count)
            .map(|i| canonical::shared_prefix_lane(prefix_len, 2, i))
            .collect();
        let net_of = |i: usize| -> SimNetwork {
            let mut builder = SimNetwork::builder(topologies[i].clone())
                .seed(base_seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9));
            if i == 0 {
                builder = builder.fault_schedule(FaultSchedule::constant(
                    FaultSpec::none().with_blackhole(blackhole_ttl),
                ));
            }
            builder.build()
        };
        let trace_seed_of = |i: usize| base_seed ^ ((i as u64) << 9);
        let stop_cfg = StopSetConfig { commit_width, ..StopSetConfig::default() };

        let (classic, _, _) = stop_sweep(
            &topologies, &net_of, &trace_seed_of, 0,
            Admission::Streaming, 64, None,
        );
        let (stopped, stats, snap) = stop_sweep(
            &topologies, &net_of, &trace_seed_of, 0,
            Admission::Streaming, 64, Some(stop_cfg),
        );
        let snap = snap.expect("snapshot present");

        // The blackholed lane fails the same way with or without the
        // set: probes from `blackhole_ttl` on go dark.
        prop_assert!(!stopped[0].reached_destination);
        // Every clean lane still reaches and still testifies to its
        // full classic path.
        for (i, (classic_trace, stopped_trace)) in
            classic.iter().zip(&stopped).enumerate().skip(1)
        {
            prop_assert!(stopped_trace.reached_destination, "clean lane {i} must finish");
            prop_assert_eq!(
                reconstructed_path(stopped_trace, &snap),
                path_of(classic_trace),
                "clean lane {} was poisoned by the blackholed contributor",
                i
            );
        }
        // Honesty invariant: the stop-set sweep may know *less* than the
        // classic union (the blackholed lane reaches fewer hops), never
        // more — no observation exists that a classic trace wouldn't see.
        let legit: std::collections::BTreeSet<(u8, Ipv4Addr)> =
            classic.iter().flat_map(path_of).collect();
        for (ttl, iface) in stopped.iter().flat_map(path_of) {
            prop_assert!(
                legit.contains(&(ttl, iface)),
                "stop-set sweep observed ({ttl}, {iface}) that no classic trace saw"
            );
        }
        // Retry accounting still partitions exactly under faults.
        prop_assert_eq!(
            stats.probes_timed_out
                + stats.replies_delivered
                + stats.malformed_replies
                + stats.mismatched_replies,
            stats.probes_sent
        );
    }
}

// ---------------------------------------------------------------------
// Sharded engine: the destination space partitioned across N engine
// shards on worker threads must stay pure *scheduling* — bit-identical
// to the single engine for any shard count, any admission mode, any
// fault or route-mutation schedule, with the stop-set ledger and the
// 4-bucket retry accounting exact per shard and merged, and replay
// from the seeds exact down to every counter.
// ---------------------------------------------------------------------

/// Runs one sweep over per-lane networks under both schedules, through
/// a [`ShardedSweepEngine`] with `shards` partitions.
fn sharded_run(
    lanes: &[Lane],
    faults: &FaultSchedule,
    topo: &TopologySchedule,
    algo: u8,
    admission: Admission,
    shards: usize,
    stop_set: Option<StopSetConfig>,
) -> (
    Vec<Trace>,
    SweepStats,
    Vec<SweepStats>,
    Option<StopSnapshot>,
) {
    let net = MultiNetwork::new(
        lanes
            .iter()
            .map(|l| {
                SimNetwork::builder(l.topology.clone())
                    .fault_schedule(faults.clone())
                    .topology_schedule(topo.clone())
                    .seed(l.sim_seed)
                    .build()
            })
            .collect(),
    )
    .expect("translated lanes have unique destinations");
    let parts = net.split_by(shards, |d| shard_of(d, shards));
    let mut engine = ShardedSweepEngine::new(parts, SRC).with_config(SweepConfig {
        max_in_flight: 16,
        stall_rounds: 3,
        admission,
        stop_set,
        ..SweepConfig::default()
    });
    let sessions: Vec<Box<dyn TraceSession>> = lanes
        .iter()
        .map(|l| {
            // Same tight hunts as the route-change property: mutations
            // can orphan flow searches, the audit runs on the default
            // budget.
            let config = TraceConfig {
                node_control_attempts: 300,
                ..TraceConfig::new(l.trace_seed).with_reprobe(ReprobeBudget::default())
            };
            make_session(algo, l.topology.destination(), config)
        })
        .collect();
    let traces = engine.run_stream(sessions);
    let per_shard: Vec<SweepStats> = engine.shard_stats().into_iter().copied().collect();
    let snapshot = engine.stop_snapshot().cloned();
    (traces, *engine.stats(), per_shard, snapshot)
}

/// Same sweep on the plain single [`SweepEngine`] — the baseline every
/// shard count must reproduce bit for bit.
fn plain_run(
    lanes: &[Lane],
    faults: &FaultSchedule,
    topo: &TopologySchedule,
    algo: u8,
    stop_set: Option<StopSetConfig>,
) -> (Vec<Trace>, SweepStats, Option<StopSnapshot>) {
    let net = MultiNetwork::new(
        lanes
            .iter()
            .map(|l| {
                SimNetwork::builder(l.topology.clone())
                    .fault_schedule(faults.clone())
                    .topology_schedule(topo.clone())
                    .seed(l.sim_seed)
                    .build()
            })
            .collect(),
    )
    .expect("translated lanes have unique destinations");
    let mut engine = SweepEngine::new(net, SRC).with_config(SweepConfig {
        max_in_flight: 16,
        stall_rounds: 3,
        admission: Admission::Streaming,
        stop_set,
        ..SweepConfig::default()
    });
    let sessions: Vec<Box<dyn TraceSession>> = lanes
        .iter()
        .map(|l| {
            let config = TraceConfig {
                node_control_attempts: 300,
                ..TraceConfig::new(l.trace_seed).with_reprobe(ReprobeBudget::default())
            };
            make_session(algo, l.topology.destination(), config)
        })
        .collect();
    let traces = engine.run_stream(sessions);
    let snapshot = engine.stop_snapshot().cloned();
    (traces, *engine.stats(), snapshot)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Sharding is pure scheduling under *any* generated fault schedule
    /// and route-mutation timeline: every shard count and every
    /// admission mode reproduces the plain engine's traces bit for bit,
    /// protocol-level counters (probes, replies, timeouts, elisions,
    /// sessions) are identical, the 4-bucket retry accounting
    /// partitions `probes_sent` exactly per shard *and* merged, and a
    /// replay from the seeds matches down to every counter — including
    /// the scheduling-only ones.
    #[test]
    fn sharded_sweeps_match_single_engine_under_schedules(
        topo_indices in proptest::collection::vec(0u8..5, 2..6),
        fault_steps in proptest::collection::vec((0u8..40, 0u8..6, any::<u8>()), 0..4),
        topo_steps in proptest::collection::vec(
            (0u8..80, 0u8..5, any::<u8>(), any::<u8>()), 0..3),
        algo in 0u8..3,
        base_seed in any::<u64>(),
        shards in 2usize..5,
        use_stop in any::<bool>(),
        commit_width in 1usize..5,
    ) {
        let faults = arbitrary_schedule(&fault_steps);
        let topo = arbitrary_topology_schedule(&topo_steps);
        let lanes = lanes_for(&topo_indices, base_seed);
        let stop_cfg = use_stop.then_some(StopSetConfig {
            commit_width,
            ..StopSetConfig::default()
        });

        let (baseline, baseline_stats, baseline_snap) =
            plain_run(&lanes, &faults, &topo, algo, stop_cfg);

        for admission in [
            Admission::Eager,
            Admission::Streaming,
            Admission::CostAware,
            Admission::CostAwareWindowed(2),
        ] {
            // A 1-shard engine and the drawn N-shard split must both
            // reproduce the baseline.
            for shard_count in [1usize, shards] {
                let (traces, stats, per_shard, snap) = sharded_run(
                    &lanes, &faults, &topo, algo, admission, shard_count, stop_cfg,
                );
                prop_assert_eq!(
                    &traces, &baseline,
                    "{:?} at {} shards diverged from the plain engine",
                    admission, shard_count
                );
                prop_assert_eq!(per_shard.len(), shard_count);

                // Protocol-level counters are shard-invariant.
                prop_assert_eq!(stats.probes_sent, baseline_stats.probes_sent);
                prop_assert_eq!(stats.replies_delivered, baseline_stats.replies_delivered);
                prop_assert_eq!(stats.probes_timed_out, baseline_stats.probes_timed_out);
                prop_assert_eq!(stats.probes_elided, baseline_stats.probes_elided);
                prop_assert_eq!(stats.stop_set_hits, baseline_stats.stop_set_hits);
                prop_assert_eq!(stats.retries_elided, baseline_stats.retries_elided);
                prop_assert_eq!(stats.sessions_admitted, baseline_stats.sessions_admitted);
                prop_assert_eq!(stats.sessions_completed, baseline_stats.sessions_completed);
                prop_assert_eq!(stats.sessions_partial, baseline_stats.sessions_partial);
                prop_assert_eq!(stats.artifacts_detected, baseline_stats.artifacts_detected);
                prop_assert_eq!(stats.route_recoveries, baseline_stats.route_recoveries);

                // The shared set converges to the same contents.
                match (&snap, &baseline_snap) {
                    (Some(s), Some(b)) => {
                        prop_assert_eq!(s.len(), b.len());
                        prop_assert_eq!(s.start_ttl(), b.start_ttl());
                    }
                    (None, None) => {}
                    _ => prop_assert!(false, "snapshot presence diverged"),
                }

                // The 4-bucket accounting partitions probes_sent per
                // shard and merged, and the shards sum to the merge.
                let mut summed = 0u64;
                for shard in &per_shard {
                    prop_assert_eq!(
                        shard.probes_timed_out
                            + shard.replies_delivered
                            + shard.malformed_replies
                            + shard.mismatched_replies,
                        shard.probes_sent
                    );
                    summed += shard.probes_sent;
                }
                prop_assert_eq!(summed, stats.probes_sent);
                prop_assert_eq!(
                    stats.probes_timed_out
                        + stats.replies_delivered
                        + stats.malformed_replies
                        + stats.mismatched_replies,
                    stats.probes_sent
                );
            }
        }

        // Replay from the seeds is exact down to every counter —
        // scheduling ones (dispatch cycles, barrier stalls) included.
        let (first, first_stats, first_shards, _) = sharded_run(
            &lanes, &faults, &topo, algo, Admission::Streaming, shards, stop_cfg,
        );
        let (again, again_stats, again_shards, _) = sharded_run(
            &lanes, &faults, &topo, algo, Admission::Streaming, shards, stop_cfg,
        );
        prop_assert_eq!(&first, &again);
        prop_assert_eq!(first_stats, again_stats);
        prop_assert_eq!(first_shards, again_shards);
    }
}

/// Runs a Doubletree-family sweep through a [`ShardedSweepEngine`]:
/// the sharded analogue of [`stop_sweep`].
fn sharded_stop_sweep(
    topologies: &[MultipathTopology],
    net_of: &dyn Fn(usize) -> SimNetwork,
    trace_seed_of: &dyn Fn(usize) -> u64,
    shards: usize,
    stop_set: Option<StopSetConfig>,
) -> (
    Vec<Trace>,
    SweepStats,
    Vec<SweepStats>,
    Option<StopSnapshot>,
) {
    let net = MultiNetwork::new((0..topologies.len()).map(net_of).collect())
        .expect("per-lane destinations are unique");
    let parts = net.split_by(shards, |d| shard_of(d, shards));
    let mut engine = ShardedSweepEngine::new(parts, SRC).with_config(SweepConfig {
        max_in_flight: 64,
        admission: Admission::Streaming,
        stop_set,
        ..SweepConfig::default()
    });
    let sessions: Vec<Box<dyn TraceSession>> = topologies
        .iter()
        .enumerate()
        .map(|(i, t)| {
            Box::new(SingleFlowSession::new(
                t.destination(),
                TraceConfig::new(trace_seed_of(i)),
                FlowId(7),
            )) as Box<dyn TraceSession>
        })
        .collect();
    let traces = engine.run_stream(sessions);
    let per_shard: Vec<SweepStats> = engine.shard_stats().into_iter().copied().collect();
    let snapshot = engine.stop_snapshot().cloned();
    (traces, *engine.stats(), per_shard, snapshot)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The stop-set probe ledger survives sharding exactly: for the
    /// single-flow tracer over a lossless shared-prefix family, a
    /// sharded stop-set sweep sends and elides *exactly* the probes the
    /// unsharded one does — `probes_sent + probes_elided` equals the
    /// classic (no stop set) wire count for every shard count — and the
    /// published snapshot is the same set.
    #[test]
    fn sharded_stop_set_ledger_is_exact(
        prefix_len in 4usize..14,
        suffix_len in 0usize..4,
        lane_count in 2usize..10,
        commit_width in 1usize..6,
        shards in 1usize..5,
        base_seed in any::<u64>(),
    ) {
        let topologies: Vec<MultipathTopology> = (0..lane_count)
            .map(|i| canonical::shared_prefix_lane(prefix_len, suffix_len, i))
            .collect();
        let net_of = |i: usize| -> SimNetwork {
            SimNetwork::new(
                topologies[i].clone(),
                base_seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9),
            )
        };
        let trace_seed_of = |i: usize| base_seed ^ ((i as u64) << 7);
        let stop_cfg = StopSetConfig { commit_width, ..StopSetConfig::default() };

        // Unsharded references: classic (no stop set) and stopped.
        let (classic, classic_stats, _) = stop_sweep(
            &topologies, &net_of, &trace_seed_of, 0,
            Admission::Streaming, 64, None,
        );
        let (stopped, stats, snap) = stop_sweep(
            &topologies, &net_of, &trace_seed_of, 0,
            Admission::Streaming, 64, Some(stop_cfg),
        );
        let snap = snap.expect("stop-set run publishes a snapshot");
        prop_assert_eq!(
            stats.probes_sent + stats.probes_elided,
            classic_stats.probes_sent
        );

        // Every shard count reproduces the unsharded sweep and its
        // ledger bit for bit.
        for shard_count in [shards, shards % 4 + 1] {
            let (sharded, sharded_stats, per_shard, sharded_snap) = sharded_stop_sweep(
                &topologies, &net_of, &trace_seed_of, shard_count, Some(stop_cfg),
            );
            prop_assert_eq!(
                &sharded, &stopped,
                "{} shards diverged from the unsharded stop-set sweep",
                shard_count
            );
            prop_assert_eq!(sharded_stats.probes_sent, stats.probes_sent);
            prop_assert_eq!(sharded_stats.probes_elided, stats.probes_elided);
            prop_assert_eq!(sharded_stats.stop_set_hits, stats.stop_set_hits);
            prop_assert_eq!(
                sharded_stats.probes_sent + sharded_stats.probes_elided,
                classic_stats.probes_sent
            );
            let sharded_snap = sharded_snap.expect("snapshot present");
            prop_assert_eq!(sharded_snap.len(), snap.len());
            prop_assert_eq!(sharded_snap.start_ttl(), snap.start_ttl());

            // Per-shard 4-bucket accounting and classic reconstruction.
            for shard in &per_shard {
                prop_assert_eq!(
                    shard.probes_timed_out
                        + shard.replies_delivered
                        + shard.malformed_replies
                        + shard.mismatched_replies,
                    shard.probes_sent
                );
            }
            for (classic_trace, sharded_trace) in classic.iter().zip(&sharded) {
                prop_assert_eq!(
                    reconstructed_path(sharded_trace, &sharded_snap),
                    path_of(classic_trace),
                    "destination {} lost or gained topology under sharding",
                    classic_trace.destination
                );
            }
        }
    }
}

/// MDA-Lite diamond soundness under the stop set, on a fixed seed: a
/// load-balanced diamond in the *suffix* (past the shared prefix) must
/// be discovered with full per-hop flow evidence even by sessions that
/// short-circuit the prefix — the stopping rule falls back to real
/// probing wherever the set cannot supply flow-level evidence.
#[test]
fn stop_set_keeps_mda_lite_diamonds_sound() {
    let prefix_len = 12usize;
    let lane = |i: usize| -> MultipathTopology {
        let mut b = MultipathTopology::builder();
        for h in 0..prefix_len {
            b.add_hop([addr(h, 0)]);
        }
        // A two-wide diamond unique to this lane, then the destination.
        b.add_hop([
            addr(prefix_len, 1000 + 2 * i),
            addr(prefix_len, 1001 + 2 * i),
        ]);
        b.add_hop([addr(prefix_len + 1, i + 1)]);
        for h in 0..prefix_len - 1 {
            b.connect_unmeshed(h);
        }
        b.connect_full(prefix_len - 1);
        b.connect_full(prefix_len);
        b.build().expect("static topology")
    };
    let topologies: Vec<MultipathTopology> = (0..8).map(lane).collect();
    let net_of = |i: usize| SimNetwork::new(topologies[i].clone(), 41 + i as u64);
    let trace_seed_of = |i: usize| 7 + i as u64;
    let (classic, _, _) = stop_sweep(
        &topologies,
        &net_of,
        &trace_seed_of,
        1,
        Admission::Streaming,
        64,
        None,
    );
    let (stopped, stats, snap) = stop_sweep(
        &topologies,
        &net_of,
        &trace_seed_of,
        1,
        Admission::Streaming,
        64,
        Some(StopSetConfig {
            commit_width: 2,
            ..StopSetConfig::default()
        }),
    );
    let snap = snap.expect("snapshot present");
    for (i, (classic_trace, stopped_trace)) in classic.iter().zip(&stopped).enumerate() {
        assert!(stopped_trace.reached_destination);
        // Both diamond interfaces observed, with the same evidence a
        // full trace gathers (the diamond is past every stop hit, so
        // its discovery must be entirely firsthand).
        let diamond_ttl = (prefix_len + 1) as u8;
        let mut stopped_diamond = stopped_trace.discovery.vertices_at(diamond_ttl).to_vec();
        let mut classic_diamond = classic_trace.discovery.vertices_at(diamond_ttl).to_vec();
        stopped_diamond.sort_unstable();
        classic_diamond.sort_unstable();
        assert_eq!(
            stopped_diamond, classic_diamond,
            "lane {i} lost diamond interfaces under the stop set"
        );
        assert_eq!(
            reconstructed_path(stopped_trace, &snap),
            path_of(classic_trace),
            "lane {i} path diverged"
        );
    }
    assert!(stats.probes_elided > 0, "the shared prefix must be elided");
}
