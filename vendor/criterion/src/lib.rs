//! In-tree stand-in for the `criterion` crate.
//!
//! A small wall-clock micro-benchmark harness exposing the criterion API
//! this workspace's benches use: [`Criterion`], [`BenchmarkGroup`],
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. No statistics
//! beyond mean/min/max, no HTML reports; results print to stdout and are
//! retrievable programmatically via [`Criterion::results`] so benches can
//! emit machine-readable files.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benched code.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark id (`group/name` or the bare function name).
    pub id: String,
    /// Samples collected.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
    /// Mean time per iteration.
    pub mean: Duration,
    /// Median sample's per-iteration time (robust to scheduler outliers).
    pub median: Duration,
    /// Fastest sample's per-iteration time.
    pub min: Duration,
    /// Slowest sample's per-iteration time.
    pub max: Duration,
}

/// Measurement harness handed to bench closures.
pub struct Bencher<'a> {
    sample_size: usize,
    result: &'a mut Option<Measurement>,
}

/// Raw numbers one `iter` call produced.
pub struct Measurement {
    samples: usize,
    iters: u64,
    mean: Duration,
    median: Duration,
    min: Duration,
    max: Duration,
}

impl Bencher<'_> {
    /// Measures a closure: a calibration pass picks an iteration count,
    /// then `sample_size` samples are timed.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibration: aim for samples of at least ~2ms, capped to keep
        // heavyweight benches (whole surveys) from taking minutes.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let target = Duration::from_millis(2);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        // Warm-up: populate caches/allocator state before measuring.
        let warmup = (iters / 4).clamp(1, 100);
        for _ in 0..warmup {
            black_box(f());
        }

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        let mut total = Duration::ZERO;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed() / iters as u32;
            samples.push(elapsed);
            total += elapsed;
        }
        let mean = total / self.sample_size as u32;
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        *self.result = Some(Measurement {
            samples: self.sample_size,
            iters,
            mean,
            median,
            min: samples[0],
            max: *samples.last().expect("sample_size >= 2"),
        });
    }
}

/// A two-part benchmark identifier (`function/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter display.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        sample_size: usize,
        results: &mut Vec<BenchResult>,
        id: String,
        mut f: F,
    ) {
        let mut slot = None;
        let mut bencher = Bencher {
            sample_size,
            result: &mut slot,
        };
        f(&mut bencher);
        if let Some(m) = slot {
            println!(
                "bench {id:<50} time: [{} {} {}]",
                format_duration(m.min),
                format_duration(m.median),
                format_duration(m.max)
            );
            results.push(BenchResult {
                id,
                samples: m.samples,
                iters_per_sample: m.iters,
                mean: m.mean,
                median: m.median,
                min: m.min,
                max: m.max,
            });
        }
    }

    /// Benchmarks one closure under the given name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        Self::run_one(self.sample_size, &mut self.results, id.to_string(), f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// All results measured so far (for machine-readable emission).
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for subsequent benches in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Benchmarks a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        Criterion::run_one(sample_size, &mut self.criterion.results, full, |b| {
            f(b, input)
        });
        self
    }

    /// Benchmarks a closure under a name within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        Criterion::run_one(sample_size, &mut self.criterion.results, full, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        assert_eq!(c.results().len(), 1);
        let r = &c.results()[0];
        assert_eq!(r.id, "noop");
        assert!(r.min <= r.median && r.median <= r.max);
    }

    #[test]
    fn groups_prefix_ids() {
        let mut c = Criterion::default().sample_size(3);
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_with_input(BenchmarkId::new("f", "p"), &7u32, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            g.finish();
        }
        assert_eq!(c.results()[0].id, "g/f/p");
        assert_eq!(c.results()[0].samples, 2);
    }
}
