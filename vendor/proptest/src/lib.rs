//! In-tree stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, [`Strategy`] with `prop_map`,
//! range and `any::<T>()` strategies, tuple strategies,
//! [`collection::vec`], `prop_assert*` macros, `prop_assume!`, and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from upstream: cases are drawn from a deterministic
//! per-test seed (no persisted failure files) and failing cases are not
//! shrunk — the failure message reports the case number and seed so a
//! failure is still reproducible by construction.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Number of cases to run per property (default mirrors upstream's 256).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case asked to be discarded (`prop_assume!` failed).
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// A failed assertion.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A discarded case.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Result type of one property-test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The RNG handed to strategies.
pub struct TestRng(pub StdRng);

impl TestRng {
    /// Deterministic per-(test, case) generator.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        for b in test_name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(
            hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A value generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// `any::<T>()` support: the full uniform domain of a type.
pub trait Arbitrary: Sized {
    /// Draws a uniform value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self { rng.gen() }
        }
    )*};
}
arbitrary_via_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, f32);

/// Strategy for `any::<T>()`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full domain of `T` as a strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// A strategy always yielding a clone of one value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(element, len_range)`: vectors whose elements come from
    /// `element` and whose length comes from `len_range`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.len.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Runs one property over `config.cases` deterministic cases. Used by the
/// [`proptest!`] macro; not intended to be called directly.
pub fn run_property<F>(test_name: &str, config: &ProptestConfig, mut body: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let mut ran = 0u32;
    let mut case = 0u64;
    // Bound discards like upstream (10x cases), so a bad assume fails
    // loudly instead of spinning.
    let max_attempts = u64::from(config.cases) * 10;
    while ran < config.cases {
        if case >= max_attempts {
            panic!(
                "{test_name}: too many rejected cases ({ran}/{} ran after {case} draws)",
                config.cases
            );
        }
        let mut rng = TestRng::for_case(test_name, case);
        case += 1;
        match body(&mut rng) {
            Ok(()) => ran += 1,
            Err(TestCaseError::Reject(_)) => continue,
            Err(TestCaseError::Fail(message)) => {
                panic!("{test_name}: case {} failed: {message}", case - 1)
            }
        }
    }
}

/// Everything the workspace's property tests import.
pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Asserts within a property, returning a [`TestCaseError`] on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {:?} != {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {:?} != {:?}: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Inequality assertion within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: both sides equal {:?}",
            left
        );
    }};
}

/// Discards the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (@funcs ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::run_property(stringify!($name), &config, |rng| {
                $(let $arg = $crate::Strategy::sample(&$strategy, rng);)*
                let result: $crate::TestCaseResult = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                result
            });
        }
    )*};
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(a in 1u8..=254, b in 0usize..100, c in -5i64..5) {
            prop_assert!((1..=254).contains(&a));
            prop_assert!(b < 100);
            prop_assert!((-5..5).contains(&c));
        }

        #[test]
        fn vec_strategy_lengths(v in collection::vec(any::<u8>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn prop_map_and_tuples(pair in (1u16..10, 1u16..10).prop_map(|(x, y)| (x, y, x + y))) {
            let (x, y, sum) = pair;
            prop_assert_eq!(sum, x + y);
        }

        #[test]
        fn assume_discards(v in 0u32..10) {
            prop_assume!(v % 2 == 0);
            prop_assert!(v % 2 == 0);
        }
    }

    #[test]
    fn deterministic_sampling() {
        use super::*;
        let strat = 0u64..1000;
        let mut a = TestRng::for_case("x", 3);
        let mut b = TestRng::for_case("x", 3);
        assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failures_panic() {
        use super::*;
        run_property("always_fails", &ProptestConfig::with_cases(2), |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
