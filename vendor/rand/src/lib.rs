//! In-tree stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! a minimal implementation of the `rand` API surface it actually uses:
//! [`RngCore`], the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`), [`SeedableRng`], and [`rngs::StdRng`]. Generators are
//! deterministic, seeded, and of good statistical quality (xoshiro256++
//! with SplitMix64 seeding) — several tests in the workspace assert
//! calibrated empirical frequencies, which a weak generator would fail.
//!
//! Values produced by this crate differ from upstream `rand`'s stream for
//! the same seed; everything in the workspace is self-consistent, which is
//! all determinism requires.

use std::ops::{Range, RangeInclusive};

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-size byte array for the workspace's uses).
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_value().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed expander (public for sibling vendor crates).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    /// Current state.
    pub state: u64,
}

impl SplitMix64 {
    /// Next 64-bit output.
    pub fn next_value(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types samplable uniformly from raw random bits.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $m:ident),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$m() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    u64 => next_u64, i64 => next_u64, usize => next_u64, isize => next_u64);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift keeps the draw unbiased for span << 2^64.
                let v = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start + v as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return Standard::sample(rng);
                }
                let span = (end - start) as u64 + 1;
                let v = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                start + v as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                let v = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start.wrapping_add(v as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = end.wrapping_sub(start) as $u as u64 + 1;
                let v = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                start.wrapping_add(v as $t)
            }
        }
    )*};
}
impl_sample_range_int!(i8 : u8, i16 : u16, i32 : u32, i64 : u64, isize : usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit: f64 = Standard::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn next(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.next()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // All-zero state is the one degenerate case for xoshiro.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

/// `rand::prelude`-style glob import.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds_and_uniformity() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            let v = rng.gen_range(10usize..=14);
            assert!((10..=14).contains(&v));
            counts[v - 10] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn full_u16_range_inclusive() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let _: u16 = rng.gen_range(0u16..=u16::MAX);
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
