//! In-tree stand-in for the `rand_chacha` crate.
//!
//! Provides [`ChaCha8Rng`]: a real (reduced-round) ChaCha8 keystream
//! generator over the vendored `rand` core traits. Output differs from
//! upstream `rand_chacha` for the same seed (upstream uses a different
//! word-to-stream mapping), but it is a genuine ChaCha permutation:
//! deterministic, seedable, and statistically strong, which is what the
//! workspace's calibrated simulations rely on.

pub use rand::RngCore;

/// Re-export the seeding trait under the path the workspace imports
/// (`rand_chacha::rand_core::SeedableRng`).
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

/// The ChaCha quarter round.
#[inline(always)]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// ChaCha with 8 rounds, exposed as a random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    /// Next unread word index in `buffer`; 16 means "refill".
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..4 {
            // 8 rounds = 4 double rounds (column + diagonal).
            quarter(&mut state, 0, 4, 8, 12);
            quarter(&mut state, 1, 5, 9, 13);
            quarter(&mut state, 2, 6, 10, 14);
            quarter(&mut state, 3, 7, 11, 15);
            quarter(&mut state, 0, 5, 10, 15);
            quarter(&mut state, 1, 6, 11, 12);
            quarter(&mut state, 2, 7, 8, 13);
            quarter(&mut state, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buffer[i] = state[i].wrapping_add(input[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl rand::RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32();
        let hi = self.next_u32();
        (u64::from(hi) << 32) | u64::from(lo)
    }
}

impl rand::SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        let mut c = ChaCha8Rng::seed_from_u64(6);
        let va: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn uniform_f64() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += rng.gen::<f64>();
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn byte_histogram_flat() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut counts = [0u32; 256];
        for _ in 0..65_536 {
            counts[(rng.next_u32() & 0xFF) as usize] += 1;
        }
        for &c in counts.iter() {
            assert!((150..=370).contains(&c), "skewed byte histogram");
        }
    }
}
