//! In-tree stand-in for the `serde` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! a small serialization framework exposing the serde surface it uses:
//! `#[derive(Serialize, Deserialize)]`, the two traits, and impls for the
//! std types that appear in workspace data structures. The data model is a
//! concrete JSON-like [`Value`] tree rather than upstream serde's visitor
//! architecture; `serde_json` (also vendored) renders and parses it.
//!
//! Representation choices mirror upstream defaults where the workspace
//! can observe them: structs are objects, newtype structs are their inner
//! value, enums are externally tagged, `Option` is `null`-or-value, and
//! missing object keys deserialize as `null` (so optional fields work).

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::hash::Hash;
use std::net::Ipv4Addr;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON number: unsigned, signed, or floating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative (or explicitly signed) integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// The value as `f64` (always possible).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(v) => v as f64,
            Number::I(v) => v as f64,
            Number::F(v) => v,
        }
    }

    /// The value as `u64`, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(v) => Some(v),
            Number::I(v) => u64::try_from(v).ok(),
            Number::F(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            Number::F(_) => None,
        }
    }

    /// The value as `i64`, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(v) => i64::try_from(v).ok(),
            Number::I(v) => Some(v),
            Number::F(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                Some(v as i64)
            }
            Number::F(_) => None,
        }
    }
}

/// An insertion-ordered string-keyed map of [`Value`]s (the JSON object).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a key, replacing any previous value for it.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        let key = key.into();
        for entry in &mut self.entries {
            if entry.0 == key {
                return Some(std::mem::replace(&mut entry.1, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks a key up.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// True if the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterates values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

/// A JSON-like value tree: the crate's serialization data model.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object.
    Object(Map),
}

impl Value {
    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The number as `u64`, if integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The number as `i64`, if integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array, if this is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object, if this is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field access returning `Null` borrow on absence, like
    /// `serde_json`'s `get` composed with indexing.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! value_eq_num {
    ($($t:ty : $get:ident),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.$get().is_some_and(|v| v == (*other).into())
            }
        }
    )*};
}
value_eq_num!(u8 : as_u64, u16 : as_u64, u32 : as_u64, u64 : as_u64,
    i8 : as_i64, i16 : as_i64, i32 : as_i64, i64 : as_i64, f64 : as_f64, f32 : as_f64);

static NULL: Value = Value::Null;

/// Writes a JSON string literal with escaping.
fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::U(v) => write!(f, "{v}"),
            Number::I(v) => write!(f, "{v}"),
            Number::F(v) if v.is_finite() => {
                if v == v.trunc() && v.abs() < 1e15 {
                    // Keep integral floats readable but distinguishable.
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            // JSON has no infinities/NaN; null is serde_json's behaviour.
            Number::F(_) => f.write_str("null"),
        }
    }
}

impl fmt::Display for Value {
    /// Compact JSON rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(index).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with a message.
    pub fn custom(message: impl fmt::Display) -> Self {
        Self {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Deserializes from a value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for std types used by the workspace.
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Number(Number::U(*self as u64)) }
        }
    )*};
}
serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::Number(Number::U(v as u64)) } else { Value::Number(Number::I(v)) }
            }
        }
    )*};
}
serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(f64::from(*self)))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for Ipv4Addr {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! serialize_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
serialize_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Renders a serialized key value as a JSON object key, the way
/// `serde_json` renders non-string keys: strings pass through, anything
/// else becomes its compact JSON text.
pub fn key_to_string(value: Value) -> String {
    match value {
        Value::String(s) => s,
        other => other.to_string(),
    }
}

/// Reconstructs a key type from a JSON object key produced by
/// [`key_to_string`]: the key text is parsed as a JSON value when
/// possible, else treated as a plain string.
pub fn key_from_string<K: Deserialize>(key: &str) -> Result<K, Error> {
    if let Ok(parsed) = crate::key_parse(key) {
        if let Ok(k) = K::from_value(&parsed) {
            return Ok(k);
        }
    }
    K::from_value(&Value::String(key.to_string()))
}

/// Hook filled by `serde_json` at link time is not possible in a stub, so
/// a tiny JSON reader lives here for key reconstruction only.
fn key_parse(input: &str) -> Result<Value, Error> {
    // Fast paths for the common key shapes.
    let t = input.trim();
    if t == "null" {
        return Ok(Value::Null);
    }
    if t == "true" {
        return Ok(Value::Bool(true));
    }
    if t == "false" {
        return Ok(Value::Bool(false));
    }
    if let Ok(u) = t.parse::<u64>() {
        return Ok(Value::Number(Number::U(u)));
    }
    if let Ok(i) = t.parse::<i64>() {
        return Ok(Value::Number(Number::I(i)));
    }
    if let Ok(f) = t.parse::<f64>() {
        return Ok(Value::Number(Number::F(f)));
    }
    if t.starts_with('[') || t.starts_with('{') || t.starts_with('"') {
        return crate::mini_json::parse(t);
    }
    Err(Error::custom("not a JSON key"))
}

/// Minimal JSON reader used only for compound object keys.
mod mini_json {
    use super::{Error, Map, Number, Value};

    pub fn parse(input: &str) -> Result<Value, Error> {
        let mut p = P {
            b: input.as_bytes(),
            i: 0,
        };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(Error::custom("trailing key characters"));
        }
        Ok(v)
    }

    struct P<'a> {
        b: &'a [u8],
        i: usize,
    }

    impl P<'_> {
        fn ws(&mut self) {
            while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.i += 1;
            }
        }
        fn value(&mut self) -> Result<Value, Error> {
            match self.b.get(self.i) {
                Some(b'n') if self.b[self.i..].starts_with(b"null") => {
                    self.i += 4;
                    Ok(Value::Null)
                }
                Some(b't') if self.b[self.i..].starts_with(b"true") => {
                    self.i += 4;
                    Ok(Value::Bool(true))
                }
                Some(b'f') if self.b[self.i..].starts_with(b"false") => {
                    self.i += 5;
                    Ok(Value::Bool(false))
                }
                Some(b'"') => self.string().map(Value::String),
                Some(b'[') => {
                    self.i += 1;
                    let mut items = Vec::new();
                    loop {
                        self.ws();
                        if self.b.get(self.i) == Some(&b']') {
                            self.i += 1;
                            return Ok(Value::Array(items));
                        }
                        items.push(self.value()?);
                        self.ws();
                        if self.b.get(self.i) == Some(&b',') {
                            self.i += 1;
                        }
                    }
                }
                Some(b'{') => {
                    self.i += 1;
                    let mut map = Map::new();
                    loop {
                        self.ws();
                        if self.b.get(self.i) == Some(&b'}') {
                            self.i += 1;
                            return Ok(Value::Object(map));
                        }
                        let key = self.string()?;
                        self.ws();
                        if self.b.get(self.i) == Some(&b':') {
                            self.i += 1;
                        } else {
                            return Err(Error::custom("expected ':' in key object"));
                        }
                        self.ws();
                        let value = self.value()?;
                        map.insert(key, value);
                        self.ws();
                        if self.b.get(self.i) == Some(&b',') {
                            self.i += 1;
                        }
                    }
                }
                Some(b'-' | b'0'..=b'9') => {
                    let start = self.i;
                    while matches!(
                        self.b.get(self.i),
                        Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
                    ) {
                        self.i += 1;
                    }
                    let text = std::str::from_utf8(&self.b[start..self.i])
                        .map_err(|_| Error::custom("bad number"))?;
                    if let Ok(u) = text.parse::<u64>() {
                        return Ok(Value::Number(Number::U(u)));
                    }
                    if let Ok(i) = text.parse::<i64>() {
                        return Ok(Value::Number(Number::I(i)));
                    }
                    text.parse::<f64>()
                        .map(|f| Value::Number(Number::F(f)))
                        .map_err(|_| Error::custom("bad number"))
                }
                _ => Err(Error::custom("unexpected key character")),
            }
        }
        fn string(&mut self) -> Result<String, Error> {
            if self.b.get(self.i) != Some(&b'"') {
                return Err(Error::custom("expected string"));
            }
            self.i += 1;
            let mut out = String::new();
            while let Some(&c) = self.b.get(self.i) {
                self.i += 1;
                match c {
                    b'"' => return Ok(out),
                    b'\\' => {
                        let esc = *self
                            .b
                            .get(self.i)
                            .ok_or_else(|| Error::custom("bad escape"))?;
                        self.i += 1;
                        out.push(match esc {
                            b'n' => '\n',
                            b'r' => '\r',
                            b't' => '\t',
                            other => other as char,
                        });
                    }
                    other => out.push(other as char),
                }
            }
            Err(Error::custom("unterminated key string"))
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        for (k, v) in self {
            map.insert(key_to_string(k.to_value()), v.to_value());
        }
        Value::Object(map)
    }
}

impl<K: Serialize + Hash + Eq, V: Serialize, S: std::hash::BuildHasher> Serialize
    for HashMap<K, V, S>
{
    fn to_value(&self) -> Value {
        // Sort keys for deterministic output, matching BTreeMap behaviour.
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(k.to_value()), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs.into_iter().collect())
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls.
// ---------------------------------------------------------------------------

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom("expected boolean"))
    }
}

macro_rules! deserialize_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value.as_u64().ok_or_else(|| Error::custom("expected unsigned integer"))?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
deserialize_uint!(u8, u16, u32, u64, usize);

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value.as_i64().ok_or_else(|| Error::custom("expected integer"))?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
deserialize_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::custom("expected number"))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .map(|v| v as f32)
            .ok_or_else(|| Error::custom("expected number"))
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::custom("expected string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl Deserialize for Ipv4Addr {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::custom("expected IPv4 string"))?;
        s.parse()
            .map_err(|_| Error::custom(format!("invalid IPv4 address {s:?}")))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| Error::custom("expected object"))?;
        let mut out = BTreeMap::new();
        for (k, v) in obj.iter() {
            out.insert(key_from_string(k)?, V::from_value(v)?);
        }
        Ok(out)
    }
}

impl<K: Deserialize + Hash + Eq, V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for HashMap<K, V, S>
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| Error::custom("expected object"))?;
        let mut out = HashMap::default();
        for (k, v) in obj.iter() {
            out.insert(key_from_string(k)?, V::from_value(v)?);
        }
        Ok(out)
    }
}

macro_rules! deserialize_tuple {
    ($(($len:expr; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let arr = value.as_array().ok_or_else(|| Error::custom("expected array"))?;
                if arr.len() != $len {
                    return Err(Error::custom("tuple length mismatch"));
                }
                Ok(($($t::from_value(&arr[$n])?,)+))
            }
        }
    )*};
}
deserialize_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
}

// ---------------------------------------------------------------------------
// Support entry points used by derive-generated code.
// ---------------------------------------------------------------------------

/// Fetches and deserializes an object field; absent keys read as `null`
/// (so `Option` fields default to `None`, as with upstream serde).
pub fn field<T: Deserialize>(map: &Map, key: &str) -> Result<T, Error> {
    let value = map.get(key).unwrap_or(&NULL);
    T::from_value(value).map_err(|e| Error::custom(format!("field {key:?}: {e}")))
}

/// Requires the value to be an object, labelling errors with a type name.
pub fn expect_object<'v>(value: &'v Value, type_name: &str) -> Result<&'v Map, Error> {
    value
        .as_object()
        .ok_or_else(|| Error::custom(format!("expected {type_name} object")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_insert_replaces() {
        let mut m = Map::new();
        m.insert("a", Value::Bool(true));
        assert_eq!(m.insert("a", Value::Null), Some(Value::Bool(true)));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn option_field_defaults_to_none() {
        let m = Map::new();
        let got: Option<u32> = field(&m, "missing").unwrap();
        assert_eq!(got, None);
        assert!(field::<u32>(&m, "missing").is_err());
    }

    #[test]
    fn ipv4_roundtrip() {
        let a = Ipv4Addr::new(10, 1, 2, 3);
        let v = a.to_value();
        assert_eq!(Ipv4Addr::from_value(&v).unwrap(), a);
    }

    #[test]
    fn btreemap_ipv4_keys_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert(Ipv4Addr::new(1, 2, 3, 4), 7u32);
        let v = m.to_value();
        let back: BTreeMap<Ipv4Addr, u32> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn value_indexing() {
        let mut m = Map::new();
        m.insert("x", Value::Number(Number::U(3)));
        let v = Value::Object(m);
        assert_eq!(v["x"].as_u64(), Some(3));
        assert!(v["missing"].is_null());
        let arr = Value::Array(vec![Value::Bool(false)]);
        assert_eq!(arr[0].as_bool(), Some(false));
        assert!(arr[5].is_null());
    }
}
