//! `#[derive(Serialize, Deserialize)]` for the vendored serde stand-in.
//!
//! Implemented directly over `proc_macro` token trees (no syn/quote — the
//! build environment is fully offline). Supports the shapes the workspace
//! uses: structs with named fields, tuple/newtype structs, unit structs,
//! and enums whose variants are unit, newtype/tuple, or struct-like.
//! Generics are not supported (the workspace derives none).
//!
//! Representation matches upstream serde defaults: structs → objects,
//! newtype structs → inner value, unit enum variants → the variant name
//! as a string, data-carrying variants → externally tagged single-key
//! objects.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed field list: named fields, a tuple arity, or a unit body.
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

/// A parsed enum variant.
struct Variant {
    name: String,
    fields: Fields,
}

/// What the derive input declares.
enum Input {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Skips one attribute if the cursor sits on `#` (`#[...]`, including the
/// token form doc comments lower to).
fn skip_attributes(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match (&tokens.get(i), &tokens.get(i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => return i,
        }
    }
}

/// Skips a visibility modifier (`pub`, `pub(...)`).
fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Splits a token list on top-level commas, tracking `<...>` depth so
/// generic argument commas don't split. Empty segments are dropped.
fn split_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tt in tokens {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if !current.is_empty() {
                        out.push(std::mem::take(&mut current));
                    }
                    continue;
                }
                _ => {}
            }
        }
        current.push(tt.clone());
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Extracts the field name from one named-field declaration
/// (`[attrs] [vis] name : Type`).
fn named_field(tokens: &[TokenTree]) -> Option<String> {
    let mut i = skip_attributes(tokens, 0);
    i = skip_visibility(tokens, i);
    match (tokens.get(i), tokens.get(i + 1)) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Punct(p))) if p.as_char() == ':' => {
            Some(name.to_string())
        }
        _ => None,
    }
}

/// Parses a brace-delimited named-field body into field names.
fn parse_named_fields(group_tokens: &[TokenTree]) -> Vec<String> {
    split_commas(group_tokens)
        .iter()
        .filter_map(|seg| named_field(seg))
        .collect()
}

/// Parses the derive input item.
fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attributes(&tokens, 0);
    i = skip_visibility(&tokens, i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    i += 1;

    // Reject generics: the workspace derives none, and supporting them
    // would complicate the generated impls for no user.
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive: generic types are not supported ({name})");
        }
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Input::Struct {
                    name,
                    fields: Fields::Named(parse_named_fields(&body)),
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Input::Struct {
                    name,
                    fields: Fields::Tuple(split_commas(&body).len()),
                }
            }
            _ => Input::Struct {
                name,
                fields: Fields::Unit,
            },
        },
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    g.stream().into_iter().collect::<Vec<_>>()
                }
                other => panic!("serde_derive: expected enum body, found {other:?}"),
            };
            let mut variants = Vec::new();
            for seg in split_commas(&body) {
                let j = skip_attributes(&seg, 0);
                let vname = match seg.get(j) {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    other => panic!("serde_derive: expected variant name, found {other:?}"),
                };
                let fields = match seg.get(j + 1) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        Fields::Named(parse_named_fields(&inner))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        Fields::Tuple(split_commas(&inner).len())
                    }
                    _ => Fields::Unit,
                };
                variants.push(Variant {
                    name: vname,
                    fields,
                });
            }
            Input::Enum { name, variants }
        }
        other => panic!("serde_derive: cannot derive for {other}"),
    }
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_input(input) {
        Input::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let mut inserts = String::new();
                    for f in &names {
                        inserts.push_str(&format!(
                            "map.insert(::std::string::String::from({f:?}), \
                             ::serde::Serialize::to_value(&self.{f}));\n"
                        ));
                    }
                    format!(
                        "let mut map = ::serde::Map::new();\n{inserts}::serde::Value::Object(map)"
                    )
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}"
            )
        }
        Input::Enum { name, variants } => {
            let mut arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(::std::string::String::from({vn:?})),\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(f0) => {{\n\
                         let mut map = ::serde::Map::new();\n\
                         map.insert(::std::string::String::from({vn:?}), ::serde::Serialize::to_value(f0));\n\
                         ::serde::Value::Object(map)\n}}\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => {{\n\
                             let mut map = ::serde::Map::new();\n\
                             map.insert(::std::string::String::from({vn:?}), \
                             ::serde::Value::Array(::std::vec![{items}]));\n\
                             ::serde::Value::Object(map)\n}}\n",
                            binds = binds.join(", "),
                            items = items.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let binds = fields.join(", ");
                        let mut inserts = String::new();
                        for f in fields {
                            inserts.push_str(&format!(
                                "inner.insert(::std::string::String::from({f:?}), \
                                 ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n\
                             let mut inner = ::serde::Map::new();\n{inserts}\
                             let mut map = ::serde::Map::new();\n\
                             map.insert(::std::string::String::from({vn:?}), ::serde::Value::Object(inner));\n\
                             ::serde::Value::Object(map)\n}}\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\nmatch self {{\n{arms}}}\n}}\n}}"
            )
        }
    };
    code.parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_input(input) {
        Input::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let mut sets = String::new();
                    for f in &names {
                        sets.push_str(&format!("{f}: ::serde::field(obj, {f:?})?,\n"));
                    }
                    format!(
                        "let obj = ::serde::expect_object(value, {name:?})?;\n\
                         ::std::result::Result::Ok(Self {{\n{sets}}})"
                    )
                }
                Fields::Tuple(1) => {
                    "::std::result::Result::Ok(Self(::serde::Deserialize::from_value(value)?))"
                        .to_string()
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..n)
                        .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                        .collect();
                    format!(
                        "let arr = value.as_array().ok_or_else(|| \
                         ::serde::Error::custom(\"expected array for {name}\"))?;\n\
                         if arr.len() != {n} {{ return ::std::result::Result::Err(\
                         ::serde::Error::custom(\"tuple struct length mismatch\")); }}\n\
                         ::std::result::Result::Ok(Self({}))",
                        items.join(", ")
                    )
                }
                Fields::Unit => "::std::result::Result::Ok(Self)".to_string(),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(value: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}"
            )
        }
        Input::Enum { name, variants } => {
            // Unit variants arrive as strings; data variants as
            // single-key objects (externally tagged).
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!(
                            "{vn:?} => return ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                    Fields::Tuple(1) => tagged_arms.push_str(&format!(
                        "{vn:?} => return ::std::result::Result::Ok(\
                         {name}::{vn}(::serde::Deserialize::from_value(payload)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "{vn:?} => {{\n\
                             let arr = payload.as_array().ok_or_else(|| \
                             ::serde::Error::custom(\"expected array payload\"))?;\n\
                             if arr.len() != {n} {{ return ::std::result::Result::Err(\
                             ::serde::Error::custom(\"variant arity mismatch\")); }}\n\
                             return ::std::result::Result::Ok({name}::{vn}({}));\n}}\n",
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let mut sets = String::new();
                        for f in fields {
                            sets.push_str(&format!("{f}: ::serde::field(inner, {f:?})?,\n"));
                        }
                        tagged_arms.push_str(&format!(
                            "{vn:?} => {{\n\
                             let inner = ::serde::expect_object(payload, {vn:?})?;\n\
                             return ::std::result::Result::Ok({name}::{vn} {{\n{sets}}});\n}}\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(value: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\n\
                 if let ::std::option::Option::Some(tag) = value.as_str() {{\n\
                 match tag {{\n{unit_arms}\
                 _ => return ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown {name} variant {{tag}}\"))),\n}}\n}}\n\
                 if let ::std::option::Option::Some(obj) = value.as_object() {{\n\
                 if let ::std::option::Option::Some((tag, payload)) = obj.iter().next() {{\n\
                 match tag.as_str() {{\n{tagged_arms}\
                 _ => return ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown {name} variant {{tag}}\"))),\n}}\n}}\n}}\n\
                 ::std::result::Result::Err(::serde::Error::custom(\"expected {name}\"))\n\
                 }}\n}}"
            )
        }
    };
    code.parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}
