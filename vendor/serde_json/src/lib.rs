//! In-tree stand-in for the `serde_json` crate.
//!
//! Renders and parses the vendored serde [`Value`] data model as JSON
//! text, and provides the [`json!`] macro. API surface limited to what
//! the workspace uses: [`to_string`], [`to_string_pretty`], [`from_str`],
//! [`from_slice`], [`to_value`], [`Value`], [`Map`], [`json!`].

pub use serde::{Error, Map, Number, Value};

/// Serializes any [`serde::Serialize`] type to its value tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serializes to a compact JSON string. Infallible for this data model;
/// the `Result` mirrors upstream's signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Serializes to an indented JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_pretty(value: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_inner = "  ".repeat(indent + 1);
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_inner);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_inner);
                push_escaped(out, k);
                out.push_str(": ");
                write_pretty(v, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => out.push_str(&other.to_string()),
    }
}

/// Deserializes a type from JSON text.
pub fn from_str<T: serde::Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse_value(input)?;
    T::from_value(&value)
}

/// Deserializes a type from JSON bytes.
pub fn from_slice<T: serde::Deserialize>(input: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(input).map_err(|_| Error::custom("invalid UTF-8"))?;
    from_str(text)
}

/// Parses JSON text into a [`Value`].
pub fn parse_value(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::custom("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::custom("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            // Surrogate pairs are not produced by this
                            // workspace; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::custom("invalid \\u code point"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape \\{}",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Recover the full UTF-8 character starting here.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::custom("truncated UTF-8"))?;
                    let s =
                        std::str::from_utf8(slice).map_err(|_| Error::custom("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F(f)))
            .map_err(|_| Error::custom(format!("invalid number {text:?}")))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::custom("expected ',' or '}' in object")),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Builds a [`Value`] from JSON-like syntax with interpolated Rust
/// expressions, mirroring `serde_json::json!`.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => {
        $crate::json_internal!($($tt)+)
    };
}

/// Internal tt-muncher behind [`json!`]. Not part of the public API.
///
/// The accumulator-state technique gates which rules may touch the input:
/// after a structural element the element list has no trailing comma, so
/// the `expr`-fragment rules (which would commit and hard-error on `{...}`
/// or `,`) cannot match until the separator rule restores the comma.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };

    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };

    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = $crate::Map::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };

    // Any other single expression: serialize it.
    ($other:expr) => { $crate::to_value(&$other) };

    // ----- array elements -------------------------------------------------
    // Done (either accumulator state).
    (@array [$($elems:expr,)*]) => {
        ::std::vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        ::std::vec![$($elems),*]
    };
    // Structural / keyword elements: push WITHOUT a trailing comma so the
    // expr rules below cannot fire until the separator rule runs.
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($inner:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(
            @array [$($elems,)* $crate::json_internal!([$($inner)*])] $($rest)*
        )
    };
    (@array [$($elems:expr,)*] {$($inner:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(
            @array [$($elems,)* $crate::json_internal!({$($inner)*})] $($rest)*
        )
    };
    // Expression element followed by a comma.
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    // Final expression element.
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    // Separator after a structural element.
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // ----- object entries -------------------------------------------------
    // Done.
    (@object $object:ident () () ()) => {};
    // Insert a completed (key, value) pair, then continue after the comma.
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        $object.insert(::std::string::String::from($($key)+), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    // Insert the final pair.
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        $object.insert(::std::string::String::from($($key)+), $value);
    };
    // Value is a structural form or keyword.
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(
            @object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*
        );
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(
            @object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*
        );
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(
            @object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*
        );
    };
    (@object $object:ident ($($key:tt)+) (: [$($inner:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(
            @object $object [$($key)+] ($crate::json_internal!([$($inner)*])) $($rest)*
        );
    };
    (@object $object:ident ($($key:tt)+) (: {$($inner:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(
            @object $object [$($key)+] ($crate::json_internal!({$($inner)*})) $($rest)*
        );
    };
    // Value is an expression followed by a comma.
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(
            @object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*
        );
    };
    // Value is the final expression.
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    // Accumulate the next token into the current key.
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_text() {
        let text = r#"{"a": 1, "b": [true, null, "x\n"], "c": {"d": -2.5}}"#;
        let v = parse_value(text).unwrap();
        assert_eq!(v["a"].as_u64(), Some(1));
        assert_eq!(v["b"][0].as_bool(), Some(true));
        assert!(v["b"][1].is_null());
        assert_eq!(v["b"][2].as_str(), Some("x\n"));
        assert_eq!(v["c"]["d"].as_f64(), Some(-2.5));
        let reparsed = parse_value(&v.to_string()).unwrap();
        assert_eq!(reparsed, v);
    }

    #[test]
    fn json_macro_shapes() {
        let n = 3u32;
        let list = vec![1u32, 2, 3];
        let v = json!({
            "int": 1,
            "float": 1.5,
            "expr": n + 1,
            "call": list.len(),
            "vec": list,
            "nested": {"a": [1, 2], "b": null},
            "arr": [true, false, {"k": "v"}],
        });
        assert_eq!(v["int"].as_u64(), Some(1));
        assert_eq!(v["expr"].as_u64(), Some(4));
        assert_eq!(v["call"].as_u64(), Some(3));
        assert_eq!(v["vec"][2].as_u64(), Some(3));
        assert_eq!(v["nested"]["a"][1].as_u64(), Some(2));
        assert!(v["nested"]["b"].is_null());
        assert_eq!(v["arr"][2]["k"].as_str(), Some("v"));
    }

    #[test]
    fn pretty_parses_back() {
        let v = json!({"a": [1, 2], "b": {"c": true}, "empty": [], "eo": {}});
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse_value(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn from_str_typed() {
        let v: Vec<u16> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert!(from_str::<Vec<u16>>("{}").is_err());
    }

    #[test]
    fn large_u64_preserved() {
        let v = parse_value("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }
}
